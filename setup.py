"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` requires ``wheel`` for PEP 660
editable installs; this offline environment lacks it, so
``python setup.py develop`` provides the equivalent legacy editable
install. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
