"""Repository-level pytest configuration."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serving: online serving subsystem tests (repro.serving); "
        "run with `pytest -m serving`",
    )
    config.addinivalue_line(
        "markers",
        "slow: heavyweight paper-reproduction benchmarks (full model "
        "training sweeps); deselect with `pytest -m 'not slow'` for the "
        "fast tier-1 suite",
    )
    config.addinivalue_line(
        "markers",
        "streaming: streaming-ingestion / incremental-update subsystem "
        "tests (repro.data.streaming, repro.training.online); run with "
        "`pytest -m streaming`",
    )
    config.addinivalue_line(
        "markers",
        "cluster: sharded-serving / ANN-retrieval subsystem tests "
        "(repro.serving.cluster, repro.serving.ann): multi-process "
        "equivalence, load generation, concurrency stress; run with "
        "`pytest -m cluster`",
    )
    config.addinivalue_line(
        "markers",
        "obs: observability subsystem tests (repro.obs): metrics "
        "registry, request tracing, structured logs, op profiler, "
        "console surfaces; run with `pytest -m obs`",
    )
    config.addinivalue_line(
        "markers",
        "scenario: scenario-engine tests (repro.scenarios): streamed "
        "corpus invariants, arrival schedules, workload runs and the "
        "gated capacity benchmarks; run with `pytest -m scenario` "
        "(the million-user capacity sweep is additionally `slow`)",
    )
    config.addinivalue_line(
        "markers",
        "lint: static contract checker tests (repro.lint): rule "
        "fixtures, suppression mechanics, and the codebase-clean gate "
        "(`repro lint --strict` over src/repro); run with "
        "`pytest -m lint`",
    )
