"""Repository-level pytest configuration."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serving: online serving subsystem tests (repro.serving); "
        "run with `pytest -m serving`",
    )
