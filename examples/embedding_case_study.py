"""Embedding case study: what do metric-learning FMs learn? (RQ6)

Reproduces the analysis of the paper's Figures 5–6: train four models
(FM, NFM, TransFM, GML-FM) on a MovieLens-like dataset, pick active
users, project the embeddings of their interacted (positive) and random
non-interacted (negative) items to 2-D with t-SNE, and report the
cluster-separation score.  The paper's observation — metric-learning
based models cluster the positives while inner-product models do not —
appears here as a higher separation score for TransFM / GML-FM.

The 2-D coordinates are written to ``tsne_<model>_<user>.csv`` so they
can be plotted with any tool.

Run:  python examples/embedding_case_study.py
"""

import csv

import numpy as np

from repro.analysis import item_embedding_case_study
from repro.core import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.models import NFM, FactorizationMachine, TransFM
from repro.training import TrainConfig, Trainer


def train(model, dataset, epochs=15, lr=0.02, seed=0):
    sampler = NegativeSampler(dataset, seed=seed)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(dataset.n_interactions), n_neg=2
    )
    trainer = Trainer(model, TrainConfig(epochs=epochs, lr=lr,
                                         weight_decay=1e-4, seed=seed))
    trainer.fit_pointwise(users, items, labels)
    return model


def main() -> None:
    dataset = make_dataset("movielens", seed=0, scale=0.5)
    rng = np.random.default_rng
    models = {
        "FM": train(FactorizationMachine(dataset, k=32, rng=rng(0)), dataset),
        "NFM": train(NFM(dataset, k=32, rng=rng(0)), dataset),
        "TransFM": train(TransFM(dataset, k=32, rng=rng(0)), dataset),
        "GML-FM": train(GMLFM_DNN(dataset, k=32, n_layers=2, rng=rng(0)), dataset),
    }

    # The paper picks two active users (IDs 709 and 1050 in ML-1M); we
    # take the two with the most interactions here.
    counts = dataset.interactions_per_user()
    users = np.argsort(-counts)[:2]

    print(f"{'model':10s}" + "".join(f"  user {u} sep" for u in users))
    for name, model in models.items():
        row = [f"{name:10s}"]
        for user in users:
            study = item_embedding_case_study(model, dataset, int(user), seed=0)
            row.append(f"{study.separation:12.4f}")
            path = f"tsne_{name.lower().replace('-', '')}_{user}.csv"
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["x", "y", "positive"])
                for (x, y), label in zip(study.projection, study.labels):
                    writer.writerow([f"{x:.5f}", f"{y:.5f}", int(label)])
        print("".join(row))
    print("\nHigher separation = positives form a tighter, better separated "
          "cluster (the paper's Figures 5–6).  CSVs written for plotting.")


if __name__ == "__main__":
    main()
