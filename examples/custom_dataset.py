"""Bring your own data: build a RecDataset from raw logs and train GML-FM.

This example shows the full path a downstream user takes to run GML-FM
on their own data: construct interaction arrays and side-attribute
tables, wrap them in :class:`repro.data.RecDataset`, and hand the
dataset to any model in the library.  It also demonstrates the distance
variants of Section 3.5.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.core import GMLFM
from repro.data import NegativeSampler, RecDataset
from repro.training import (
    TrainConfig,
    Trainer,
    evaluate_topn,
    prepare_topn_protocol,
)


def build_bookshop_dataset(seed: int = 0) -> RecDataset:
    """A small hand-rolled 'online bookshop' dataset.

    Interactions are synthesized here for the example, but the
    construction is exactly what you would do with real purchase logs:
    dense integer ids, parallel arrays, and per-entity attribute tables.
    """
    rng = np.random.default_rng(seed)
    n_users, n_items = 150, 400

    # Item attributes: genre (strongly drives purchases here) and a
    # binary 'hardcover' flag.
    genre = rng.integers(0, 8, size=n_items)
    hardcover = rng.integers(0, 2, size=n_items)

    # Each user favours one genre; they buy mostly within it.
    favourite = rng.integers(0, 8, size=n_users)
    users, items, times = [], [], []
    for u in range(n_users):
        n_buys = rng.integers(5, 15)
        in_genre = np.where(genre == favourite[u])[0]
        out_genre = np.where(genre != favourite[u])[0]
        n_in = int(0.8 * n_buys)
        bought = np.concatenate([
            rng.choice(in_genre, size=min(n_in, in_genre.size), replace=False),
            rng.choice(out_genre, size=n_buys - min(n_in, in_genre.size),
                       replace=False),
        ])
        # Shuffle the purchase order: otherwise the user's *latest*
        # purchase (what leave-one-out holds out) would always be one of
        # the out-of-genre buys, making the test set adversarial.
        rng.shuffle(bought)
        users.extend([u] * bought.size)
        items.extend(bought.tolist())
        times.extend(range(bought.size))

    def single(column):
        column = np.asarray(column).reshape(-1, 1)
        return column.astype(np.int64), np.ones_like(column, dtype=np.float64)

    return RecDataset(
        name="bookshop",
        n_users=n_users,
        n_items=n_items,
        users=np.array(users),
        items=np.array(items),
        timestamps=np.array(times),
        item_attrs={"genre": single(genre), "hardcover": single(hardcover)},
    )


def main() -> None:
    dataset = build_bookshop_dataset()
    print(dataset)

    train_index, test_users, _items, candidates = prepare_topn_protocol(
        dataset, seed=0
    )
    train_view = dataset.subset(train_index)
    sampler = NegativeSampler(train_view, seed=0)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(train_view.n_interactions), n_neg=2
    )

    # Compare the generalized distance family of Section 3.5.
    print(f"\n{'distance':12s} {'HR@10':>8s} {'NDCG@10':>9s}")
    for distance in ("euclidean", "manhattan", "chebyshev", "cosine"):
        mode = "efficient" if distance == "euclidean" else "naive"
        model = GMLFM(dataset, k=16, transform="dnn", n_layers=1,
                      distance=distance, mode=mode,
                      rng=np.random.default_rng(0))
        Trainer(model, TrainConfig(epochs=15, lr=0.02, weight_decay=1e-4,
                                   seed=0)).fit_pointwise(users, items, labels)
        result = evaluate_topn(model, dataset, test_users, candidates)
        print(f"{distance:12s} {result.hr:8.4f} {result.ndcg:9.4f}")
    print("\nEuclidean usually wins — the paper's Table 5 (bottom block).")


if __name__ == "__main__":
    main()
