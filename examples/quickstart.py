"""Quickstart: train GML-FM on a MovieLens-style dataset.

Builds a synthetic MovieLens-like dataset, trains the paper's GML-FMdnn
model on the rating-prediction task, evaluates RMSE, then runs the
leave-one-out top-n protocol — the two tasks of the paper's evaluation.

Run from the repository root (no install needed):

    PYTHONPATH=src python examples/quickstart.py
"""

import numpy as np

from repro.core import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.training import (
    TrainConfig,
    Trainer,
    build_rating_instances,
    evaluate_rating,
    evaluate_topn,
    prepare_topn_protocol,
)


def main() -> None:
    # 1. Data: a MovieLens-like dataset with user demographics and item
    #    genres as side attributes (see repro.data.synthetic for how the
    #    generator stands in for the real corpora).
    dataset = make_dataset("movielens", seed=0, scale=0.5)
    print(dataset)
    print(dataset.feature_space.describe())

    # 2. Rating prediction: ±1 implicit targets, 70/20/10 split.
    instances = build_rating_instances(dataset, n_negatives=2, seed=0)
    model = GMLFM_DNN(dataset, k=32, n_layers=2, rng=np.random.default_rng(0))
    trainer = Trainer(model, TrainConfig(epochs=20, lr=0.03, weight_decay=1e-4,
                                         patience=4, seed=0))
    users, items, labels = instances.split("train")
    trainer.fit_pointwise(
        users, items, labels,
        validate=lambda m: evaluate_rating(m, instances).valid_rmse,
        higher_is_better=False,
    )
    rating = evaluate_rating(model, instances)
    print(f"\nRating prediction  RMSE: valid={rating.valid_rmse:.4f} "
          f"test={rating.test_rmse:.4f}")

    # 3. Top-n recommendation: leave-one-out, 99 sampled negatives.
    train_index, test_users, _test_items, candidates = prepare_topn_protocol(
        dataset, seed=0
    )
    train_view = dataset.subset(train_index)
    sampler = NegativeSampler(train_view, seed=0)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(train_view.n_interactions), n_neg=2
    )
    ranker = GMLFM_DNN(dataset, k=32, n_layers=2, rng=np.random.default_rng(0))
    Trainer(ranker, TrainConfig(epochs=20, lr=0.03, weight_decay=1e-4,
                                seed=0)).fit_pointwise(users, items, labels)
    topn = evaluate_topn(ranker, dataset, test_users, candidates)
    print(f"Top-n recommendation  HR@10={topn.hr:.4f}  NDCG@10={topn.ndcg:.4f}")


if __name__ == "__main__":
    main()
