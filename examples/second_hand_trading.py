"""Second-hand trading scenario (the paper's Mercari motivation).

The paper collected the Mercari dataset to study cold-start and extreme
sparsity: most items are bought once, so item-id embeddings carry almost
no signal and side information (category, condition, shipping) must do
the work.  This example reproduces that study on the Mercari-like
generator:

1. trains GML-FMdnn on the Ticket-like dataset,
2. measures the contribution of each attribute group (paper Table 6),
3. compares against a no-side-information baseline (BPR-MF).

Run:  python examples/second_hand_trading.py
"""

import numpy as np

from repro.core import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.models import BPRMF
from repro.training import (
    TrainConfig,
    Trainer,
    evaluate_topn,
    prepare_topn_protocol,
)

ATTRIBUTE_SETS = {
    "base": [],
    "base+cty": ["category"],
    "base+cty+cdn": ["category", "condition"],
    "base+cty+shp": ["category", "ship_method", "ship_origin", "ship_duration"],
    "base+all": ["category", "condition", "ship_method", "ship_origin",
                 "ship_duration"],
}


def evaluate_with_attributes(dataset, attr_names, seed=0):
    """Train GML-FMdnn on an attribute subset; return (HR, NDCG)."""
    view = dataset.select_fields(attr_names)
    train_index, test_users, _items, candidates = prepare_topn_protocol(
        view, seed=seed
    )
    train_view = view.subset(train_index)
    sampler = NegativeSampler(train_view, seed=seed)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(train_view.n_interactions), n_neg=2
    )
    model = GMLFM_DNN(view, k=32, n_layers=2, rng=np.random.default_rng(seed))
    Trainer(model, TrainConfig(epochs=20, lr=0.03, weight_decay=1e-4,
                               seed=seed)).fit_pointwise(users, items, labels)
    result = evaluate_topn(model, view, test_users, candidates)
    return result.hr, result.ndcg


def main() -> None:
    dataset = make_dataset("mercari-ticket", seed=0, scale=0.5)
    stats = dataset.stats()
    print(f"Mercari-Ticket-like: {stats['users']} buyers, {stats['items']} items, "
          f"sparsity {stats['sparsity']:.4f}")
    counts = dataset.interactions_per_item()
    once = (counts[counts > 0] == 1).mean()
    print(f"{once:.0%} of purchased items were bought exactly once\n")

    print("Attribute effect (paper Table 6):")
    for name, attrs in ATTRIBUTE_SETS.items():
        hr, ndcg = evaluate_with_attributes(dataset, attrs)
        print(f"  {name:14s} HR@10={hr:.4f}  NDCG@10={ndcg:.4f}")

    # Baseline without side information for contrast.
    train_index, test_users, _items, candidates = prepare_topn_protocol(
        dataset, seed=0
    )
    train_view = dataset.subset(train_index)
    sampler = NegativeSampler(train_view, seed=0)
    users, positives, negatives = sampler.build_pairwise_training_set(
        np.arange(train_view.n_interactions), n_neg=2
    )
    bpr = BPRMF(dataset.n_users, dataset.n_items, k=32,
                rng=np.random.default_rng(0))
    Trainer(bpr, TrainConfig(epochs=20, lr=0.05, weight_decay=1e-4,
                             seed=0)).fit_pairwise(users, positives, negatives)
    result = evaluate_topn(bpr, dataset, test_users, candidates)
    print(f"\nBPR-MF (no side information): HR@10={result.hr:.4f}  "
          f"NDCG@10={result.ndcg:.4f}")
    print("Side information is what makes extreme sparsity tractable — "
          "the paper's core motivation.")


if __name__ == "__main__":
    main()
