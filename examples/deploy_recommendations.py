"""Deployment loop: train, persist, reload, serve top-k recommendations.

Shows the post-research path a downstream user takes: train GML-FM once,
save the parameters with ``save_model``, reload them in a fresh process
with ``load_model``, and serve ranked lists with ``recommend``.

Run:  python examples/deploy_recommendations.py
"""

import os
import tempfile

import numpy as np

from repro.core import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.training import (
    TrainConfig,
    Trainer,
    load_model,
    recommend,
    save_model,
)


def main() -> None:
    dataset = make_dataset("amazon-office", seed=0, scale=0.5)
    print(f"catalogue: {dataset.n_items} items, {dataset.n_users} users")

    # Train.
    sampler = NegativeSampler(dataset, seed=0)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(dataset.n_interactions), n_neg=2
    )
    model = GMLFM_DNN(dataset, k=32, n_layers=2, rng=np.random.default_rng(0))
    Trainer(model, TrainConfig(epochs=15, lr=0.02, weight_decay=1e-4,
                               seed=0)).fit_pointwise(users, items, labels)

    # Persist and reload into a freshly constructed model (as a serving
    # process would).
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "gmlfm.npz")
        save_model(model, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"saved parameters: {size_kb:.0f} KiB")

        serving = GMLFM_DNN(dataset, k=32, n_layers=2,
                            rng=np.random.default_rng(123))
        load_model(serving, path)

    # Serve.
    target_users = np.array([0, 1, 2])
    lists = recommend(serving, dataset, target_users, top_k=5)
    subcat_idx, _vals = dataset.item_attrs["subcategory"]
    for user, ranked in zip(target_users, lists):
        seen = sorted(dataset.positives_by_user()[user])[:5]
        print(f"\nuser {user}: previously bought items {seen}")
        for rank, item in enumerate(ranked, start=1):
            print(f"  #{rank}: item {item} (subcategory "
                  f"{subcat_idx[item, 0]})")


if __name__ == "__main__":
    main()
