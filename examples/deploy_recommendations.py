"""Deployment loop: train, bundle an artifact, boot a serving process.

Shows the post-research path a downstream user takes with the serving
subsystem: train GML-FM once, write one self-describing artifact with
``save_artifact``, then boot a :class:`RecommendationService` from the
bundle alone in a fresh process — architecture, encoding metadata and
parameters all travel inside the archive.  The service batch-scores the
catalogue through the model's closed-form fast path, masks seen items,
and caches ranked lists until an interaction update invalidates them.

Run:  python examples/deploy_recommendations.py
"""

import os
import tempfile

import numpy as np

from repro.core import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.serving import RecommendationService, save_artifact
from repro.training import TrainConfig, Trainer


def main() -> None:
    dataset = make_dataset("amazon-office", seed=0, scale=0.5)
    print(f"catalogue: {dataset.n_items} items, {dataset.n_users} users")

    # Train.
    sampler = NegativeSampler(dataset, seed=0)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(dataset.n_interactions), n_neg=2
    )
    model = GMLFM_DNN(dataset, k=32, n_layers=2, rng=np.random.default_rng(0))
    Trainer(model, TrainConfig(epochs=15, lr=0.02, weight_decay=1e-4,
                               seed=0)).fit_pointwise(users, items, labels)

    with tempfile.TemporaryDirectory() as tmp:
        # Bundle everything a serving process needs into one archive.
        path = save_artifact(model, dataset, os.path.join(tmp, "gmlfm"),
                             "GML-FMdnn", {"k": 32, "seed": 0})
        size_kb = os.path.getsize(path) / 1024
        print(f"saved artifact: {size_kb:.0f} KiB at {os.path.basename(path)}")

        # A fresh serving process reconstructs model + dataset from the
        # bundle alone — no training code, no architecture guessing.
        service = RecommendationService.from_artifact(path, top_k=5,
                                                      cache_size=256)

    # Serve a micro-batched multi-user query.
    target_users = [0, 1, 2]
    recs = service.recommend_batch(target_users)
    subcat_idx, _vals = service.dataset.item_attrs["subcategory"]
    for rec in recs:
        seen = sorted(service.index.seen(rec.user).tolist())[:5]
        print(f"\nuser {rec.user}: previously bought items {seen}")
        for rank, (item, score) in enumerate(zip(rec.items, rec.scores), start=1):
            print(f"  #{rank}: item {item} (subcategory {subcat_idx[item, 0]}, "
                  f"score {score:+.3f})")

    # Repeat queries come from the LRU cache; a new interaction
    # invalidates that user's lists.
    service.recommend_batch(target_users)
    service.add_interaction(0, int(recs[0].items[0]))
    refreshed = service.recommend(0)
    print(f"\nafter user 0 bought item {recs[0].items[0]}: "
          f"new top-5 {refreshed.items.tolist()}")
    stats = service.stats()
    print(f"served {stats['requests']} requests, cache hit rate "
          f"{stats['cache']['hit_rate']:.0%}, fast path: {stats['fast_path']}")


if __name__ == "__main__":
    main()
