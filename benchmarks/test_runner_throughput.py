"""Experiment-runner throughput: parallel sweeps + cached encoding.

Times the two halves of the experiment execution engine introduced with
:mod:`repro.experiments.parallel`:

- **parallel sweep** — a 2×2 model × dataset rating sweep executed
  serially and on a process pool.  Results are asserted byte-identical
  (the engine's determinism contract); the wall-time speedup is
  *recorded, not gated* — CPU-bound speedups depend on core count and
  co-tenant load, so a hard threshold would flake on busy CI hosts
  (tests assert the equivalence; this benchmark measures).
- **cached encoding** — one training pass of minibatch encoding through
  ``RecDataset.encode`` (the seed-era per-batch rebuild) versus slicing
  the ``encode_cached`` precompute, gated at ≥ 1.5× (typically far
  higher).

Not ``slow``-marked: this is a fast gate that runs in the tier-1 suite.
Emits one JSON record per workload — printed, and written to
``benchmarks/results/runner_throughput.json`` or the
``REPRO_BENCH_JSON`` path when set.
"""

import os

import numpy as np

from repro.data.batching import minibatches
from repro.data.synthetic import make_dataset
from repro.experiments.configs import ExperimentScale
from repro.experiments.parallel import resolve_workers
from repro.experiments.runner import run_rating_table
from conftest import emit_bench_records, time_best

SWEEP_SCALE = ExperimentScale(name="bench", epochs=8, k=16, dataset_scale=0.4,
                              n_candidates=20, n_seeds=1)
SWEEP_DATASETS = ["amazon-auto", "amazon-office"]
SWEEP_MODELS = ["LibFM", "GML-FMmd"]
BATCH_SIZE = 256
MIN_ENCODE_SPEEDUP = 1.5


def test_runner_throughput(benchmark):
    workers = max(2, min(4, resolve_workers(0)))
    n_cells = len(SWEEP_DATASETS) * len(SWEEP_MODELS)

    def run_sweep():
        records = []

        # -- parallel vs serial table sweep ----------------------------
        serial_results, serial_time = time_best(
            lambda: run_rating_table(SWEEP_DATASETS, SWEEP_MODELS,
                                     scale=SWEEP_SCALE, seed=0, workers=1),
            repeats=1)
        parallel_results, parallel_time = time_best(
            lambda: run_rating_table(SWEEP_DATASETS, SWEEP_MODELS,
                                     scale=SWEEP_SCALE, seed=0,
                                     workers=workers),
            repeats=1)
        assert parallel_results == serial_results, (
            "parallel sweep diverged from the serial table "
            "(determinism contract violated)")
        records.append({
            "benchmark": "runner_throughput",
            "workload": f"rating_sweep_{n_cells}_cells",
            "scale": SWEEP_SCALE.name,
            "n_cells": n_cells,
            "workers": workers,
            "cpu_count": os.cpu_count() or 1,
            "serial_s": serial_time,
            "parallel_s": parallel_time,
            "speedup": serial_time / parallel_time,
            "min_speedup": None,  # recorded, not gated (host-dependent)
        })

        # -- cached encoding vs per-minibatch rebuild ------------------
        dataset = make_dataset("movielens", seed=0, scale=0.5)
        rng = np.random.default_rng(0)
        users = rng.integers(0, dataset.n_users, size=3 * dataset.n_interactions)
        items = rng.integers(0, dataset.n_items, size=users.size)
        batches = list(minibatches(users.size, BATCH_SIZE,
                                   rng=np.random.default_rng(1)))

        def encode_per_batch():
            for batch in batches:
                dataset.encode(users[batch], items[batch])

        def encode_cached_slices():
            indices, values = dataset.encode_cached(users, items)
            for batch in batches:
                indices[batch], values[batch]

        _, fresh_time = time_best(encode_per_batch, repeats=3)
        dataset.encode_cached(users, items)  # build outside the timer once
        _, cached_time = time_best(encode_cached_slices, repeats=3)
        records.append({
            "benchmark": "runner_throughput",
            "workload": f"encode_epoch_{len(batches)}_batches",
            "n_instances": int(users.size),
            "sample_width": int(dataset.sample_width),
            "per_batch_s": fresh_time,
            "cached_s": cached_time,
            "speedup": fresh_time / cached_time,
            "min_speedup": MIN_ENCODE_SPEEDUP,
        })
        return records

    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_bench_records(records, "runner_throughput.json")

    print(f"\nRunner throughput ({records[0]['n_cells']}-cell sweep, "
          f"workers={records[0]['workers']})")
    for record in records:
        print(f"  {record['workload']:>28s}: {record['speedup']:5.1f}x")

    _sweep, encode = records
    assert encode["speedup"] >= encode["min_speedup"], (
        f"cached encoding only {encode['speedup']:.2f}x faster than "
        f"per-minibatch rebuilds (gate {encode['min_speedup']:.1f}x)")
