"""Async micro-batching frontend vs the threaded frontend: JSON records
and gates.

Two records land in ``benchmarks/results/frontend_throughput.json``
(or ``REPRO_BENCH_JSON``):

- ``frontend_throughput`` — the same single-process service driven by
  the seeded Zipf harness behind each frontend (cache disabled so both
  sides score every request).  **Gate**: async req/s ≥ threaded req/s.
  Coalescing concurrent ``/recommend`` calls into one
  ``recommend_batch`` grid pass is the frontend's entire reason to
  exist; if the event loop cannot at least match thread-per-request on
  the same workload, it is a regression, on any core count.
- ``frontend_parity`` — byte-level response equivalence: both frontends
  answer a scripted request stream (happy paths, every client-error
  class, state-changing updates) over shard counts {1, 2, 4} and the
  bodies must be byte-identical; ``/metrics`` must expose the same
  series shape.  **Gate**: parity holds everywhere.
"""

import json
import threading

import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving import RecommendationService, ServingCluster, build_server
from conftest import emit_bench_records
from tests.serving.loadgen import drive, zipf_users

pytestmark = [pytest.mark.serving, pytest.mark.streaming]

MODEL = "BPR-MF"
TOP_K = 10
N_REQUESTS = 400
N_CLIENTS = 8
ASYNC_GATE = 1.0

PARITY_SHARDS = (1, 2, 4)
PARITY_SCRIPT = [
    ("GET", "/healthz", None),
    ("GET", "/recommend?user=1&k=10", None),
    ("GET", "/recommend?user=2&k=10&exclude_seen=false", None),
    ("GET", "/recommend", None),
    ("GET", "/recommend?user=abc", None),
    ("GET", "/recommend?user=999999&k=10", None),
    ("GET", "/nope", None),
    ("POST", "/update", {"user": 0, "item": 1}),
    ("POST", "/update", {"events": [[1, 2], [2, 3]]}),
    ("POST", "/update", b"{oops"),
    ("POST", "/update", b"[1, 2]"),
    ("GET", "/recommend?user=0&k=10", None),
]


def _serve(service, frontend):
    server = build_server(service, frontend=frontend)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _call(url, method, path, body=None):
    import http.client

    host, port = url.split("//")[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        data = None
        headers = {}
        if body is not None:
            data = body if isinstance(body, bytes) else json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=data, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), resp.read()
    finally:
        conn.close()


def measure_throughput(model, dataset) -> dict:
    schedule = zipf_users(dataset.n_users, N_REQUESTS, seed=0)
    results = {}
    for frontend in ("threaded", "async"):
        # Fresh service per frontend: identical cold state both times.
        service = RecommendationService(model, dataset, top_k=TOP_K,
                                        cache_size=0)
        server, thread = _serve(service, frontend)
        try:
            outcome = drive(server.url, schedule, n_threads=N_CLIENTS,
                            k=TOP_K)
        finally:
            _stop(server, thread)
        assert outcome.errors == [], outcome.errors[:3]
        results[frontend] = outcome.summary()

    ratio = (results["async"]["req_per_sec"]
             / results["threaded"]["req_per_sec"])
    return {
        "benchmark": "frontend_throughput",
        "model": MODEL,
        "n_users": dataset.n_users,
        "n_items": dataset.n_items,
        "requests": N_REQUESTS,
        "clients": N_CLIENTS,
        "threaded": results["threaded"],
        "async": results["async"],
        "speedup_req_per_sec": ratio,
        "gate": f"async req/s >= {ASYNC_GATE}x threaded req/s",
        "gate_passed": bool(ratio >= ASYNC_GATE),
    }


def measure_parity(model, dataset) -> dict:
    mismatches = []
    for n_shards in PARITY_SHARDS:
        transcripts = {}
        shapes = {}
        factory = lambda: RecommendationService(  # noqa: E731
            model, dataset, top_k=TOP_K, cache_size=0)
        for frontend in ("threaded", "async"):
            if n_shards == 1:
                front, closer = factory(), None
            else:
                closer = ServingCluster(factory, n_shards=n_shards)
                front = closer.__enter__()
            server, thread = _serve(front, frontend)
            try:
                transcripts[frontend] = [
                    _call(server.url, method, path, body)
                    for method, path, body in PARITY_SCRIPT]
                _, _, metrics_body = _call(server.url, "GET",
                                           "/metrics?format=json")
                shapes[frontend] = sorted(
                    (entry["name"], entry["type"], tuple(sorted(entry)))
                    for entry in json.loads(metrics_body)["metrics"])
            finally:
                _stop(server, thread)
                if closer is not None:
                    closer.__exit__(None, None, None)
        if transcripts["threaded"] != transcripts["async"]:
            mismatches.append(f"shards={n_shards}: response bodies differ")
        if shapes["threaded"] != shapes["async"]:
            mismatches.append(f"shards={n_shards}: metrics shape differs")
    return {
        "benchmark": "frontend_parity",
        "model": MODEL,
        "shards": list(PARITY_SHARDS),
        "script_requests": len(PARITY_SCRIPT),
        "mismatches": mismatches,
        "gate": "byte-identical bodies and metrics shape across frontends "
                "for every shard count",
        "gate_passed": not mismatches,
    }


def test_frontend_throughput(benchmark):
    dataset = make_dataset("movielens", seed=0, scale=2.0)
    model = build_model(MODEL, dataset, k=32, seed=0)

    def run_sweep():
        return [measure_throughput(model, dataset),
                measure_parity(model, dataset)]

    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_bench_records(records, "frontend_throughput.json")

    throughput, parity = records
    print(f"\nFrontend throughput, {throughput['n_users']} users x "
          f"{throughput['n_items']} items, {N_CLIENTS} clients")
    print(f"  threaded: {throughput['threaded']['req_per_sec']:8.1f} req/s  "
          f"p50={throughput['threaded']['p50_ms']:.1f}ms "
          f"p99={throughput['threaded']['p99_ms']:.1f}ms")
    print(f"  async   : {throughput['async']['req_per_sec']:8.1f} req/s  "
          f"p50={throughput['async']['p50_ms']:.1f}ms "
          f"p99={throughput['async']['p99_ms']:.1f}ms  "
          f"({throughput['speedup_req_per_sec']:.2f}x)")
    print(f"  parity  : shards={parity['shards']} "
          f"{'ok' if parity['gate_passed'] else parity['mismatches']}")

    assert throughput["gate_passed"], (
        f"async frontend only {throughput['speedup_req_per_sec']:.2f}x "
        f"the threaded frontend's req/s")
    assert parity["gate_passed"], parity["mismatches"]
