"""Table 3: rating-prediction RMSE over six datasets × ten models.

Paper values (test RMSE, lower is better) for reference:

              MovieLens  Office  Clothing   Auto  Ticket  Books
  MF             0.6389  0.8415    0.9619  0.9762 0.9974  0.9987
  PMF            0.6456  0.8380    0.9417  0.9468 0.9895  0.9993
  LibFM          0.6592  0.8686    0.9213  0.9369 0.9731  0.9688
  NFM            0.6377  0.8584    0.9147  0.9136 0.9218  0.8847
  AFM            0.6780  0.8663    0.9212  0.9315 0.7915  0.8260
  TransFM        0.6617  0.8616    0.9155  0.9282 0.9725  0.9697
  DeepFM         0.6402  0.8179    0.8940  0.9161 0.9444  0.7650
  xDeepFM        0.6412  0.8214    0.8961  0.9126 0.9372  0.7272
  GML-FMmd       0.6472  0.8319    0.8930  0.9050 0.7655  0.7902
  GML-FMdnn      0.6446  0.8153    0.8861  0.8822 0.7572  0.7892

The reproduced *shape*: FM-family beats plain MF on the sparse
datasets, and the GML-FM variants sit at or near the top (the paper's
margins are small on the dense MovieLens).
"""

import numpy as np
import pytest

from repro.experiments import RATING_MODELS, format_table, run_rating_table
from conftest import run_once

pytestmark = pytest.mark.slow

DATASETS = [
    "movielens",
    "amazon-office",
    "amazon-clothing",
    "amazon-auto",
    "mercari-ticket",
    "mercari-books",
]


def test_table3_rating_prediction(benchmark, scale):
    # workers=0 = one process per core; cell results are byte-identical
    # to a serial run, so parallelism only cuts the sweep's wall time.
    results = run_once(
        benchmark,
        lambda: run_rating_table(DATASETS, RATING_MODELS, scale=scale,
                                 workers=0),
    )
    print("\n" + format_table(
        results, DATASETS,
        title="Table 3: rating prediction, test RMSE (lower is better; * = best)",
        lower_is_better=True,
    ))

    # Shape assertions (loose: quick-scale runs are noisy).
    gml_best = {
        d: min(results["GML-FMmd"][d], results["GML-FMdnn"][d]) for d in DATASETS
    }
    baseline_best = {
        d: min(results[m][d] for m in RATING_MODELS if not m.startswith("GML"))
        for d in DATASETS
    }
    # On the two sparsest datasets GML-FM must be competitive with the
    # best baseline (within 10%).  The paper has it winning outright;
    # at quick scale the xDeepFM baseline is stronger than in the paper
    # and the two trade places (see EXPERIMENTS.md).
    for d in ("mercari-ticket", "mercari-books"):
        assert gml_best[d] <= baseline_best[d] * 1.10, (
            f"{d}: GML {gml_best[d]:.4f} vs best baseline {baseline_best[d]:.4f}"
        )
        # And GML-FM must clearly beat the classic FM it generalizes.
        assert gml_best[d] < results["LibFM"][d]
    # Every trained model beats the trivial predictor (RMSE 1.0) on the
    # dense MovieLens dataset.
    for m in RATING_MODELS:
        assert results[m]["movielens"] < 1.0
