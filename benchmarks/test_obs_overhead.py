"""Observability overhead: the instrumented plane must be near-free.

Two records, written to ``benchmarks/results/obs_overhead.json``:

- ``obs_overhead_serving`` — batch-recommend throughput of a
  metrics-on service (the default) against the same service built with
  ``metrics=False`` (null registry, structurally uninstrumented).  The
  gate holds the instrumented path to ≥ 0.97× the uninstrumented
  throughput: counters and histogram observations on the request path
  may cost at most 3%.
- ``obs_training_profile`` — the op-level profile of MF training on
  the quick-scale MovieLens-like dataset: top ops by cumulative
  forward+backward time, the measurement the fused-backend roadmap
  item starts from.  Recorded, not gated — it is attribution, not a
  race.
"""

import time

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.obs.profiler import profile
from repro.serving.service import RecommendationService
from repro.training.trainer import TrainConfig, Trainer
from conftest import emit_bench_records

pytestmark = [pytest.mark.serving, pytest.mark.obs]

GATE = 0.97
# The gate sits at 3%, so the measurement protocol has to push every
# noise source (scheduler spikes, frequency drift, allocation layout)
# well below that; see the comments inside measure().
ROUNDS = 16
REPLICATES = 4


def drive(service, batches):
    for users in batches:
        service.recommend_batch(users)


def drive_timed(service, batches):
    """Per-batch wall times for one pass over ``batches``."""
    times = []
    for users in batches:
        start = time.perf_counter()
        service.recommend_batch(users)
        times.append(time.perf_counter() - start)
    return times


def test_obs_overhead(benchmark, scale):
    dataset = make_dataset("movielens", seed=0, scale=scale.dataset_scale)
    model = build_model("BPR-MF", dataset, k=scale.k, seed=0,
                        train_users=dataset.users,
                        train_items=dataset.items)
    rng = np.random.default_rng(7)
    # Production-shaped batches: per-request instrumentation (a few
    # counter incs + one histogram observe) is a fixed cost, so the
    # gate is stated against batches big enough that scoring dominates.
    batches = [rng.integers(0, dataset.n_users, size=256)
               for _ in range(12)]

    def measure():
        # cache_size=0 pins both services to the scoring path — the
        # quick-scale catalogue is smaller than the default cache, so
        # a warmed cache would answer every request without scoring
        # and the gate would measure the degenerate all-hits case
        # instead of serving work.  Cache accounting still runs (one
        # batched miss increment per request).
        #
        # Several independent service pairs: a service's scorer
        # precompute arrays keep one allocation for the process
        # lifetime, and an unlucky layout (cache aliasing) can make
        # one instance a few percent slower in *every* round.  Fresh
        # replicate pairs re-roll that dice; the per-batch minimum
        # across replicates keeps each side's best layout.
        n = len(batches)
        best_on = [float("inf")] * n
        best_off = [float("inf")] * n
        for replicate in range(REPLICATES):
            instrumented = RecommendationService(model, dataset, top_k=10,
                                                 cache_size=0)
            bare = RecommendationService(model, dataset, top_k=10,
                                         cache_size=0, metrics=False)
            assert instrumented.registry.snapshot() != []
            assert bare.metrics_snapshot() == []
            # Warm both (first calls pay one-time scorer state).
            drive(instrumented, batches)
            drive(bare, batches)
            # Interleaved rounds (order swapping every round, so
            # neither side always owns the just-context-switched
            # slot), reduced to *per-batch* minima: on a noisy shared
            # box whole-drive times swing ±50%, but each ~1.5 ms
            # batch only needs one clean scheduler window across all
            # rounds for its true cost to surface.  Summing the
            # per-batch bests gives each side's achievable throughput
            # with the spikes removed.
            for round_index in range(ROUNDS):
                first, second = ((instrumented, bare)
                                 if round_index % 2 == 0
                                 else (bare, instrumented))
                t_first = drive_timed(first, batches)
                t_second = drive_timed(second, batches)
                t_on, t_off = ((t_first, t_second)
                               if first is instrumented
                               else (t_second, t_first))
                best_on = [min(a, b) for a, b in zip(best_on, t_on)]
                best_off = [min(a, b) for a, b in zip(best_off, t_off)]
        return sum(best_on), sum(best_off)

    on_time, off_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    n_users = sum(len(b) for b in batches)
    ratio = off_time / on_time  # >1 means metrics-on was faster (noise)
    attempts = 1
    if ratio < GATE:
        # One retry before declaring a regression: the protocol above
        # pushes noise to ~1%, but a shared box can still hand one
        # side a bad draw.  A real regression fails both attempts; a
        # noise failure reproduces at well under the false-fail rate
        # squared.
        on_time, off_time = measure()
        ratio = off_time / on_time
        attempts = 2

    # -- op-level training profile (recorded, not gated) ---------------
    train_model = build_model("MF", dataset, k=scale.k, seed=0)
    rng = np.random.default_rng(0)
    users = rng.integers(0, dataset.n_users, size=2048)
    items = rng.integers(0, dataset.n_items, size=2048)
    labels = 2.0 * rng.integers(0, 2, size=2048) - 1.0
    trainer = Trainer(train_model, TrainConfig(epochs=2, batch_size=256))
    with profile() as prof:
        trainer.fit_pointwise(users, items, labels)
    top_ops = prof.summary(top=8)

    records = [
        {
            "benchmark": "obs_overhead_serving",
            "scale": scale.name,
            "model": "BPR-MF",
            "n_users_scored": n_users,
            "n_items": int(dataset.n_items),
            "metrics_on_sec": on_time,
            "metrics_off_sec": off_time,
            "users_per_sec_on": n_users / on_time,
            "users_per_sec_off": n_users / off_time,
            "throughput_ratio": ratio,
            "attempts": attempts,
            "gate": f">= {GATE}x of uninstrumented",
            "gate_passed": bool(ratio >= GATE),
        },
        {
            "benchmark": "obs_training_profile",
            "scale": scale.name,
            "model": "MF",
            "epochs": 2,
            "instances": int(users.size),
            "wall_sec": prof.wall_s,
            "top_ops": top_ops,
        },
    ]
    emit_bench_records(records, "obs_overhead.json")

    print(f"\nObservability overhead (scale={scale.name}):")
    print(f"  metrics on  {n_users / on_time:10.0f} users/s "
          f"({on_time * 1e3:.1f} ms)")
    print(f"  metrics off {n_users / off_time:10.0f} users/s "
          f"({off_time * 1e3:.1f} ms)")
    print(f"  ratio {ratio:.3f}x (gate >= {GATE}x)")
    print("\nTraining profile (top ops by cumulative time):")
    print(prof.format(top=8))

    assert ratio >= GATE, (
        f"metrics-on serving throughput is {ratio:.3f}x the "
        f"uninstrumented baseline (gate {GATE}x): instrumentation is "
        f"no longer near-free")
    assert top_ops and any(row["backward_calls"] > 0 for row in top_ops)
