"""Cluster + ANN serving throughput: JSON records and gates.

Two records land in ``benchmarks/results/cluster_throughput.json``
(or ``REPRO_BENCH_JSON``):

- ``cluster_throughput`` — a live single-process threaded HTTP server
  vs a sharded :class:`~repro.serving.cluster.ServingCluster` behind
  the async micro-batching frontend (the cluster default) under the
  seeded Zipf load harness (:mod:`tests.serving.loadgen`): req/s and
  p50/p99 latency for both deployments.  **Gate**: sharded ≥ 2× the
  single process's req/s on runners with ≥ 2 CPU cores; on a low-core
  box (shard workers are processes, so the fleet is capped at one core
  of scoring) the gate drops to ≥ 1× — the sharded async deployment
  must still *beat* the single threaded process, never merely skip.
- ``ann_retrieval`` — IVF candidate retrieval vs exact full-grid
  scoring on the large synthetic corpus: candidate recall@10 against
  the exact top-10 and the end-to-end scoring speedup
  (score + mask + rank, identical blocks).  **Gates**: recall ≥ 0.95
  and speedup ≥ 5× — both unconditional.

The ANN operating point (``n_clusters ≈ √n``, ``probes = 3``) scans
under a tenth of the catalogue; the recall-safe *default* probe count
is far more conservative (half the clusters — see
:mod:`repro.serving.ann`), so this record doubles as the documented
recall/latency trade-off measurement.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving import RecommendationService, ServingCluster, build_server
from repro.serving.ann import ANNConfig
from repro.serving.index import TopKIndex
from repro.serving.scorer import BatchScorer
from conftest import emit_bench_records, time_best
from tests.serving.loadgen import drive, zipf_users

pytestmark = [pytest.mark.serving, pytest.mark.cluster]

MODEL = "BPR-MF"
TOP_K = 10
N_REQUESTS = 300
N_CLIENTS = 8
ANN_CLUSTERS = 40
ANN_PROBES = 3
SHARD_GATE = 2.0
LOW_CORE_SHARD_GATE = 1.0
ANN_RECALL_GATE = 0.95
ANN_SPEEDUP_GATE = 5.0


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _drive_deployment(front, schedule, frontend="threaded") -> dict:
    server = build_server(front, frontend=frontend)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    try:
        result = drive(server.url, schedule, n_threads=N_CLIENTS, k=TOP_K)
    finally:
        server.shutdown()
        server.server_close()
    assert result.errors == [], result.errors[:3]
    return result.summary()


def measure_sharded(model, dataset, cores) -> dict:
    schedule = zipf_users(dataset.n_users, N_REQUESTS, seed=0)
    # cache_size=0 forces real scoring per request — the throughput
    # comparison must measure compute, not two LRU caches racing.
    factory = lambda: RecommendationService(  # noqa: E731
        model, dataset, top_k=TOP_K, cache_size=0)

    single = _drive_deployment(factory(), schedule, frontend="threaded")
    n_shards = min(4, cores) if cores >= 2 else 2
    # The sharded deployment rides the async micro-batching frontend —
    # the `repro serve --shards N` default — so this record measures
    # the shipped configuration, not a synthetic one.
    with ServingCluster(factory, n_shards=n_shards) as cluster:
        sharded = _drive_deployment(cluster, schedule, frontend="async")

    gate_ratio = SHARD_GATE if cores >= 2 else LOW_CORE_SHARD_GATE
    speedup = sharded["req_per_sec"] / single["req_per_sec"]
    record = {
        "benchmark": "cluster_throughput",
        "model": MODEL,
        "n_users": dataset.n_users,
        "n_items": dataset.n_items,
        "requests": N_REQUESTS,
        "clients": N_CLIENTS,
        "cores": cores,
        "shards": n_shards,
        "frontends": {"single": "threaded", "sharded": "async"},
        "single": single,
        "sharded": sharded,
        "speedup_req_per_sec": speedup,
        "gate": (f">= {gate_ratio}x req/s" if cores >= 2
                 else f">= {gate_ratio}x req/s (low-core floor: the "
                      f"sharded async deployment must still beat the "
                      f"single threaded process)"),
        "gate_passed": bool(speedup >= gate_ratio),
    }
    return record


def measure_ann(model, dataset) -> dict:
    scorer = BatchScorer(model, dataset,
                         ann=ANNConfig(n_clusters=ANN_CLUSTERS,
                                       probes=ANN_PROBES, seed=0))
    assert scorer.ann_active
    index = TopKIndex.from_dataset(dataset)
    users = np.arange(min(256, dataset.n_users), dtype=np.int64)

    def run_exact():
        scores = scorer.score(users)
        index.mask_seen(scores, users)
        return index.topk(scores, TOP_K)

    def run_ann():
        cand = scorer.ann_candidates(users)
        scores = scorer.score_listed(users, cand)
        scores[index.pair_seen(users, cand)] = -np.inf
        cols = index.topk(scores, TOP_K)
        return np.take_along_axis(cand, cols, axis=1)

    exact_items, exact_time = time_best(run_exact, repeats=3)
    ann_items, ann_time = time_best(run_ann, repeats=3)
    recall = float(np.mean([
        np.isin(exact_items[row], ann_items[row]).mean()
        for row in range(users.size)]))
    return {
        "benchmark": "ann_retrieval",
        "model": MODEL,
        "n_users": dataset.n_users,
        "n_items": dataset.n_items,
        "block_users": int(users.size),
        "top_k": TOP_K,
        "n_clusters": ANN_CLUSTERS,
        "probes": ANN_PROBES,
        "scanned_fraction": float(ANN_PROBES / ANN_CLUSTERS),
        "recall_at_10": recall,
        "users_per_sec_exact": users.size / exact_time,
        "users_per_sec_ann": users.size / ann_time,
        "speedup": exact_time / ann_time,
        "gate": f"recall >= {ANN_RECALL_GATE}, speedup >= "
                f"{ANN_SPEEDUP_GATE}x",
    }


def test_cluster_throughput(benchmark):
    dataset = make_dataset("movielens", seed=0, scale=4.0)
    model = build_model(MODEL, dataset, k=32, seed=0)
    cores = _cores()

    def run_sweep():
        return [measure_sharded(model, dataset, cores),
                measure_ann(model, dataset)]

    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_bench_records(records, "cluster_throughput.json")

    sharded, ann = records
    print(f"\nCluster throughput, {sharded['n_users']} users x "
          f"{sharded['n_items']} items, {cores} core(s), "
          f"{sharded['shards']} shards")
    print(f"  single : {sharded['single']['req_per_sec']:8.1f} req/s  "
          f"p50={sharded['single']['p50_ms']:.1f}ms "
          f"p99={sharded['single']['p99_ms']:.1f}ms")
    print(f"  sharded: {sharded['sharded']['req_per_sec']:8.1f} req/s  "
          f"p50={sharded['sharded']['p50_ms']:.1f}ms "
          f"p99={sharded['sharded']['p99_ms']:.1f}ms  "
          f"({sharded['speedup_req_per_sec']:.2f}x)")
    print(f"  ann    : recall@10={ann['recall_at_10']:.4f}  "
          f"{ann['users_per_sec_exact']:.0f} -> "
          f"{ann['users_per_sec_ann']:.0f} users/s "
          f"({ann['speedup']:.1f}x, scans "
          f"{ann['scanned_fraction']:.0%} of the catalogue)")

    assert sharded["gate_passed"], (
        f"sharded async serving only {sharded['speedup_req_per_sec']:.2f}x "
        f"the single threaded process's req/s on {cores} core(s); "
        f"gate: {sharded['gate']}")
    assert ann["recall_at_10"] >= ANN_RECALL_GATE, (
        f"ANN candidate recall@10 {ann['recall_at_10']:.3f} below "
        f"{ANN_RECALL_GATE}")
    assert ann["speedup"] >= ANN_SPEEDUP_GATE, (
        f"ANN scoring only {ann['speedup']:.1f}x faster than the exact "
        f"full grid")
