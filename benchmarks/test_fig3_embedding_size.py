"""Figure 3: HR@10 versus embedding size on the top-n task.

The paper sweeps k ∈ {4 … 512} over four datasets and observes that
GML-FM beats the baselines at most sizes and degrades more gracefully
at large k.  At repo scale we sweep k ∈ {4, 8, 16, 32, 64} over two
datasets (four at full scale) with a representative model subset.
"""

import pytest

from repro.experiments.figures import run_embedding_size_sweep
from conftest import run_once

pytestmark = pytest.mark.slow

MODELS = ["BPR-MF", "NFM", "TransFM", "DeepFM", "xDeepFM", "GML-FMdnn"]
SIZES = [4, 8, 16, 32, 64]


def test_fig3_embedding_size_sweep(benchmark, scale):
    dataset_keys = ["amazon-clothing", "amazon-auto"]
    if scale.name == "full":
        dataset_keys += ["amazon-office", "movielens"]

    # The sweep trains len(MODELS) × len(SIZES) models per dataset, so
    # it caps the per-cell epoch budget at quick scale.  The cells run
    # through the parallel engine (workers=0 = one process per core);
    # curves are byte-identical to the old serial loop.
    sweep_epochs = min(scale.epochs, 15) if scale.name == "quick" else scale.epochs

    curves = run_once(
        benchmark,
        lambda: run_embedding_size_sweep(
            dataset_keys, MODELS, SIZES, scale=scale, seed=0,
            epochs=sweep_epochs, workers=0,
        ),
    )

    from repro.experiments.figures import ascii_chart

    for key, by_model in curves.items():
        print(f"\nFigure 3 ({key}): HR@10 vs embedding size")
        header = f"{'model':12s}" + "".join(f"{k:>8d}" for k in SIZES)
        print(header)
        print("-" * len(header))
        for model_name, curve in by_model.items():
            print(f"{model_name:12s}" + "".join(f"{curve[k]:8.4f}" for k in SIZES))
        print()
        print(ascii_chart(
            {m: {float(k): v for k, v in c.items()} for m, c in by_model.items()},
            title=f"Figure 3 ({key})", x_label="embedding size",
            y_label="HR@10",
        ))

    # Shape assertions: GML-FM is competitive at its best size, and its
    # large-k degradation is bounded (the paper's stability claim).
    for key, by_model in curves.items():
        gml = by_model["GML-FMdnn"]
        best_gml = max(gml.values())
        best_overall = max(max(c.values()) for c in by_model.values())
        assert best_gml >= best_overall * 0.85, key
        assert gml[64] >= best_gml * 0.7, f"{key}: GML-FM collapses at k=64"
