"""Data-plane throughput: the seed sampling loop vs the vectorized CSR path.

The seed's ``NegativeSampler.sample_for_users`` ran a Python double
loop with per-element ``set`` membership over up to 20 retry rounds —
the dominant cost of dataset preparation (2 negatives per training
positive, 99 ranking candidates per test user).  The vectorized sampler
batch-draws and batch-tests against the shared sorted-CSR membership
structure (:mod:`repro.data.membership`) and draws the *same RNG
stream*, so its output is bit-identical while the per-element work
drops to a few ``searchsorted`` passes.

Also measures the grid-based top-n evaluation
(:func:`repro.training.evaluation.evaluate_topn_grid`) against the
flat ``model.predict`` protocol on a grid-capable model, asserting the
metrics agree exactly.

Asserts the vectorized sampler is ≥10× faster at quick scale and emits
one JSON record per workload — printed, and written to
``benchmarks/results/sampling_throughput.json`` or the
``REPRO_BENCH_JSON`` path when set.
"""

import numpy as np

from repro.data.sampling import NegativeSampler, sample_ranking_candidates
from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.training.evaluation import evaluate_topn, evaluate_topn_grid
from conftest import emit_bench_records, time_best

N_NEG_TRAIN = 2
N_CANDIDATES = 99


def legacy_sample_for_users(dataset, users, n_neg, seed):
    """The seed implementation, kept verbatim as the baseline."""
    rng = np.random.default_rng(seed)
    positives = dataset.positives_by_user()
    users = np.asarray(users, dtype=np.int64)
    n_items = dataset.n_items
    out = rng.integers(0, n_items, size=(users.size, n_neg))
    for _ in range(20):
        collision = np.zeros(out.shape, dtype=bool)
        for row, user in enumerate(users):
            pos = positives[user]
            if pos:
                collision[row] = [int(i) in pos for i in out[row]]
        if not collision.any():
            break
        out[collision] = rng.integers(0, n_items, size=int(collision.sum()))
    return out


def test_sampling_throughput(benchmark, scale):
    dataset = make_dataset("movielens", seed=0, scale=scale.dataset_scale)

    # Warm both membership views up front so each path is timed in
    # steady state (the structures are built once per dataset and
    # reused by every sampler/index/evaluation consumer).
    dataset.positives_by_user()
    dataset.membership()

    def run_sweep():
        records = []
        # -- training workload: n_neg per positive interaction --------
        train_users = dataset.users
        loop_out, loop_time = time_best(
            lambda: legacy_sample_for_users(dataset, train_users,
                                            N_NEG_TRAIN, seed=0),
            repeats=1)
        sampler_out, vec_time = time_best(
            lambda: NegativeSampler(dataset, seed=0).sample_for_users(
                train_users, N_NEG_TRAIN),
            repeats=1)
        np.testing.assert_array_equal(
            sampler_out, loop_out,
            err_msg="vectorized sampler diverged from the seed RNG stream")
        records.append({
            "benchmark": "sampling_throughput",
            "workload": f"train_negatives_x{N_NEG_TRAIN}",
            "scale": scale.name,
            "n_draws": int(loop_out.size),
            "n_items": int(dataset.n_items),
            "draws_per_sec_loop": loop_out.size / loop_time,
            "draws_per_sec_vectorized": loop_out.size / vec_time,
            "speedup": loop_time / vec_time,
            "min_speedup": 10.0,
        })

        # -- evaluation workload: 99 candidates per test user ----------
        test_users = np.unique(dataset.users)
        loop_out, loop_time = time_best(
            lambda: legacy_sample_for_users(dataset, test_users,
                                            N_CANDIDATES, seed=0),
            repeats=1)
        sampler_out, vec_time = time_best(
            lambda: NegativeSampler(dataset, seed=0).sample_for_users(
                test_users, N_CANDIDATES),
            repeats=1)
        np.testing.assert_array_equal(
            sampler_out, loop_out,
            err_msg="vectorized sampler diverged from the seed RNG stream")
        # The legacy loop amortizes its per-row Python overhead over 99
        # columns here, so the honest margin is smaller than on the
        # many-rows training workload (~10x vs ~50x at quick scale).
        records.append({
            "benchmark": "sampling_throughput",
            "workload": f"ranking_candidates_x{N_CANDIDATES}",
            "scale": scale.name,
            "n_draws": int(loop_out.size),
            "n_items": int(dataset.n_items),
            "draws_per_sec_loop": loop_out.size / loop_time,
            "draws_per_sec_vectorized": loop_out.size / vec_time,
            "speedup": loop_time / vec_time,
            "min_speedup": 5.0,
        })

        # -- grid evaluation vs flat predict ---------------------------
        test_items = np.zeros(test_users.size, dtype=np.int64)
        candidates = sample_ranking_candidates(
            dataset, test_users, test_items, n_candidates=N_CANDIDATES)
        model = build_model("GML-FMmd", dataset, k=scale.k, seed=0)
        assert model.item_state(dataset) is not None
        flat, flat_time = time_best(
            lambda: evaluate_topn(model, dataset, test_users, candidates),
            repeats=1)
        grid, grid_time = time_best(
            lambda: evaluate_topn_grid(model, dataset, test_users, candidates),
            repeats=1)
        assert grid.hr == flat.hr and grid.ndcg == flat.ndcg, (
            "grid evaluation changed the metrics")
        records.append({
            "benchmark": "evaluation_throughput",
            "workload": f"topn_grid_x{N_CANDIDATES + 1}",
            "scale": scale.name,
            "model": "GML-FMmd",
            "n_users": int(test_users.size),
            "n_items": int(dataset.n_items),
            "users_per_sec_flat": test_users.size / flat_time,
            "users_per_sec_grid": test_users.size / grid_time,
            "speedup": flat_time / grid_time,
        })
        return records

    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_bench_records(records, "sampling_throughput.json")

    print(f"\nData-plane throughput (scale={records[0]['scale']})")
    print(f"{'workload':>26s} {'loop/flat':>12s} {'vectorized':>12s} {'speedup':>9s}")
    for record in records:
        slow = record.get("draws_per_sec_loop", record.get("users_per_sec_flat"))
        fast = record.get("draws_per_sec_vectorized",
                          record.get("users_per_sec_grid"))
        print(f"{record['workload']:>26s} {slow:>12.1f} {fast:>12.1f} "
              f"{record['speedup']:>8.1f}x")

    for record in records:
        if record["benchmark"] == "sampling_throughput":
            assert record["speedup"] >= record["min_speedup"], (
                f"{record['workload']}: vectorized sampler only "
                f"{record['speedup']:.1f}x faster than the Python loop "
                f"(gate {record['min_speedup']:.0f}x)")
