"""The million-user capacity benchmark (slow tier, fresh process).

Runs ``repro scenario run million-user --json`` in a subprocess and
records the emitted capacity record in
``benchmarks/results/scenario_million_user.json``.  The subprocess is
the point: ``peak_rss_mb`` is a process-lifetime high-water mark, so
only a fresh interpreter makes the RSS ceiling a real measurement of
*this* scenario — generation, artifact build, serving — rather than of
whatever the test session touched before.

**Gate** (inside the record, enforced by ``repro bench report`` too):
every sampled list full-length, generation ≥ 100k events/s, serving
≥ 20 users/s, peak RSS ≤ 1536 MB for the 10⁶-user / 10⁵-item corpus
(~10⁷ events, ~90 MB artifact), and the no-materialization bound —
peak buffered events stay within window + in-flight chunks while the
full interaction set is ~20× larger.
"""

import json
import os
import subprocess
import sys

import pytest

from conftest import emit_bench_records, run_once

pytestmark = [pytest.mark.slow, pytest.mark.scenario, pytest.mark.serving]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli_scenario():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "scenario", "run", "million-user",
         "--json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=600)
    assert proc.stdout, proc.stderr
    return json.loads(proc.stdout), proc.returncode


def test_million_user_capacity(benchmark):
    (record, exit_code) = run_once(benchmark, run_cli_scenario)
    emit_bench_records([record], "scenario_million_user.json")

    failed = {check: ok for check, ok in record["checks"].items() if not ok}
    assert record["gate_passed"], failed
    assert exit_code == 0
    assert record["n_users"] == 1_000_000
    assert record["n_items"] == 100_000
    assert record["n_events"] > 5_000_000
    assert record["peak_buffered_events"] < record["n_events"] / 10
    assert record["peak_rss_mb"] > 0.0
