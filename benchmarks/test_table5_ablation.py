"""Table 5: ablation of GML-FM variants on MovieLens and Mercari-Ticket.

Paper blocks and their reproduced shape claims:

1. Transformation weight & Mahalanobis matrix
      w/o weight & M  →  plain Euclidean distance, no weight
      w/ M only       →  Mahalanobis, no weight (worse than Euclidean!)
      w/ weight & M   →  full GML-FMmd (large jump, esp. on Ticket:
                          the paper reports +49% absolute HR)
2. DNN depth 0–3: 1–2 layers best, 3 over-fits.
3. Distance family at one layer: Euclidean beats Manhattan / Chebyshev
   / Cosine, with Cosine (inner-product style) at the bottom.
"""

import pytest

from repro.core.gml_fm import GMLFM
from repro.data import make_dataset
from repro.experiments.runner import run_custom_rating, run_custom_topn
from conftest import run_once

pytestmark = pytest.mark.slow

DATASETS = ["movielens", "mercari-ticket"]


def _variants():
    """Name → model factory for every Table 5 row."""
    def build(**kwargs):
        return lambda ds, rng: GMLFM(ds, k=32, rng=rng, **kwargs)

    rows = {
        "w/o weight & M": build(transform="identity", use_weight=False),
        "w/ M only": build(transform="mahalanobis", use_weight=False,
                           init_std=0.1),
        "w/ weight & M": build(transform="mahalanobis", init_std=0.1),
    }
    for layers in range(4):
        rows[f"#layers {layers}"] = build(transform="dnn", n_layers=layers)
    for distance in ("manhattan", "euclidean", "chebyshev", "cosine"):
        rows[f"dist {distance}"] = build(
            transform="dnn", n_layers=1, distance=distance, mode="naive"
        )
    return rows


def test_table5_ablation(benchmark, scale):
    def run_all():
        datasets = {
            key: make_dataset(key, seed=0, scale=scale.dataset_scale)
            for key in DATASETS
        }
        table = {}
        for name, build in _variants().items():
            table[name] = {}
            for key, ds in datasets.items():
                rmse = run_custom_rating(build, ds, scale=scale)
                hr, ndcg = run_custom_topn(build, ds, scale=scale)
                table[name][key] = (rmse, hr, ndcg)
        return table

    table = run_once(benchmark, run_all)

    print("\nTable 5: GML-FM ablation (RMSE | HR@10 | NDCG@10)")
    header = f"{'variant':18s}" + "".join(f"{d:>30s}" for d in DATASETS)
    print(header)
    print("-" * len(header))
    for name, row in table.items():
        cells = "".join(
            f"{rmse:10.4f} {hr:9.4f} {ndcg:9.4f}" for rmse, hr, ndcg in row.values()
        )
        print(f"{name:18s}{cells}")

    # Shape assertions on the sparse dataset (the paper's headline).
    ticket = {name: row["mercari-ticket"] for name, row in table.items()}

    def hr(name):
        return ticket[name][1]

    # The transformation weight is the critical ingredient: full model
    # far exceeds both unweighted variants.
    assert hr("w/ weight & M") > hr("w/o weight & M")
    assert hr("w/ weight & M") > hr("w/ M only")
    # A learnable metric with at least one layer beats the weighted
    # Euclidean (#layers 0) on one of the two datasets.
    best_deep = max(hr(f"#layers {l}") for l in (1, 2))
    assert best_deep >= hr("#layers 0") * 0.95
    # Euclidean is the strongest base distance.
    assert hr("dist euclidean") >= max(
        hr("dist manhattan"), hr("dist chebyshev"), hr("dist cosine")
    ) * 0.95
