"""Streaming ingestion gate: fold-in throughput and staleness.

Measures the incremental-update pipeline end to end on a synthetic
corpus and gates two properties:

- **throughput** — fold-in updates must sustain at least
  ``MIN_EVENTS_PER_SEC`` events/second (they touch only the event
  rows, so they must be orders of magnitude cheaper than retraining);
- **staleness** — after streaming the newest 20% of training events
  through :class:`repro.training.online.IncrementalTrainer`, the
  model's NDCG@10 must sit within ``MAX_NDCG_GAP`` of a full retrain
  on all events.  The do-nothing baseline (serve the warmup snapshot
  stale) is recorded alongside to show what fold-in buys.

Everything is seeded, so the recorded numbers — and therefore the
gates — are deterministic for a given environment.  JSON records land
in ``benchmarks/results/streaming_throughput.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit_bench_records, run_once
from repro.data.sampling import NegativeSampler
from repro.data.streaming import prequential_split
from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.training.evaluation import evaluate_topn_grid, prepare_topn_protocol
from repro.training.online import IncrementalTrainer, OnlineConfig
from repro.training.trainer import TrainConfig, Trainer

pytestmark = pytest.mark.streaming

SEED = 0
K = 16
EPOCHS = 15
DATASET_SCALE = 0.25
WARMUP_FRAC = 0.8
STREAM_BATCH = 64
FOLD_IN_PASSES = 3
FOLD_IN_LR = 0.03

#: Incremental NDCG@10 must stay within 5% of a full retrain.
MAX_NDCG_GAP = 0.05
#: Fold-in update throughput floor (events/second, all passes counted).
MIN_EVENTS_PER_SEC = 2000.0


def _fit(model, view, seed):
    sampler = NegativeSampler(view, seed=seed)
    trainer = Trainer(model, TrainConfig(epochs=EPOCHS, lr=0.03, seed=seed))
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(view.n_interactions), n_neg=2)
    trainer.fit_pointwise(users, items, labels)
    return model


def _experiment():
    dataset = make_dataset("movielens", seed=SEED, scale=DATASET_SCALE)
    train_index, test_users, _test_items, candidates = prepare_topn_protocol(
        dataset, n_candidates=49, seed=SEED)
    train_view = dataset.subset(train_index)

    # Reference: full retrain over every training event.
    full = _fit(build_model("MF", dataset, k=K, seed=SEED), train_view, SEED)
    ev_full = evaluate_topn_grid(full, dataset, test_users, candidates)

    # Warm start on the oldest 80% (seeded shuffle interleaves users:
    # this measures drift tracking, not cold-start recovery).
    warm_index, stream_index = prequential_split(
        train_view, WARMUP_FRAC, order="shuffled", seed=SEED)
    warm_view = train_view.subset(warm_index)
    model = _fit(build_model("MF", dataset, k=K, seed=SEED), warm_view, SEED)
    ev_stale = evaluate_topn_grid(model, dataset, test_users, candidates)

    # Stream the remaining 20% through fold-in updates, timed.
    stream_users = train_view.users[stream_index]
    stream_items = train_view.items[stream_index]
    trainer = IncrementalTrainer(
        model, warm_view, OnlineConfig(lr=FOLD_IN_LR, seed=SEED))
    start = time.perf_counter()
    for _ in range(FOLD_IN_PASSES):
        for begin in range(0, stream_users.size, STREAM_BATCH):
            trainer.update(stream_users[begin:begin + STREAM_BATCH],
                           stream_items[begin:begin + STREAM_BATCH])
    elapsed = time.perf_counter() - start
    ev_incr = evaluate_topn_grid(model, dataset, test_users, candidates)

    events = int(stream_users.size) * FOLD_IN_PASSES
    return {
        "benchmark": "streaming_throughput",
        "dataset": dataset.name,
        "model": "MF",
        "seed": SEED,
        "train_events": int(train_view.n_interactions),
        "stream_events": int(stream_users.size),
        "fold_in_passes": FOLD_IN_PASSES,
        "events_per_sec": events / elapsed,
        "ndcg_full_retrain": ev_full.ndcg,
        "ndcg_stale": ev_stale.ndcg,
        "ndcg_incremental": ev_incr.ndcg,
        "hr_full_retrain": ev_full.hr,
        "hr_stale": ev_stale.hr,
        "hr_incremental": ev_incr.hr,
        "ndcg_gap": (ev_full.ndcg - ev_incr.ndcg) / ev_full.ndcg,
        "ndcg_gap_stale": (ev_full.ndcg - ev_stale.ndcg) / ev_full.ndcg,
        "max_ndcg_gap": MAX_NDCG_GAP,
        "min_events_per_sec": MIN_EVENTS_PER_SEC,
    }


def test_streaming_throughput_and_staleness(benchmark):
    record = run_once(benchmark, _experiment)
    emit_bench_records([record], "streaming_throughput.json")

    assert record["events_per_sec"] >= MIN_EVENTS_PER_SEC, (
        f"fold-in throughput {record['events_per_sec']:.0f} events/s "
        f"below the {MIN_EVENTS_PER_SEC:.0f} floor")
    assert record["ndcg_gap"] <= MAX_NDCG_GAP, (
        f"incremental NDCG trails full retrain by "
        f"{record['ndcg_gap']:.1%} (> {MAX_NDCG_GAP:.0%})")
    # Sanity: fold-in must actually help over serving the snapshot stale.
    assert record["ndcg_incremental"] > record["ndcg_stale"]
