"""Gated capacity records for the fast adversarial scenarios.

One record per scenario lands in
``benchmarks/results/scenario_capacity.json`` (or ``REPRO_BENCH_JSON``):
the scenario engine's own capacity record — requests/sec, p50/p99
latency, peak RSS, per-window stats — with its ``gate``/``gate_passed``
verdict, so ``repro bench report`` renders and enforces scenario gates
alongside the other throughput gates.

The five fast scenarios run here at their default (CI) scale: real
HTTP serving, real registry models, a few hundred requests each.  The
million-user capacity run has its own module
(``test_scenario_million_user.py``, ``slow`` tier) because its peak-RSS
gate is only meaningful in a fresh process.

**Gate** (per scenario): zero errors, every response a full-length
list, a conservative requests/sec floor (single-core safe), a peak-RSS
ceiling, plus the scenario's own structural check (cold users queried,
all sessions folded in, ANN active across churn, cache hits under the
stampede, diurnal volume actually uneven).
"""

import pytest

from conftest import emit_bench_records, run_once
from repro.scenarios.engine import run_scenario

pytestmark = [pytest.mark.scenario, pytest.mark.serving]

FAST_SCENARIOS = ["cold-start-surge", "session-traffic", "catalog-churn",
                  "flash-crowd", "diurnal"]


def test_scenario_capacity_gates(benchmark):
    def run_sweep():
        return [run_scenario(name, seed=0) for name in FAST_SCENARIOS]

    records = run_once(benchmark, run_sweep)
    emit_bench_records(records, "scenario_capacity.json")

    for record in records:
        failed = {check: ok for check, ok in record["checks"].items()
                  if not ok}
        assert record["gate_passed"], (record["scenario"], failed)
        assert record["requests"] > 0
        assert record["errors"] == 0
        assert 0.0 < record["p50_ms"] <= record["p99_ms"]
