"""Extension ablation: point-wise vs pair-wise (BPR) training of GML-FM.

The paper's future-work section proposes enhancing GML-FM with Bayesian
Personalized Ranking.  The library's trainer already composes with any
scorer, so this benchmark runs the comparison the authors propose: the
same GML-FMdnn architecture trained with the squared loss (the paper's
setup) versus the pairwise BPR objective, on the top-n task.
"""

import numpy as np
import pytest

from repro.core.gml_fm import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.training import (
    TrainConfig,
    Trainer,
    evaluate_topn,
    prepare_topn_protocol,
)
from conftest import run_once

pytestmark = pytest.mark.slow

DATASETS = ["mercari-ticket", "amazon-clothing"]


def test_ablation_pointwise_vs_bpr(benchmark, scale):
    def run_all():
        table = {}
        for key in DATASETS:
            dataset = make_dataset(key, seed=0, scale=scale.dataset_scale)
            train_index, test_users, _items, candidates = prepare_topn_protocol(
                dataset, n_candidates=scale.n_candidates, seed=0
            )
            train_view = dataset.subset(train_index)
            sampler = NegativeSampler(train_view, seed=0)
            rows = np.arange(train_view.n_interactions)

            pointwise = GMLFM_DNN(dataset, k=scale.k, n_layers=2,
                                  rng=np.random.default_rng(0))
            users, items, labels = sampler.build_pointwise_training_set(rows, n_neg=2)
            Trainer(pointwise, TrainConfig(epochs=scale.epochs, lr=0.02,
                                           weight_decay=1e-4, seed=0)
                    ).fit_pointwise(users, items, labels)

            bpr = GMLFM_DNN(dataset, k=scale.k, n_layers=2,
                            rng=np.random.default_rng(0))
            users_p, positives, negatives = sampler.build_pairwise_training_set(
                rows, n_neg=2
            )
            Trainer(bpr, TrainConfig(epochs=scale.epochs, lr=0.02,
                                     weight_decay=1e-4, seed=0)
                    ).fit_pairwise(users_p, positives, negatives)

            table[key] = {
                "pointwise (paper)": evaluate_topn(pointwise, dataset,
                                                   test_users, candidates),
                "BPR (future work)": evaluate_topn(bpr, dataset,
                                                   test_users, candidates),
            }
        return table

    table = run_once(benchmark, run_all)

    print("\nExtension: GML-FMdnn point-wise vs BPR training (HR@10 / NDCG@10)")
    for key, row in table.items():
        print(f"  {key}:")
        for name, result in row.items():
            print(f"    {name:20s} HR {result.hr:.4f}  NDCG {result.ndcg:.4f}")

    # Both objectives must produce models far better than random
    # (HR@10 ≈ 0.1 with 100 candidates).
    for key, row in table.items():
        for name, result in row.items():
            assert result.hr > 0.2, f"{key}/{name}"
