"""Table 6: attribute effect on the Mercari-like datasets (top-n task).

Paper values (HR@10):
                 Ticket          Books
  base           0.1953          0.1506
  base+cty       0.5501          0.4430
  base+cty+cdn   0.5323 (↓)      0.4457
  base+cty+shp   0.5645          0.4465
  base+all       0.5782          0.4458

Shape claims reproduced here: the category attribute produces a large
jump over the id-only base; the condition attribute is weakly
informative (adding it to category does not help the way shipping
does); shipping information helps.
"""

import pytest

from repro.core.gml_fm import GMLFM_DNN
from repro.data import make_dataset
from repro.experiments.runner import run_custom_topn
from conftest import run_once

pytestmark = pytest.mark.slow

ATTRIBUTE_SETS = {
    "base": [],
    "base+cty": ["category"],
    "base+cty+cdn": ["category", "condition"],
    "base+cty+shp": ["category", "ship_method", "ship_origin", "ship_duration"],
    "base+all": ["category", "condition", "ship_method", "ship_origin",
                 "ship_duration"],
}

DATASETS = ["mercari-ticket", "mercari-books"]


def test_table6_attribute_effect(benchmark, scale):
    def run_all():
        table = {}
        for key in DATASETS:
            dataset = make_dataset(key, seed=0, scale=scale.dataset_scale)
            for name, attrs in ATTRIBUTE_SETS.items():
                view = dataset.select_fields(attrs)
                build = lambda ds, rng: GMLFM_DNN(ds, k=scale.k, n_layers=2,
                                                  rng=rng)
                table.setdefault(name, {})[key] = run_custom_topn(
                    build, view, scale=scale
                )
        return table

    table = run_once(benchmark, run_all)

    print("\nTable 6: attribute effect (HR@10 / NDCG@10), GML-FMdnn")
    header = f"{'attributes':16s}" + "".join(f"{d:>22s}" for d in DATASETS)
    print(header)
    print("-" * len(header))
    for name, row in table.items():
        cells = "".join(f"{hr:11.4f} {ndcg:9.4f}" for hr, ndcg in row.values())
        print(f"{name:16s}{cells}")

    # Shape assertions.
    for key in DATASETS:
        base_hr = table["base"][key][0]
        category_hr = table["base+cty"][key][0]
        all_hr = table["base+all"][key][0]
        # Category gives a decisive improvement over the id-only base.
        assert category_hr > base_hr + 0.05, key
        # Full side information stays well above base.
        assert all_hr > base_hr + 0.05, key
    # Shipping helps at least as much as condition on the Ticket data
    # (the paper's "condition is not discriminative" finding).
    ticket_cdn = table["base+cty+cdn"]["mercari-ticket"][0]
    ticket_shp = table["base+cty+shp"]["mercari-ticket"][0]
    assert ticket_shp >= ticket_cdn * 0.95
