"""Table 4: top-n recommendation (HR@10 / NDCG@10), six datasets × 11 models.

Paper values (HR@10) for reference:

              MovieLens  Office  Clothing   Auto  Ticket  Books
  NCF            0.5644  0.2532    0.2737  0.2538 0.3074  0.4274
  BPR-MF         0.6573  0.2612    0.2743  0.3740 0.1222  0.1289
  NGCF           0.5503  0.2609    0.3012  0.3221 0.1010  0.3409
  LibFM          0.3538  0.2100    0.2912  0.3026 0.1320  0.1080
  NFM            0.6701  0.2599    0.2766  0.3029 0.1863  0.1711
  AFM            0.6182  0.2540    0.2968  0.2811 0.4169  0.3328
  TransFM        0.6584  0.2722    0.3413  0.3173 0.2285  0.2514
  DeepFM         0.6650  0.3062    0.3086  0.3272 0.4088  0.4666
  xDeepFM        0.6609  0.3031    0.3221  0.3300 0.4030  0.5337
  GML-FMmd       0.6608  0.3038    0.3465  0.3463 0.5349  0.4324
  GML-FMdnn      0.6709  0.3354    0.3794  0.4133 0.5782  0.4458

Reproduced shape: GML-FM variants at/near the top on the sparse
datasets with the largest margins on Mercari-Ticket; xDeepFM strongest
on Mercari-Books (the paper's one exception).
"""

import pytest

from repro.experiments import TOPN_MODELS, format_table, run_topn_table
from conftest import run_once

pytestmark = pytest.mark.slow

DATASETS = [
    "movielens",
    "amazon-office",
    "amazon-clothing",
    "amazon-auto",
    "mercari-ticket",
    "mercari-books",
]


def test_table4_topn_recommendation(benchmark, scale):
    # workers=0 = one process per core; cell results are byte-identical
    # to a serial run, so parallelism only cuts the sweep's wall time.
    results = run_once(
        benchmark,
        lambda: run_topn_table(DATASETS, TOPN_MODELS, scale=scale,
                               workers=0),
    )
    print("\n" + format_table(
        results, DATASETS,
        title="Table 4: top-n recommendation, HR@10 / NDCG@10 (* = best)",
    ))

    def hr(model, dataset):
        return results[model][dataset][0]

    # Shape assertion: on the sparsest dataset pair, the best GML-FM
    # variant is within 5% of the best model overall (the paper has it
    # winning Ticket outright and second on Books behind xDeepFM).
    for d in ("mercari-ticket",):
        gml = max(hr("GML-FMmd", d), hr("GML-FMdnn", d))
        best = max(hr(m, d) for m in TOPN_MODELS)
        assert gml >= best * 0.95, f"{d}: GML {gml:.4f} vs best {best:.4f}"

    # FM-family exploits side information: its best member beats the
    # best id-only MF-family model on the extremely sparse datasets.
    mf_family = ["NCF", "BPR-MF", "NGCF"]
    fm_family = [m for m in TOPN_MODELS if m not in mf_family]
    for d in ("mercari-ticket", "mercari-books"):
        assert max(hr(m, d) for m in fm_family) > max(hr(m, d) for m in mf_family)
