"""Figures 5–6: t-SNE case study of item-ID embeddings (RQ6).

The paper projects, for two active users, the embeddings of interacted
(positive) versus random non-interacted (negative) items learned by FM,
NFM, TransFM and GML-FM.  The visual claim — metric-learning models
cluster the positives, inner-product models do not — is quantified here
by the silhouette-style cluster-separation score of the 2-D projection.
"""

import numpy as np
import pytest

from repro.analysis import item_embedding_case_study
from repro.core.gml_fm import GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.models import NFM, FactorizationMachine, TransFM
from repro.training import TrainConfig, Trainer
from conftest import run_once

pytestmark = pytest.mark.slow


def _train(model, dataset, epochs, lr, seed=0):
    sampler = NegativeSampler(dataset, seed=seed)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(dataset.n_interactions), n_neg=2
    )
    Trainer(model, TrainConfig(epochs=epochs, lr=lr, weight_decay=1e-4,
                               seed=seed)).fit_pointwise(users, items, labels)
    return model


def test_fig56_embedding_visualization(benchmark, scale):
    def run_all():
        dataset = make_dataset("movielens", seed=0, scale=scale.dataset_scale)
        rng = np.random.default_rng
        models = {
            "FM": _train(FactorizationMachine(dataset, k=scale.k, rng=rng(0)),
                         dataset, scale.epochs, 0.03),
            "NFM": _train(NFM(dataset, k=scale.k, rng=rng(0)),
                          dataset, scale.epochs, 0.03),
            "TransFM": _train(TransFM(dataset, k=scale.k, rng=rng(0)),
                              dataset, scale.epochs, 0.003),
            "GML-FM": _train(GMLFM_DNN(dataset, k=scale.k, n_layers=2, rng=rng(0)),
                             dataset, scale.epochs, 0.02),
        }
        counts = dataset.interactions_per_user()
        users = np.argsort(-counts)[:2]
        separations = {}
        for name, model in models.items():
            separations[name] = {
                int(u): item_embedding_case_study(
                    model, dataset, int(u), seed=0, tsne_iterations=250
                ).separation
                for u in users
            }
        return separations

    separations = run_once(benchmark, run_all)

    users = sorted(next(iter(separations.values())))
    print("\nFigures 5-6: positive/negative cluster separation in t-SNE space")
    print(f"{'model':10s}" + "".join(f"{('user ' + str(u)):>12s}" for u in users)
          + f"{'mean':>10s}")
    print("-" * (10 + 12 * len(users) + 10))
    means = {}
    for name, by_user in separations.items():
        mean = float(np.mean(list(by_user.values())))
        means[name] = mean
        print(f"{name:10s}"
              + "".join(f"{by_user[u]:12.4f}" for u in users)
              + f"{mean:10.4f}")

    # Shape assertion: the metric-learning models separate positives at
    # least as well as the inner-product FM (the paper's Figures 5–6).
    assert max(means["GML-FM"], means["TransFM"]) >= means["FM"] - 0.02
