#!/usr/bin/env python
"""Coverage gate: line coverage of ``repro`` under the fast test suite.

Runs ``pytest -m "not slow"`` with line coverage measured over every
module in ``src/repro`` and gates the total against the checked-in
``COVERAGE_THRESHOLD``.  A JSON record (same shape as the throughput
benchmarks' records) lands in ``benchmarks/results/coverage.json``.

Two engines, picked automatically:

- **pytest-cov** when installed: ``pytest --cov=repro -m "not slow"``
  in a subprocess with a JSON report.
- **stdlib fallback** otherwise (this offline image ships no
  ``coverage``): a ``sys.settrace`` line tracer filtered to
  ``src/repro`` files, with the executable-line universe derived from
  each module's compiled code objects (``co_lines``).  Slower than
  C-tracer coverage, but dependency-free and within a few percent of
  it on this suite.

Not a pytest test file on purpose — it *drives* pytest, so collecting
it from pytest would recurse.  Run it directly::

    PYTHONPATH=src python benchmarks/coverage_check.py
    PYTHONPATH=src python benchmarks/coverage_check.py --threshold 80
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import types

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_ROOT = os.path.join(REPO_ROOT, "src", "repro")
RESULT_PATH = os.path.join(REPO_ROOT, "benchmarks", "results", "coverage.json")

#: Checked-in floor for total line coverage of ``repro`` (percent).
COVERAGE_THRESHOLD = 85.0

#: Arguments of the measured pytest run (the fast tier-1 suite).
PYTEST_ARGS = ["-q", "-m", "not slow", "-p", "no:cacheprovider"]


# ----------------------------------------------------------------------
# Stdlib engine
# ----------------------------------------------------------------------
def source_files() -> list[str]:
    files = []
    for root, _dirs, names in os.walk(SOURCE_ROOT):
        if "__pycache__" in root:
            continue
        files.extend(os.path.join(root, name)
                     for name in names if name.endswith(".py"))
    return sorted(files)


def executable_lines(path: str) -> set[int]:
    """Line numbers that carry code, from the compiled line tables."""
    with open(path, encoding="utf-8") as fh:
        code = compile(fh.read(), path, "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        stack.extend(const for const in obj.co_consts
                     if isinstance(const, types.CodeType))
        lines.update(line for _start, _stop, line in obj.co_lines()
                     if line is not None)
    return lines


def run_with_settrace() -> tuple[int, dict[str, set[int]], dict[str, set[int]]]:
    """Run pytest in-process under a filtered line tracer."""
    import threading

    import pytest

    universe = {path: executable_lines(path) for path in source_files()}
    executed: dict[str, set[int]] = {path: set() for path in universe}
    # co_filename can differ from our walk (relative sys.path entries);
    # memoize its resolution instead of calling abspath per event.
    resolve: dict[str, str | None] = {}

    def canonical(filename: str) -> str | None:
        if filename not in resolve:
            absolute = os.path.abspath(filename)
            resolve[filename] = absolute if absolute in universe else None
        return resolve[filename]

    def local_trace(frame, event, _arg):
        if event == "line":
            path = canonical(frame.f_code.co_filename)
            if path is not None:
                executed[path].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, _arg):
        if event == "call" and canonical(frame.f_code.co_filename):
            return local_trace
        return None

    # Serving tests run request handlers on ThreadingHTTPServer
    # threads; trace those too or the server module reads as dead.
    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        exit_code = int(pytest.main(PYTEST_ARGS))
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return exit_code, universe, executed


def run_with_pytest_cov() -> tuple[int, dict]:
    """Run the suite in a subprocess with pytest-cov's JSON report."""
    import subprocess
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "coverage.json")
        command = [sys.executable, "-m", "pytest", *PYTEST_ARGS,
                   "--cov=repro", f"--cov-report=json:{report}"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p)
        proc = subprocess.run(command, cwd=REPO_ROOT, env=env)
        with open(report) as fh:
            data = json.load(fh)
    return proc.returncode, data


# ----------------------------------------------------------------------
def gate(threshold: float) -> int:
    start = time.perf_counter()
    try:
        import pytest_cov  # noqa: F401
        engine = "pytest-cov"
    except ImportError:
        engine = "settrace"

    per_module: dict[str, dict] = {}
    if engine == "pytest-cov":
        exit_code, data = run_with_pytest_cov()
        total_statements = data["totals"]["num_statements"]
        total_executed = data["totals"]["covered_lines"]
        for path, entry in data["files"].items():
            name = os.path.relpath(os.path.abspath(path), REPO_ROOT)
            per_module[name] = {
                "statements": entry["summary"]["num_statements"],
                "executed": entry["summary"]["covered_lines"],
                "percent": entry["summary"]["percent_covered"],
            }
    else:
        exit_code, universe, executed = run_with_settrace()
        total_statements = total_executed = 0
        for path, lines in sorted(universe.items()):
            hit = executed[path] & lines
            total_statements += len(lines)
            total_executed += len(hit)
            name = os.path.relpath(path, REPO_ROOT)
            per_module[name] = {
                "statements": len(lines),
                "executed": len(hit),
                "percent": 100.0 * len(hit) / len(lines) if lines else 100.0,
            }

    percent = (100.0 * total_executed / total_statements
               if total_statements else 0.0)
    record = {
        "benchmark": "coverage",
        "engine": engine,
        "pytest_exit_code": exit_code,
        "statements": total_statements,
        "executed": total_executed,
        "percent": percent,
        "threshold": threshold,
        "wall_seconds": time.perf_counter() - start,
        "per_module": per_module,
    }
    os.makedirs(os.path.dirname(RESULT_PATH), exist_ok=True)
    with open(RESULT_PATH, "w") as fh:
        json.dump(record, fh, indent=2)

    print("BENCH " + json.dumps(
        {key: record[key] for key in record if key != "per_module"}))
    worst = sorted(per_module.items(), key=lambda kv: kv[1]["percent"])[:8]
    print("least-covered modules:")
    for name, entry in worst:
        print(f"  {entry['percent']:6.1f}%  {name} "
              f"({entry['executed']}/{entry['statements']})")
    print(f"record written to {RESULT_PATH}")

    if exit_code != 0:
        print(f"FAIL: pytest exited {exit_code}")
        return exit_code
    if percent < threshold:
        print(f"FAIL: total coverage {percent:.2f}% is below the "
              f"{threshold:.1f}% threshold")
        return 1
    print(f"OK: total coverage {percent:.2f}% "
          f"(threshold {threshold:.1f}%, engine {engine})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=COVERAGE_THRESHOLD,
                        help="minimum total coverage percent "
                             f"(default {COVERAGE_THRESHOLD})")
    args = parser.parse_args(argv)
    return gate(args.threshold)


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.exit(main())
