"""Section 3.3: the efficient closed form versus the naive double sum.

The paper's complexity claim: evaluating the weighted second-order
interaction costs O(k²·n²) naively and O(k²·n) with the closed form of
Eqs. 10–11.  These benchmarks time both implementations over growing
numbers of active features and assert the scaling gap.
"""

import time

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.distances import squared_euclidean_distance
from repro.core.efficient import (
    pairwise_interaction_efficient,
    pairwise_interaction_naive,
)

K = 16
BATCH = 8
WIDTHS = [16, 64, 256]


def _inputs(width, seed=0):
    rng = np.random.default_rng(seed)
    v = Tensor(rng.normal(size=(BATCH, width, K)))
    x = Tensor(rng.normal(size=(BATCH, width)))
    h = Tensor(rng.normal(size=(K,)))
    return v, x, h


@pytest.mark.parametrize("width", WIDTHS)
def test_naive_forward(benchmark, width):
    v, x, h = _inputs(width)
    benchmark(lambda: pairwise_interaction_naive(
        v, v, x, h, squared_euclidean_distance))


@pytest.mark.parametrize("width", WIDTHS)
def test_efficient_forward(benchmark, width):
    v, x, h = _inputs(width)
    benchmark(lambda: pairwise_interaction_efficient(v, v, x, h))


def test_scaling_gap(benchmark):
    """Explicit sweep printing the table and asserting the scaling."""

    def measure(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run_sweep():
        rows = []
        for width in WIDTHS:
            v, x, h = _inputs(width)
            naive = measure(lambda: pairwise_interaction_naive(
                v, v, x, h, squared_euclidean_distance))
            efficient = measure(lambda: pairwise_interaction_efficient(
                v, v, x, h))
            rows.append((width, naive, efficient))
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nSection 3.3: forward time, naive O(k²n²) vs efficient O(k²n)")
    print(f"{'n (active)':>10s} {'naive (ms)':>12s} {'efficient (ms)':>15s} {'speedup':>9s}")
    for width, naive, efficient in rows:
        print(f"{width:>10d} {naive * 1e3:>12.3f} {efficient * 1e3:>15.3f} "
              f"{naive / efficient:>8.1f}x")

    # The naive/efficient time ratio must grow with n.
    ratios = [naive / efficient for _w, naive, efficient in rows]
    assert ratios[-1] > ratios[0], "efficient form shows no asymptotic advantage"
    # At the largest width the speedup is substantial.
    assert ratios[-1] > 3.0
