"""Figure 4: cold-start rating prediction, GML-FM versus MAMO.

The paper groups MovieLens users/items into warm/cold (four scenarios
W-W, W-C, C-W, C-C) and plots RMSE against the number of training
interactions of the tested user (1–15).  Its surprising finding: GML-FM
beats the meta-learning MAMO consistently, with the gap largest in the
sparsest buckets.
"""

import numpy as np
import pytest

from repro.analysis.cold_start import SCENARIOS, cold_start_rmse_curve, group_cold_start
from repro.core.gml_fm import GMLFM_DNN
from repro.data import make_dataset
from repro.models.mamo import MAMO
from repro.training import (
    TrainConfig,
    Trainer,
    build_rating_instances,
    evaluate_rating,
)
from repro.training.metrics import rmse
from conftest import run_once

pytestmark = pytest.mark.slow


def test_fig4_cold_start_vs_mamo(benchmark, scale):
    def run_all():
        dataset = make_dataset("movielens", seed=0, scale=scale.dataset_scale)
        instances = build_rating_instances(dataset, seed=0)
        users_tr, items_tr, labels_tr = instances.split("train")
        users_te, items_te, labels_te = instances.split("test")

        gml = GMLFM_DNN(dataset, k=scale.k, n_layers=2,
                        rng=np.random.default_rng(0))
        Trainer(gml, TrainConfig(epochs=scale.epochs, lr=0.02,
                                 weight_decay=1e-4, patience=5,
                                 seed=0)).fit_pointwise(
            users_tr, items_tr, labels_tr,
            validate=lambda m: evaluate_rating(m, instances).valid_rmse,
            higher_is_better=False,
        )

        mamo = MAMO(dataset, k=scale.k, n_memory=8,
                    rng=np.random.default_rng(0))
        mamo.meta_fit(users_tr, items_tr, labels_tr,
                      epochs=max(2, scale.epochs // 8), meta_lr=0.01, seed=0)

        def mamo_predict(users, items):
            out = np.empty(users.size)
            for row, user in enumerate(users):
                support = users_tr == user
                out[row] = mamo.predict_for_user(
                    int(user), items_tr[support], labels_tr[support],
                    items[row:row + 1],
                )[0]
            return out

        groups = group_cold_start(dataset)
        train_counts = np.bincount(users_tr, minlength=dataset.n_users)
        gml_pred = gml.predict(users_te, items_te)
        mamo_pred = mamo_predict(users_te, items_te)

        report = {}
        for scenario in SCENARIOS:
            mask = groups.scenario_mask(scenario, users_te, items_te)
            if mask.sum() < 5:
                continue
            report[scenario] = {
                "GML-FM": rmse(gml_pred[mask], labels_te[mask]),
                "MAMO": rmse(mamo_pred[mask], labels_te[mask]),
                "curve_gml": cold_start_rmse_curve(
                    lambda u, i, p=gml_pred, mk=mask: p[mk],
                    users_te[mask], items_te[mask], labels_te[mask],
                    train_counts,
                    # The synthetic MovieLens stand-in is dense, so the
                    # buckets span the observed interaction counts rather
                    # than the paper's fixed 1–15 range.
                    max_interactions=int(train_counts.max())),
            }
        return report

    report = run_once(benchmark, run_all)

    print("\nFigure 4: cold-start RMSE by scenario (lower is better)")
    print(f"{'scenario':10s} {'GML-FM':>8s} {'MAMO':>8s}")
    print("-" * 28)
    for scenario, row in report.items():
        print(f"{scenario:10s} {row['GML-FM']:8.4f} {row['MAMO']:8.4f}")
        buckets = ", ".join(f"{n}:{v:.3f}" for n, v in
                            sorted(row["curve_gml"].items())[:6])
        print(f"           GML-FM RMSE by #train interactions: {buckets}")

    # Shape assertion: GML-FM beats (or matches) MAMO in every scenario,
    # as the paper reports.
    for scenario, row in report.items():
        assert row["GML-FM"] <= row["MAMO"] * 1.05, scenario
