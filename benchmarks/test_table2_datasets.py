"""Table 2: statistics of the evaluation datasets.

Paper values (full size):
  Auto      2,928 users   1,835 items  sparsity 99.62%
  Office    4,905 users   2,420 items  sparsity 99.55%
  Clothing 39,387 users  23,033 items  sparsity 99.96%
  Ticket    3,855 users  45,998 items  sparsity 99.97%
  Books    26,080 users 367,968 items  sparsity 99.99%
  MovieLens 6,040 users   3,706 items  sparsity 95.53%

This benchmark regenerates the table for the synthetic stand-ins and
asserts the property the paper's analysis leans on: the sparsity
*ordering* (MovieLens densest, Mercari sparsest).
"""

from repro.data import make_dataset
from conftest import run_once

DATASETS = [
    "amazon-auto",
    "amazon-office",
    "amazon-clothing",
    "mercari-ticket",
    "mercari-books",
    "movielens",
]


def test_table2_dataset_statistics(benchmark, scale):
    def build_all():
        return {
            key: make_dataset(key, seed=0, scale=scale.dataset_scale)
            for key in DATASETS
        }

    datasets = run_once(benchmark, build_all)

    print("\nTable 2: dataset statistics (synthetic stand-ins)")
    header = f"{'dataset':18s} {'#users':>8s} {'#items':>8s} {'#attr-dim':>10s} {'#instances':>11s} {'sparsity':>9s}"
    print(header)
    print("-" * len(header))
    for key, ds in datasets.items():
        s = ds.stats()
        print(f"{key:18s} {s['users']:8d} {s['items']:8d} {s['attribute_dim']:10d} "
              f"{s['instances']:11d} {s['sparsity']:8.2%}")

    # Shape assertions: the orderings the paper's analysis relies on.
    sparsity = {key: ds.sparsity() for key, ds in datasets.items()}
    assert sparsity["movielens"] == min(sparsity.values())
    assert sparsity["mercari-books"] == max(sparsity.values())
    assert sparsity["amazon-office"] < sparsity["amazon-clothing"]
