"""Shared helpers for the paper-reproduction benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper and prints it in the paper's layout.  Experiments run once inside
``benchmark.pedantic`` so ``pytest benchmarks/ --benchmark-only`` both
times and executes them.

Scale is controlled by the ``REPRO_SCALE`` env var (``quick`` default,
``full`` for the larger configuration); see
:mod:`repro.experiments.configs`.
"""

import json
import os
import time

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def bench_record_path(default_name):
    """Where a throughput benchmark writes its JSON records.

    ``REPRO_BENCH_JSON`` overrides; the default is
    ``benchmarks/results/<default_name>``.
    """
    if "REPRO_BENCH_JSON" in os.environ:
        return os.environ["REPRO_BENCH_JSON"]
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", default_name)


def emit_bench_records(records, default_name):
    """Write records to the JSON sink and print each as a BENCH line."""
    path = bench_record_path(default_name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)
    for record in records:
        print("BENCH " + json.dumps(record))
    print(f"records written to {path}")


def time_best(fn, repeats=3):
    """``(result, best wall time)`` of ``fn`` over ``repeats`` runs.

    Compare two implementations with the *same* ``repeats`` on both
    sides — best-of-N on one side against a single run of the other
    biases the recorded speedup.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.fixture
def scale():
    from repro.experiments.configs import get_scale

    return get_scale()
