"""Shared helpers for the paper-reproduction benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper and prints it in the paper's layout.  Experiments run once inside
``benchmark.pedantic`` so ``pytest benchmarks/ --benchmark-only`` both
times and executes them.

Scale is controlled by the ``REPRO_SCALE`` env var (``quick`` default,
``full`` for the larger configuration); see
:mod:`repro.experiments.configs`.
"""

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def scale():
    from repro.experiments.configs import get_scale

    return get_scale()
