"""Memory-mapped artifact sharing across serving replicas: RSS records
and gate.

One record lands in ``benchmarks/results/serving_memory.json`` (or
``REPRO_BENCH_JSON``): a user-heavy BPR-MF model is saved as a
manifest-layout artifact, then four *independent* replica processes
load it with ``mmap=True`` and touch every parameter page (a full
``np.sum`` over each table — the worst case, every page faulted in).
With all four replicas holding the mapping concurrently, the faulted
pages are file-backed and shared, so each replica's *private* RSS
delta (``Private_Clean + Private_Dirty`` from
``/proc/self/smaps_rollup``) stays a small fraction of the model.

**Gate**: per-replica private-RSS delta ≤ 0.25× the model's parameter
bytes, for every one of the four replicas.  A control replica loading
the same bundle with ``mmap=False`` is recorded ungated — it pays the
full copy and shows the delta the mapping avoids.

Linux-only (``smaps_rollup``); the benchmark skips elsewhere.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.data.dataset import RecDataset
from repro.experiments.registry import build_model
from repro.serving.artifact import save_artifact
from conftest import emit_bench_records

pytestmark = [pytest.mark.serving, pytest.mark.cluster]

MODEL = "BPR-MF"
N_USERS = 60_000
N_ITEMS = 600
N_EVENTS = 6_000
K = 32
N_REPLICAS = 4
RSS_GATE_FRACTION = 0.25

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Runs in each replica subprocess.  Imports happen before the baseline
#: sample so the delta isolates the artifact load + page touch; the
#: READY/GO handshake keeps all replicas mapped while any of them
#: measures, which is what makes the touched pages *shared*.
_REPLICA_SCRIPT = r"""
import json, sys

def rollup():
    vals = {}
    with open("/proc/self/smaps_rollup") as fh:
        for line in fh:
            parts = line.split()
            if len(parts) >= 2 and parts[0].endswith(":"):
                try:
                    vals[parts[0][:-1]] = int(parts[1])
                except ValueError:
                    pass
    return vals

path, use_mmap = sys.argv[1], sys.argv[2] == "1"
import numpy as np
from repro.serving.artifact import load_artifact
import repro.experiments.registry  # noqa: F401  (load_artifact defers this
                                   # import; pull it before the baseline so
                                   # the delta measures data, not modules)

before = rollup()
loaded = load_artifact(path, mmap=use_mmap)
model_bytes = 0
checksum = 0.0
for name, param in sorted(loaded.model.named_parameters()):
    checksum += float(np.sum(param.data))   # faults in every page
    model_bytes += param.data.nbytes
print("READY", flush=True)
sys.stdin.readline()                        # wait for GO
after = rollup()
private_kb = ((after.get("Private_Clean", 0) + after.get("Private_Dirty", 0))
              - (before.get("Private_Clean", 0)
                 + before.get("Private_Dirty", 0)))
anonymous_kb = after.get("Anonymous", 0) - before.get("Anonymous", 0)
print(json.dumps({
    "private_kb": private_kb,
    "anonymous_kb": anonymous_kb,
    "model_bytes": model_bytes,
    "checksum": checksum,
}), flush=True)
sys.stdin.readline()                        # hold the mapping until EXIT
"""


def make_user_heavy_dataset() -> RecDataset:
    """Many users, few interactions: parameter bytes dominated by the
    user embedding table, artifact metadata kept tiny."""
    rng = np.random.default_rng(0)
    users = rng.integers(0, N_USERS, size=N_EVENTS)
    items = rng.integers(0, N_ITEMS, size=N_EVENTS)
    return RecDataset(
        name="user-heavy",
        n_users=N_USERS,
        n_items=N_ITEMS,
        users=users,
        items=items,
        timestamps=np.arange(N_EVENTS, dtype=np.int64),
        user_attrs={},
        item_attrs={},
    )


def _spawn_replica(bundle, mmap):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-c", _REPLICA_SCRIPT, bundle, "1" if mmap else "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)


def _measure_group(procs) -> list[dict]:
    """READY → GO → report → EXIT, with every process still holding its
    mapping while any of them samples smaps (that concurrency is what
    makes the touched file pages *shared*, not private)."""
    for proc in procs:
        assert proc.stdout.readline().strip() == "READY"
    for proc in procs:
        proc.stdin.write("GO\n")
        proc.stdin.flush()
    reports = [json.loads(proc.stdout.readline()) for proc in procs]
    for proc in procs:
        _, err = proc.communicate(input="EXIT\n", timeout=180)
        assert proc.returncode == 0, err
    return reports


def measure_replica_rss(bundle) -> dict:
    replicas = [_spawn_replica(bundle, mmap=True)
                for _ in range(N_REPLICAS)]
    reports = _measure_group(replicas)

    # Control: one replica paying the full copy (mmap=False).
    control, = _measure_group([_spawn_replica(bundle, mmap=False)])

    model_bytes = reports[0]["model_bytes"]
    assert all(r["model_bytes"] == model_bytes for r in reports)
    # Every replica read the same mapped parameters.
    assert len({r["checksum"] for r in reports + [control]}) == 1

    limit_kb = RSS_GATE_FRACTION * model_bytes / 1024
    worst_kb = max(r["private_kb"] for r in reports)
    return {
        "benchmark": "serving_memory",
        "model": MODEL,
        "n_users": N_USERS,
        "n_items": N_ITEMS,
        "k": K,
        "replicas": N_REPLICAS,
        "model_mb": model_bytes / 2 ** 20,
        "replica_private_kb": [r["private_kb"] for r in reports],
        "replica_anonymous_kb": [r["anonymous_kb"] for r in reports],
        "worst_replica_private_kb": worst_kb,
        "control_private_kb": control["private_kb"],
        "control_anonymous_kb": control["anonymous_kb"],
        # Headline for `repro bench report`: how many times less private
        # memory the worst mmap replica holds than the full-copy control.
        "rss_sharing_speedup": control["private_kb"] / max(worst_kb, 1),
        "gate": f"per-replica private RSS delta <= "
                f"{RSS_GATE_FRACTION}x model bytes "
                f"({limit_kb:.0f} kB) with {N_REPLICAS} mmap replicas",
        "gate_passed": bool(worst_kb <= limit_kb),
    }


@pytest.mark.skipif(not os.path.exists("/proc/self/smaps_rollup"),
                    reason="needs /proc smaps_rollup (Linux)")
def test_serving_memory(benchmark, tmp_path):
    dataset = make_user_heavy_dataset()
    model = build_model(MODEL, dataset, k=K, seed=0)
    bundle = save_artifact(model, dataset, str(tmp_path / "bundle"), MODEL,
                           {"k": K}, layout="dir")

    def run_sweep():
        return [measure_replica_rss(bundle)]

    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_bench_records(records, "serving_memory.json")

    record = records[0]
    print(f"\nServing memory, {MODEL} {N_USERS} users x k={K} "
          f"({record['model_mb']:.1f} MB of parameters), "
          f"{N_REPLICAS} mmap replicas")
    print(f"  per-replica private RSS: "
          f"{record['replica_private_kb']} kB "
          f"(worst {record['worst_replica_private_kb']} kB)")
    print(f"  mmap=False control     : "
          f"{record['control_private_kb']} kB private, "
          f"{record['control_anonymous_kb']} kB anonymous")

    assert record["gate_passed"], (
        f"worst replica gained {record['worst_replica_private_kb']} kB "
        f"private RSS; gate: {record['gate']}")
