"""Serving throughput: the seed per-user loop vs the batched scorer.

The seed-era ``recommend`` re-scored the whole catalogue through
``model.predict`` once per user; the serving subsystem scores
``[users, catalogue]`` grids against precomputed item-side state
(:mod:`repro.serving.scorer`).  This benchmark measures users/sec for
both paths on the quick-scale MovieLens-like dataset, asserts the
ranked lists stay identical and the batched path is ≥5× faster, and
emits one JSON record per model (the BENCH trajectory seed) — printed,
and written to ``benchmarks/results/serving_throughput.json`` or the
``REPRO_BENCH_JSON`` path when set.
"""

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving.index import TopKIndex
from repro.serving.scorer import BatchScorer
from conftest import emit_bench_records, time_best

pytestmark = pytest.mark.serving

MODELS = ["BPR-MF", "GML-FMmd"]
TOP_K = 10


def legacy_recommend(model, dataset, users, top_k, batch_items=8192):
    """The seed implementation, kept verbatim as the baseline."""
    users = np.asarray(users, dtype=np.int64)
    n_items = dataset.n_items
    seen = dataset.positives_by_user()
    all_items = np.arange(n_items, dtype=np.int64)
    out = np.empty((users.size, top_k), dtype=np.int64)
    for row, user in enumerate(users):
        scores = np.empty(n_items)
        for start in range(0, n_items, batch_items):
            stop = min(start + batch_items, n_items)
            batch = all_items[start:stop]
            scores[start:stop] = model.predict(
                np.full(batch.size, user, dtype=np.int64), batch
            )
        if seen[user]:
            scores[list(seen[user])] = -np.inf
        top = np.argpartition(-scores, top_k - 1)[:top_k]
        out[row] = top[np.argsort(-scores[top])]
    return out


def batched_recommend(scorer, index, users, top_k):
    """The serving path: one grid scoring pass, vectorized mask + rank."""
    scores = scorer.score(users)
    index.mask_seen(scores, users)
    return index.topk(scores, top_k)


def test_serving_throughput(benchmark, scale):
    dataset = make_dataset("movielens", seed=0, scale=scale.dataset_scale)
    users = np.arange(min(100, dataset.n_users), dtype=np.int64)

    def run_sweep():
        records = []
        for name in MODELS:
            model = build_model(name, dataset, k=scale.k, seed=0,
                                train_users=dataset.users,
                                train_items=dataset.items)
            scorer = BatchScorer(model, dataset)
            index = TopKIndex.from_dataset(dataset)
            assert scorer.uses_fast_path, f"{name} lost its grid fast path"

            legacy_lists, legacy_time = time_best(
                lambda: legacy_recommend(model, dataset, users, TOP_K),
                repeats=1)
            batched_lists, batched_time = time_best(
                lambda: batched_recommend(scorer, index, users, TOP_K),
                repeats=1)
            np.testing.assert_array_equal(
                batched_lists, legacy_lists,
                err_msg=f"{name}: batched top-{TOP_K} diverged from the seed loop")
            records.append({
                "benchmark": "serving_throughput",
                "scale": scale.name,
                "model": name,
                "k": scale.k,
                "n_users": int(users.size),
                "n_items": int(dataset.n_items),
                "top_k": TOP_K,
                "users_per_sec_loop": users.size / legacy_time,
                "users_per_sec_batched": users.size / batched_time,
                "speedup": legacy_time / batched_time,
            })
        return records

    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_bench_records(records, "serving_throughput.json")

    print(f"\nServing throughput, {len(records[0]) and records[0]['n_users']} "
          f"users × {records[0]['n_items']} items (scale={records[0]['scale']})")
    print(f"{'model':>10s} {'loop u/s':>10s} {'batched u/s':>12s} {'speedup':>9s}")
    for record in records:
        print(f"{record['model']:>10s} {record['users_per_sec_loop']:>10.1f} "
              f"{record['users_per_sec_batched']:>12.1f} "
              f"{record['speedup']:>8.1f}x")

    for record in records:
        assert record["speedup"] >= 5.0, (
            f"{record['model']}: batched scorer only {record['speedup']:.1f}x "
            "faster than the per-user loop")
