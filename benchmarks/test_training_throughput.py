"""Fused-backend training throughput: the engine's headline gate.

One record, written to ``benchmarks/results/training_throughput.json``:
MF epoch throughput (instances/second) of the fused float32 backend
against the float64 reference engine on a MovieLens-scale corpus
(12k users x 8k items — the synthetic ``movielens`` key at 20x scale,
where the embedding tables are large enough that the reference
backend's dense ``zeros_like(table)`` gradients and full-table Adam
updates dominate the epoch).  The gate holds the fused backend to
**>= 5x** the reference epoch throughput.

The record also carries per-backend op profiles
(:mod:`repro.obs.profiler`): the embedding share of accounted op time
must *shrink* under the fused backend — proof the win comes from the
sparse gather/scatter path, not from an unrelated constant factor.

Both engines train the same instances from the same seed.  The timed
runs use Adam (the paper protocol), whose lazy sparse variant follows
a *different, documented* trajectory than dense Adam — so correctness
is pinned by a separate plain-SGD probe, where sparse and dense steps
are the same mathematics and the loss trajectories must agree to
float32 precision.  A "fast but wrong" backend cannot pass.
"""

import numpy as np

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.obs.profiler import profile
from repro.training.trainer import TrainConfig, Trainer
from conftest import emit_bench_records, time_best

GATE_SPEEDUP = 5.0
#: MovieLens-scale: the synthetic movielens corpus at 20x its unit
#: scale (12k users x 8k items).  The gap between the backends grows
#: with the embedding-table size (dense gradients and full-table Adam
#: updates are O(table), the sparse path is O(batch)), so this scale
#: buys enough headroom over the 5x gate that allocator / page-cache
#: state from earlier tests in the same process cannot flip the
#: verdict (solo the ratio measures ~25x; a full benchmark run
#: compresses it roughly 2x).
DATASET_SCALE = 20.0
K = 64
EPOCHS = 2
N_INSTANCES = 4096
BATCH_SIZE = 256


def _training_set(dataset):
    rng = np.random.default_rng(0)
    users = rng.integers(0, dataset.n_users, size=N_INSTANCES)
    items = rng.integers(0, dataset.n_items, size=N_INSTANCES)
    labels = 2.0 * rng.integers(0, 2, size=N_INSTANCES) - 1.0
    return users, items, labels


def _fit(dataset, instances, backend, optimizer="adam"):
    users, items, labels = instances
    model = build_model("MF", dataset, k=K, seed=0)
    trainer = Trainer(model, TrainConfig(epochs=EPOCHS,
                                         batch_size=BATCH_SIZE,
                                         backend=backend,
                                         optimizer=optimizer))
    return trainer.fit_pointwise(users, items, labels)


def _embedding_share(dataset, instances, backend, repeats=3):
    """Embedding fraction of accounted op time, best profiled fit.

    "Best" = the fit with the least accounted op time: a profiled run
    is a single timing sample per op, so the fastest of ``repeats``
    fits is the one least distorted by scheduler noise.
    """
    users, items, labels = instances
    best = None
    for _ in range(repeats):
        model = build_model("MF", dataset, k=K, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=EPOCHS,
                                             batch_size=BATCH_SIZE,
                                             backend=backend))
        with profile() as prof:
            trainer.fit_pointwise(users, items, labels)
        rows = prof.summary()
        accounted = sum(row["total_s"] for row in rows)
        embedding = sum(row["total_s"] for row in rows
                        if row["op"] == "embedding")
        if best is None or accounted < best[0]:
            best = (accounted, embedding / accounted, prof.summary(top=6))
    return best[1], best[2]


def test_training_throughput(benchmark, scale):
    dataset = make_dataset("movielens", seed=0, scale=DATASET_SCALE)
    instances = _training_set(dataset)

    def measure():
        ref_result, ref_time = time_best(
            lambda: _fit(dataset, instances, "reference"), repeats=3)
        fused_result, fused_time = time_best(
            lambda: _fit(dataset, instances, "fused"), repeats=3)
        return ref_result, ref_time, fused_result, fused_time

    ref_result, ref_time, fused_result, fused_time = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = ref_time / fused_time
    attempts = 1
    if speedup < GATE_SPEEDUP:
        # One retry before declaring a regression: time_best(3) absorbs
        # scheduler spikes, but a shared box can still starve one side.
        ref_result, ref_time, fused_result, fused_time = measure()
        speedup = ref_time / fused_time
        attempts = 2

    total = EPOCHS * N_INSTANCES
    ref_share, _ref_ops = _embedding_share(dataset, instances, "reference")
    fused_share, fused_ops = _embedding_share(dataset, instances, "fused")

    record = {
        "benchmark": "training_throughput_mf",
        "scale": scale.name,
        "model": "MF",
        "dataset_shape": [int(dataset.n_users), int(dataset.n_items)],
        "k": K,
        "epochs": EPOCHS,
        "instances": N_INSTANCES,
        "batch_size": BATCH_SIZE,
        "reference_sec": ref_time,
        "fused_sec": fused_time,
        "reference_instances_per_sec": total / ref_time,
        "fused_instances_per_sec": total / fused_time,
        "speedup": speedup,
        "attempts": attempts,
        "embedding_share_reference": ref_share,
        "embedding_share_fused": fused_share,
        "fused_top_ops": fused_ops,
        "final_loss_reference": ref_result.train_losses[-1],
        "final_loss_fused": fused_result.train_losses[-1],
        "gate": f">= {GATE_SPEEDUP}x reference epoch throughput",
        "gate_passed": bool(speedup >= GATE_SPEEDUP),
    }
    emit_bench_records([record], "training_throughput.json")

    print(f"\nTraining throughput, MF on {dataset.n_users}x"
          f"{dataset.n_items} (k={K}):")
    print(f"  reference {total / ref_time:10.0f} inst/s "
          f"({ref_time * 1e3:.1f} ms)")
    print(f"  fused     {total / fused_time:10.0f} inst/s "
          f"({fused_time * 1e3:.1f} ms)")
    print(f"  speedup {speedup:.2f}x (gate >= {GATE_SPEEDUP}x)")
    print(f"  embedding share of op time: reference {ref_share:.1%} "
          f"-> fused {fused_share:.1%}")

    # Correctness guards.  Lazy sparse Adam follows a different
    # (documented) trajectory than dense Adam, so the Adam runs only
    # assert sanity; the mathematics of the sparse gather/scatter and
    # optimizer row updates are pinned with plain SGD, where sparse
    # and dense steps are the same formula and must agree to float32
    # precision.
    assert np.isfinite(fused_result.train_losses).all()
    assert fused_result.train_losses[-1] < fused_result.train_losses[0]
    sgd_ref = _fit(dataset, instances, "reference", optimizer="sgd")
    sgd_fused = _fit(dataset, instances, "fused", optimizer="sgd")
    np.testing.assert_allclose(sgd_fused.train_losses,
                               sgd_ref.train_losses, rtol=1e-4)
    # The win must land where the roadmap aimed it: the embedding
    # gather/scatter share shrinks under the sparse backward.
    assert fused_share < ref_share
    assert speedup >= GATE_SPEEDUP, (
        f"fused backend trained at {speedup:.2f}x the reference epoch "
        f"throughput (gate {GATE_SPEEDUP}x): the float32/fusion/sparse-"
        f"gradient stack lost its win")
