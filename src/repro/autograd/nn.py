"""Neural-network layers on top of the autograd engine.

Provides a small ``Module`` system mirroring the PyTorch API surface the
paper's models need: parameter registration/recursion, train/eval mode,
``Linear``, ``Embedding``, ``Dropout``, activations and containers.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.autograd import init, ops
from repro.autograd.tensor import Tensor


class Module:
    """Base class with automatic parameter and submodule registration."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value):
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor in this module tree."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant (depth-first)."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted name, module)`` for the whole subtree."""
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for module in self._modules.values():
            module.eval()
        return self

    def to_dtype(self, dtype) -> "Module":
        """Convert every parameter to ``dtype``, in place.

        Conversion keeps each ``Tensor``'s identity (only ``.data`` is
        replaced) so references held elsewhere stay valid — but any
        optimizer constructed *before* the conversion holds state
        buffers of the old dtype and will refuse to step.  Convert
        first, then build the optimizer.  Subclasses carrying
        non-parameter numeric state (e.g. a cached adjacency matrix)
        convert it in :meth:`_convert_extras`.
        """
        dtype = np.dtype(dtype)
        for module in self.modules():
            for param in module._parameters.values():
                if param.data.dtype != dtype:
                    param.data = param.data.astype(dtype)
                    param.grad = None
            module._convert_extras(dtype)
        return self

    def _convert_extras(self, dtype: np.dtype) -> None:
        """Hook for subclasses holding non-parameter numeric state."""

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray],
                        assign: bool = False) -> None:
        """Load parameter arrays keyed by dotted name.

        With ``assign=False`` (default) values are copied into the
        existing parameter buffers, preserving their dtype and memory.
        With ``assign=True`` each ``Tensor``'s ``.data`` is *rebound* to
        the given array without copying — tensor identities survive, the
        old buffers are dropped, and the incoming arrays (dtype,
        flags and all) become the live parameters.  That is the
        zero-copy path the serving stack uses to run models directly
        over memory-mapped read-only artifact views; such parameters
        report ``writeable=False`` and reject in-place updates.
        """
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state_dict missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = state[name] if assign else np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            if assign:
                param.data = value
                param.grad = None
            else:
                param.data[...] = value

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class ModuleList(Module):
    """Hold an ordered list of submodules."""

    def __init__(self, modules: Optional[list[Module]] = None):
        super().__init__()
        self._list: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._list)
        self._list.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class Linear(Module):
    """Affine layer ``y = x W + b`` with weight shape ``[in, out]``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, std: Optional[float] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if std is not None:
            self.weight = init.normal((in_features, out_features), std=std, rng=rng)
        else:
            self.weight = init.xavier_uniform((in_features, out_features), rng=rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of shape ``[num_embeddings, dim]``."""

    def __init__(self, num_embeddings: int, dim: int, std: float = 0.01,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = init.normal((num_embeddings, dim), std=std, rng=rng)

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.embedding(self.weight, indices)


class Dropout(Module):
    """Inverted dropout controlled by the module's training flag."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self.training, rng=self._rng)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._list: list[Module] = []
        for index, module in enumerate(modules):
            self._list.append(module)
            self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._list:
            x = module(x)
        return x


ACTIVATIONS = {
    "tanh": Tanh,
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "identity": Identity,
}


def make_mlp(dims: list[int], activation: str = "tanh", dropout: float = 0.0,
             rng: Optional[np.random.Generator] = None, std: Optional[float] = None) -> Sequential:
    """Build an MLP ``dims[0] -> dims[1] -> ... -> dims[-1]``.

    An activation follows every linear layer and a dropout layer sits
    between consecutive hidden layers, matching the paper's Section 3.2.2.
    """
    if activation not in ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}")
    layers: list[Module] = []
    for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
        if index > 0 and dropout > 0.0:
            layers.append(Dropout(dropout, rng=rng))
        layers.append(Linear(d_in, d_out, rng=rng, std=std))
        layers.append(ACTIVATIONS[activation]())
    return Sequential(*layers)
