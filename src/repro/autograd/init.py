"""Parameter initializers.

The paper initializes all parameters from N(0, 0.01) (Section 4.4); we
expose that default plus Xavier variants used by the deeper baselines.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.backend import active_dtype
from repro.autograd.tensor import Tensor


def normal(shape, std: float = 0.01, rng: np.random.Generator | None = None) -> Tensor:
    """Gaussian init with mean 0 — the paper's default (std=0.01).

    The random draw is always float64 (so the stream of variates is
    backend-independent), then cast to the active backend's dtype.
    """
    rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
    return Tensor(rng.normal(0.0, std, size=shape).astype(active_dtype()),
                  requires_grad=True)


def xavier_uniform(shape, rng: np.random.Generator | None = None) -> Tensor:
    """Glorot/Xavier uniform init for 2-D weight matrices."""
    rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-limit, limit, size=shape).astype(active_dtype()),
                  requires_grad=True)


def zeros(shape) -> Tensor:
    """Zero init (used for biases)."""
    return Tensor(np.zeros(shape, dtype=active_dtype()), requires_grad=True)


def identity_matrix(k: int) -> Tensor:
    """Identity init (used to start Mahalanobis L near Euclidean)."""
    return Tensor(np.eye(k, dtype=active_dtype()), requires_grad=True)
