"""A numpy-backed tensor with reverse-mode automatic differentiation.

The design follows the classic tape-based approach: every operation that
produces a :class:`Tensor` records its parents and a closure computing the
local vector-Jacobian product.  Calling :meth:`Tensor.backward` performs a
topological sort of the recorded graph and accumulates gradients into the
``grad`` attribute of every leaf with ``requires_grad=True``.

All arithmetic supports numpy broadcasting; gradients of broadcast
operands are reduced back to the operand's original shape by
:func:`unbroadcast`.

Execution strategy is pluggable (:mod:`repro.autograd.backend`): leaf
tensors are created in the active backend's dtype, and under a fusing
backend a run of elementwise ops collapses into a single tape node (see
:meth:`Tensor._chain`).  Under the default **reference** backend this
module behaves exactly as the original float64 engine did — same dtypes,
same closures, same flop order.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.autograd import backend as _backend

#: Reference dtype (the pre-backend engine's only dtype).  New code
#: should consult :func:`repro.autograd.backend.active_dtype` instead;
#: this survives as the reference backend's dtype and for eval-side
#: accumulators that deliberately stay float64.
DTYPE = np.float64

Number = Union[int, float, np.floating]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used during evaluation to avoid building (and paying for) the tape.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    """Return whether operations currently record the gradient tape."""
    return _GRAD_ENABLED


def _fuse_active() -> bool:
    """Whether new elementwise ops should extend fused chains."""
    return _GRAD_ENABLED and _backend.active_backend().fuse_elementwise


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summation happens over the leading axes numpy prepended and over any
    axis that was broadcast from size 1.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes broadcast from 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def _as_array(value: ArrayLike, dtype: Optional[np.dtype] = None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype if dtype is not None
                      else _backend.active_dtype())


def _as_tensor(value: ArrayLike, dtype: Optional[np.dtype] = None) -> "Tensor":
    if isinstance(value, Tensor):
        return value
    return Tensor._from_data(
        np.asarray(value, dtype=dtype if dtype is not None
                   else _backend.active_dtype()))


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array; cast to the active
        backend's dtype (float64 under the reference backend).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` when
        :meth:`backward` is called on a downstream tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_op", "_chain_root", "_chain_deriv")

    __array_priority__ = 100.0  # ensure np_scalar * Tensor dispatches to us

    #: Declared profile surface: method name → canonical op name.  The
    #: opt-in op profiler (:mod:`repro.obs.profiler`) patches exactly
    #: these entry points while active and restores them on exit; the
    #: engine itself carries no profiling branches.  Kept next to the
    #: class so adding an op and forgetting the profiler is a one-line,
    #: reviewable omission rather than silent drift.
    PROFILE_METHODS = {
        "__add__": "add", "__sub__": "sub", "__rsub__": "sub",
        "__mul__": "mul", "__truediv__": "div", "__rtruediv__": "div",
        "__neg__": "neg", "__pow__": "pow", "__matmul__": "matmul",
        "__rmatmul__": "matmul", "__getitem__": "getitem",
        "reshape": "reshape", "transpose": "transpose",
        "swapaxes": "swapaxes", "expand_dims": "expand_dims",
        "squeeze": "squeeze", "sum": "sum", "mean": "mean", "max": "max",
        "exp": "exp", "log": "log", "sqrt": "sqrt", "abs": "abs",
        "tanh": "tanh", "sigmoid": "sigmoid", "relu": "relu",
        "clip": "clip",
    }

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=_backend.active_dtype())
        self.requires_grad = bool(requires_grad)
        self.grad = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self._op: str = "leaf"
        self._chain_root: Optional["Tensor"] = None
        self._chain_deriv = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_data(cls, data: np.ndarray,
                   requires_grad: bool = False) -> "Tensor":
        """Wrap an array as-is — no dtype cast (derived tensors keep the
        dtype their op produced; numpy promotion rules apply)."""
        out = cls.__new__(cls)
        out.data = np.asarray(data)
        out.requires_grad = requires_grad
        out.grad = None
        out._backward = None
        out._parents = ()
        out._op = "leaf"
        out._chain_root = None
        out._chain_deriv = None
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Create a non-leaf tensor, recording the tape when enabled."""
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor._from_data(data, requires_grad=requires)
        if requires:
            out._backward = backward
            out._parents = parents
            out._op = op
        return out

    def _chain(self, data: np.ndarray, deriv, op: str) -> "Tensor":
        """Extend (or start) a fused elementwise chain ending at ``self``.

        ``deriv`` is the new op's local derivative w.r.t. its input —
        an array of the op's shape, a scalar, or ``None`` for identity
        (add/sub of a constant).  The produced node's parent is the
        *chain root*, not ``self``: backward multiplies the upstream
        gradient once by the accumulated derivative instead of
        dispatching one closure per op in the chain.

        Only called when ``_fuse_active()`` and ``self.requires_grad``;
        shapes are the caller's responsibility (elementwise, no
        broadcasting of the grad operand).
        """
        root = self._chain_root if self._chain_root is not None else self
        if self._chain_deriv is None:
            acc = deriv
        elif deriv is None:
            acc = self._chain_deriv
        else:
            acc = self._chain_deriv * deriv

        if acc is None:
            def backward(g: np.ndarray):
                return (g,)
        else:
            def backward(g: np.ndarray):
                return (g * acc,)

        out = Tensor._make(data, (root,), backward, op)
        if out.requires_grad:
            out._chain_root = root
            out._chain_deriv = acc
        return out

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor._from_data(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar outputs
        require an explicit upstream gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in seen:
                        stack.append((parent, False))

        visit(self)

        # Values are ndarrays or SparseRowGrads (fused embedding
        # backward); both support `+` accumulation and `.copy()`.
        grads: dict = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            node._accumulate_parent_grads(node_grad, grads)

    def _accumulate_parent_grads(
        self, node_grad: np.ndarray, grads: dict
    ) -> None:
        parent_grads = self._backward(node_grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _as_tensor(other, self.data.dtype)
        a, b = self.data, other_t.data
        out = a + b
        if _fuse_active() and self.requires_grad != other_t.requires_grad:
            node = self if self.requires_grad else other_t
            if out.shape == node.data.shape:
                return node._chain(out, None, "add")

        def backward(g: np.ndarray):
            return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

        return Tensor._make(out, (self, other_t), backward, "add")

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = _as_tensor(other, self.data.dtype)
        a, b = self.data, other_t.data
        out = a - b
        if _fuse_active() and self.requires_grad != other_t.requires_grad:
            node, deriv = (self, None) if self.requires_grad else (other_t, -1.0)
            if out.shape == node.data.shape:
                return node._chain(out, deriv, "sub")

        def backward(g: np.ndarray):
            return unbroadcast(g, a.shape), unbroadcast(-g, b.shape)

        return Tensor._make(out, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other, self.data.dtype).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _as_tensor(other, self.data.dtype)
        a, b = self.data, other_t.data
        out = a * b
        if _fuse_active() and self.requires_grad != other_t.requires_grad:
            node, deriv = (self, b) if self.requires_grad else (other_t, a)
            if out.shape == node.data.shape:
                return node._chain(out, deriv, "mul")

        def backward(g: np.ndarray):
            return unbroadcast(g * b, a.shape), unbroadcast(g * a, b.shape)

        return Tensor._make(out, (self, other_t), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _as_tensor(other, self.data.dtype)
        a, b = self.data, other_t.data
        out = a / b
        if _fuse_active() and self.requires_grad != other_t.requires_grad:
            if self.requires_grad:
                node, deriv = self, 1.0 / b
            else:
                node, deriv = other_t, -a / (b * b)
            if out.shape == node.data.shape:
                return node._chain(out, deriv, "div")

        def backward(g: np.ndarray):
            return (
                unbroadcast(g / b, a.shape),
                unbroadcast(-g * a / (b * b), b.shape),
            )

        return Tensor._make(out, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other, self.data.dtype).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out = -self.data
        if _fuse_active() and self.requires_grad:
            return self._chain(out, -1.0, "neg")

        def backward(g: np.ndarray):
            return (-g,)

        return Tensor._make(out, (self,), backward, "neg")

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self.data
        out = a ** exponent
        if _fuse_active() and self.requires_grad:
            return self._chain(out, exponent * a ** (exponent - 1), "pow")

        def backward(g: np.ndarray):
            return (g * exponent * a ** (exponent - 1),)

        return Tensor._make(out, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = _as_tensor(other, self.data.dtype)
        a, b = self.data, other_t.data
        out = a @ b

        def backward(g: np.ndarray):
            # Promote 1-D operands to 2-D so a single rule covers every
            # case, then squeeze the promoted axis out of the gradient.
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            if a.ndim == 1 and b.ndim == 1:
                g2 = g.reshape(1, 1)
            else:
                g2 = g
                if a.ndim == 1:
                    g2 = np.expand_dims(g2, -2)
                if b.ndim == 1:
                    g2 = np.expand_dims(g2, -1)
            ga = g2 @ np.swapaxes(b2, -1, -2)
            gb = np.swapaxes(a2, -1, -2) @ g2
            if a.ndim == 1:
                ga = ga.reshape(ga.shape[:-2] + (ga.shape[-1],))
                if ga.ndim > 1:
                    ga = ga.reshape(-1, a.shape[0]).sum(axis=0)
            if b.ndim == 1:
                gb = gb.reshape(gb.shape[:-1])
                if gb.ndim > 1:
                    gb = gb.reshape(-1, b.shape[0]).sum(axis=0)
            return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

        return Tensor._make(out, (self, other_t), backward, "matmul")

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other, self.data.dtype).__matmul__(self)

    # ------------------------------------------------------------------
    # Comparison (no gradient; returns plain numpy boolean arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other, self.data.dtype)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other, self.data.dtype)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other, self.data.dtype)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other, self.data.dtype)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self.data
        out = a.reshape(shape)

        def backward(g: np.ndarray):
            return (g.reshape(a.shape),)

        return Tensor._make(out, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        a = self.data
        if not axes:
            axes = tuple(reversed(range(a.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = a.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray):
            return (g.transpose(inverse),)

        return Tensor._make(out, (self,), backward, "transpose")

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        a = self.data
        out = np.swapaxes(a, axis1, axis2)

        def backward(g: np.ndarray):
            return (np.swapaxes(g, axis1, axis2),)

        return Tensor._make(out, (self,), backward, "swapaxes")

    def expand_dims(self, axis: int) -> "Tensor":
        a = self.data
        out = np.expand_dims(a, axis)

        def backward(g: np.ndarray):
            return (np.squeeze(g, axis=axis),)

        return Tensor._make(out, (self,), backward, "expand_dims")

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        a = self.data
        out = np.squeeze(a, axis=axis)

        def backward(g: np.ndarray):
            return (g.reshape(a.shape),)

        return Tensor._make(out, (self,), backward, "squeeze")

    def __getitem__(self, index) -> "Tensor":
        a = self.data
        out = a[index]

        def backward(g: np.ndarray):
            full = np.zeros_like(a)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(out, (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self.data
        out = a.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, a.shape).copy(),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(ax % a.ndim for ax in axes):
                    g_expanded = np.expand_dims(g_expanded, ax)
            return (np.broadcast_to(g_expanded, a.shape).copy(),)

        return Tensor._make(out, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self.data
        if axis is None:
            count = a.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([a.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self.data
        out = a.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            out_b = a.max(axis=axis, keepdims=True)
            mask = (a == out_b).astype(a.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(ax % a.ndim for ax in axes):
                    g_expanded = np.expand_dims(g_expanded, ax)
            return (mask * g_expanded,)

        return Tensor._make(out, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, out, "exp")

        def backward(g: np.ndarray):
            return (g * out,)

        return Tensor._make(out, (self,), backward, "exp")

    def log(self) -> "Tensor":
        a = self.data
        out = np.log(a)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, 1.0 / a, "log")

        def backward(g: np.ndarray):
            return (g / a,)

        return Tensor._make(out, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, 0.5 / out, "sqrt")

        def backward(g: np.ndarray):
            return (g * 0.5 / out,)

        return Tensor._make(out, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        a = self.data
        out = np.abs(a)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, np.sign(a), "abs")

        def backward(g: np.ndarray):
            return (g * np.sign(a),)

        return Tensor._make(out, (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, 1.0 - out * out, "tanh")

        def backward(g: np.ndarray):
            return (g * (1.0 - out * out),)

        return Tensor._make(out, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        a = self.data
        out = np.empty_like(a)
        positive = a >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-a[positive]))
        exp_a = np.exp(a[~positive])
        out[~positive] = exp_a / (1.0 + exp_a)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, out * (1.0 - out), "sigmoid")

        def backward(g: np.ndarray):
            return (g * out * (1.0 - out),)

        return Tensor._make(out, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        a = self.data
        out = np.maximum(a, 0.0)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, a > 0.0, "relu")

        def backward(g: np.ndarray):
            return (g * (a > 0.0),)

        return Tensor._make(out, (self,), backward, "relu")

    def clip(self, low: Number, high: Number) -> "Tensor":
        a = self.data
        out = np.clip(a, low, high)
        if _fuse_active() and self.requires_grad:
            return self._chain(out, (a >= low) & (a <= high), "clip")

        def backward(g: np.ndarray):
            return (g * ((a >= low) & (a <= high)),)

        return Tensor._make(out, (self,), backward, "clip")


# ----------------------------------------------------------------------
# Module-level constructors
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """Create a zero-filled tensor of the given shape."""
    return Tensor(np.zeros(shape, dtype=_backend.active_dtype()),
                  requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """Create a one-filled tensor of the given shape."""
    return Tensor(np.ones(shape, dtype=_backend.active_dtype()),
                  requires_grad=requires_grad)
