"""Fixed sparse-matrix × dense-tensor product.

NGCF propagates embeddings with a fixed normalized adjacency matrix
``A`` (scipy CSR).  ``A`` carries no gradient; the backward rule for
``A @ X`` is simply ``Aᵀ @ grad``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor

#: Profile surface for the op profiler (see ``Tensor.PROFILE_METHODS``).
PROFILE_FUNCTIONS = {"sparse_matmul": "sparse_matmul"}


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Compute ``matrix @ x`` where ``matrix`` is a constant sparse matrix.

    Parameters
    ----------
    matrix:
        A scipy sparse matrix of shape ``[m, n]``; treated as a constant.
    x:
        A dense tensor of shape ``[n, k]``.
    """
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy sparse matrix")
    csr = matrix.tocsr()
    out = np.asarray(csr @ x.data)
    csr_t = csr.T.tocsr()

    def backward(g: np.ndarray):
        return (np.asarray(csr_t @ g),)

    return Tensor._make(out, (x,), backward, "sparse_matmul")
