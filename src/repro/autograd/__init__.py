"""Minimal reverse-mode automatic differentiation engine over numpy.

This package is the substrate that replaces PyTorch in this reproduction
(see DESIGN.md).  It provides:

- :class:`~repro.autograd.tensor.Tensor` — a numpy-backed array with a
  gradient tape and broadcasting-aware backward rules,
- :mod:`~repro.autograd.ops` — functional operations (softmax, dropout,
  concatenate, embedding lookup, ...),
- :mod:`~repro.autograd.nn` — ``Module`` and common layers,
- :mod:`~repro.autograd.optim` — ``SGD`` and ``Adam`` optimizers,
- :mod:`~repro.autograd.init` — parameter initializers,
- :mod:`~repro.autograd.sparse` — fixed-sparse-matrix × dense product used
  by the NGCF baseline.

The engine intentionally supports exactly the operations the paper's
models require, with float64 precision for numerically trustworthy tests.
"""

from repro.autograd.tensor import Tensor, no_grad, tensor, zeros, ones
from repro.autograd import ops
from repro.autograd import nn
from repro.autograd import optim
from repro.autograd import init
from repro.autograd.sparse import sparse_matmul

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "no_grad",
    "ops",
    "nn",
    "optim",
    "init",
    "sparse_matmul",
]
