"""Minimal reverse-mode automatic differentiation engine over numpy.

This package is the substrate that replaces PyTorch in this reproduction
(see DESIGN.md).  It provides:

- :class:`~repro.autograd.tensor.Tensor` — a numpy-backed array with a
  gradient tape and broadcasting-aware backward rules,
- :mod:`~repro.autograd.ops` — functional operations (softmax, dropout,
  concatenate, embedding lookup, ...),
- :mod:`~repro.autograd.nn` — ``Module`` and common layers,
- :mod:`~repro.autograd.optim` — ``SGD`` and ``Adam`` optimizers,
- :mod:`~repro.autograd.init` — parameter initializers,
- :mod:`~repro.autograd.sparse` — fixed-sparse-matrix × dense product used
  by the NGCF baseline.

The engine intentionally supports exactly the operations the paper's
models require.  Execution strategy is pluggable
(:mod:`~repro.autograd.backend`): the **reference** backend is the
original float64 engine (numerically trustworthy tests, golden
reproduction), the **fused** backend is the float32 training default
with elementwise-chain fusion and sparse embedding gradients.
"""

from repro.autograd import backend
from repro.autograd.backend import (active_backend, active_dtype,
                                    resolve_backend, use_backend)
from repro.autograd.tensor import Tensor, no_grad, tensor, zeros, ones
from repro.autograd import ops
from repro.autograd import nn
from repro.autograd import optim
from repro.autograd import init
from repro.autograd.sparse import sparse_matmul

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "no_grad",
    "ops",
    "nn",
    "optim",
    "init",
    "sparse_matmul",
    "backend",
    "active_backend",
    "active_dtype",
    "resolve_backend",
    "use_backend",
]
