"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

These complement the method-style operators on ``Tensor`` with operations
that combine several tensors (``concatenate``, ``stack``), need state
(``dropout``), or have dedicated efficient backward rules
(``embedding``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import backend as _backend
from repro.autograd.tensor import Tensor, _fuse_active, unbroadcast

#: Module-level profile surface (see ``Tensor.PROFILE_METHODS``): the
#: opt-in op profiler patches these by name while active.  Callers must
#: reach them as ``ops.<name>`` (every model does) for the patch to be
#: visible; thin aliases of Tensor methods (``exp``/``relu``/...) are
#: excluded — their timing is captured at the method layer.
PROFILE_FUNCTIONS = {
    "softmax": "softmax", "log_softmax": "log_softmax",
    "maximum": "maximum", "concatenate": "concatenate", "stack": "stack",
    "embedding": "embedding", "dropout": "dropout", "where": "where",
    "sum_tensors": "sum_tensors",
}


def exp(x: Tensor) -> Tensor:
    return x.exp()


def log(x: Tensor) -> Tensor:
    return x.log()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def identity(x: Tensor) -> Tensor:
    return x


def square(x: Tensor) -> Tensor:
    return x * x


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor._from_data(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor._from_data(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties send the full gradient to ``a``."""
    out = np.maximum(a.data, b.data)
    mask = (a.data >= b.data).astype(a.data.dtype)

    def backward(g: np.ndarray):
        return (
            unbroadcast(g * mask, a.data.shape),
            unbroadcast(g * (1.0 - mask), b.data.shape),
        )

    return Tensor._make(out, (a, b), backward, "maximum")


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    arrays = [t.data for t in tensors]
    out = np.concatenate(arrays, axis=axis)
    sizes = [arr.shape[axis] for arr in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        pieces = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(start), int(stop))
            pieces.append(g[tuple(index)])
        return tuple(pieces)

    return Tensor._make(out, tensors, backward, "concatenate")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out, tensors, backward, "stack")


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``table`` (shape ``[V, k]``) at integer ``indices``.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + (k,)``.  The backward pass scatter-adds into the
    table, which is the operation that makes sparse FM training feasible.
    Under a backend with ``sparse_embedding_grad`` the backward returns a
    :class:`~repro.autograd.backend.SparseRowGrad` covering only the
    looked-up rows instead of a dense full-table array.

    Indices are range-checked: numpy fancy indexing would silently wrap
    ``-1`` to the last vocabulary row, so a bad user/item id must raise
    instead of training the wrong embedding.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError("embedding indices must be integers")
    n_rows = table.data.shape[0]
    if indices.size:
        low = int(indices.min())
        high = int(indices.max())
        if low < 0 or high >= n_rows:
            raise IndexError(
                f"embedding index {low if low < 0 else high} out of range "
                f"for table with {n_rows} rows")
    out = table.data[indices]

    if _backend.active_backend().sparse_embedding_grad:
        table_shape = table.data.shape

        def backward(g: np.ndarray):
            return (_backend.scatter_rows(
                indices.reshape(-1), g.reshape(-1, table_shape[-1]),
                table_shape),)
    else:
        def backward(g: np.ndarray):
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1),
                      g.reshape(-1, table.data.shape[-1]))
            return (full,)

    return Tensor._make(out, (table,), backward, "embedding")


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero a fraction ``rate`` and rescale survivors."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
    mask = (rng.random(x.data.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)
    out = x.data * mask
    if _fuse_active() and x.requires_grad:
        return x._chain(out, mask, "dropout")

    def backward(g: np.ndarray):
        return (g * mask,)

    return Tensor._make(out, (x,), backward, "dropout")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition fixed)."""
    condition = np.asarray(condition, dtype=bool)
    out = np.where(condition, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            unbroadcast(g * condition, a.data.shape),
            unbroadcast(g * ~condition, b.data.shape),
        )

    return Tensor._make(out, (a, b), backward, "where")


def sum_tensors(tensors: Sequence[Tensor]) -> Tensor:
    """Sum a list of same-shaped tensors as a single n-ary node.

    One tape node for the whole sum: the old implementation folded the
    list through binary ``add``, building an O(n)-deep chain (one graph
    node + backward closure per operand) that NGCF's layer-sum and the
    FM pairwise terms paid per-node dispatch for.  Accumulation is
    in-place left-to-right, so the result is byte-identical to the
    binary chain; each operand's gradient is the upstream gradient.
    """
    tensors = list(tensors)
    if not tensors:
        raise ValueError("sum_tensors needs at least one tensor")
    if len(tensors) == 1:
        return tensors[0]
    shape = tensors[0].data.shape
    for t in tensors[1:]:
        if t.data.shape != shape:
            raise ValueError(
                f"sum_tensors needs same-shaped tensors; got {shape} "
                f"and {t.data.shape}")
    out = tensors[0].data.copy()
    for t in tensors[1:]:
        out += t.data

    def backward(g: np.ndarray):
        return (g,) * len(tensors)

    return Tensor._make(out, tuple(tensors), backward, "sum_tensors")
