"""Pluggable execution backends for the autograd engine.

The engine originally had exactly one execution strategy: eager float64
numpy with a dense gradient for every op.  That strategy survives here,
byte-for-byte, as the **reference** backend; next to it lives the
**fused** backend — the training default — which borrows the tinygrad
playbook for the pieces that dominate the MF/FM epoch profile
(``benchmarks/results/obs_overhead.json``):

- **float32 compute** — parameters, activations and gradients carry
  ``np.float32``, halving memory traffic on every kernel;
- **elementwise-chain fusion** — a run of elementwise ops
  (``sigmoid``/``relu``/``mul``/``add``/…) collapses into a single tape
  node whose backward is one multiply by the accumulated local
  derivative, instead of one ``Tensor._make`` node (and one backward
  closure dispatch, and one gradient dict round-trip) per op;
- **sparse embedding gradients** — ``ops.embedding``'s backward
  returns a :class:`SparseRowGrad` (unique-index bincount scatter:
  per-row gradients for exactly the looked-up rows) instead of
  materializing ``np.zeros_like(table)`` per step, and the optimizers
  apply it directly to the touched rows.

Backend state is a process-global, like :func:`~repro.autograd.tensor.no_grad`:
activate one around a training loop with :func:`use_backend`.  The
global is not per-thread — do not train under two different backends
concurrently in one process (serving threads never activate one).

Numerical contract
------------------
The reference backend reproduces the pre-seam engine bit-for-bit.  The
fused backend is *mathematically* equivalent (guarded by the
numerical-jacobian gradchecks in ``tests/autograd/test_gradcheck.py``
on both backends) but not bitwise: float32 rounding, fused backward
reassociation, and lazy (touched-rows-only) optimizer state make it a
different — much faster — arithmetic.  Goldens were regenerated once
for the fused training default; the reference path stays selectable
everywhere a backend can be named.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Union

import numpy as np


@dataclass(frozen=True)
class Backend:
    """One execution strategy for the autograd engine.

    Attributes
    ----------
    name:
        Registry key (``"reference"`` / ``"fused"``) or a descriptive
        label for ad-hoc instances (the gradcheck suite builds a
        float64 variant of the fused strategy to test the fusion and
        sparse-gradient machinery at full precision).
    dtype:
        The dtype new tensors are created with while the backend is
        active.  Float32/float64 only.
    fuse_elementwise:
        Collapse elementwise chains into single tape nodes.
    sparse_embedding_grad:
        ``ops.embedding`` returns :class:`SparseRowGrad` instead of a
        dense full-table gradient.
    """

    name: str
    dtype: np.dtype
    fuse_elementwise: bool = False
    sparse_embedding_grad: bool = False


#: The pre-seam engine: eager float64, dense gradients. Byte-identical
#: to the code this module factored out.
REFERENCE = Backend("reference", np.dtype(np.float64))

#: The optimized training default (see module docstring).
FUSED = Backend("fused", np.dtype(np.float32),
                fuse_elementwise=True, sparse_embedding_grad=True)

BACKENDS: dict[str, Backend] = {
    REFERENCE.name: REFERENCE,
    FUSED.name: FUSED,
}

#: What ``TrainConfig`` (and everything above it) defaults to.
DEFAULT_TRAINING_BACKEND = FUSED.name

_ACTIVE: Backend = REFERENCE


def resolve_backend(backend: Union[str, Backend, None]) -> Backend:
    """Resolve a name / instance / ``None`` (→ reference) to a Backend."""
    if backend is None:
        return REFERENCE
    if isinstance(backend, Backend):
        return backend
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; options: {sorted(BACKENDS)}"
        ) from None


def active_backend() -> Backend:
    """The backend new tensor operations execute under right now."""
    return _ACTIVE


def active_dtype() -> np.dtype:
    """Dtype of tensors created under the active backend."""
    return _ACTIVE.dtype


@contextlib.contextmanager
def use_backend(backend: Union[str, Backend]) -> Iterator[Backend]:
    """Activate ``backend`` for the duration of the ``with`` block.

    Process-global, not thread-local (mirrors ``no_grad``): intended to
    wrap a training loop, not to race across threads.
    """
    global _ACTIVE
    resolved = resolve_backend(backend)
    previous = _ACTIVE
    _ACTIVE = resolved
    try:
        yield resolved
    finally:
        _ACTIVE = previous


def infer_backend(parameters) -> Backend:
    """The backend a trained model's dtype implies (``"auto"`` policy).

    Float32 parameters were produced by fused training, so incremental
    updates keep the fused execution strategy; anything else stays on
    the reference path, preserving the pre-seam fold-in numerics.
    """
    for param in parameters:
        if param.data.dtype == np.float32:
            return FUSED
    return REFERENCE


# ----------------------------------------------------------------------
# Sparse per-row gradients (embedding backward under the fused backend)
# ----------------------------------------------------------------------
class SparseRowGrad:
    """Gradient of an ``[V, k]`` table touched only at ``rows``.

    ``rows`` is sorted and unique; ``values[i]`` is the accumulated
    gradient of ``table[rows[i]]``.  Everything that consumes parameter
    gradients — tape accumulation, the optimizers, fold-in's
    ``grad[rows]`` gather — understands this class, so a minibatch's
    embedding backward costs O(batch · k) instead of O(V · k).
    """

    # Keep numpy from treating us as an array in `ndarray + self`:
    # addition must dispatch to __radd__ below.
    __array_ufunc__ = None

    __slots__ = ("shape", "rows", "values")

    def __init__(self, shape: tuple, rows: np.ndarray, values: np.ndarray):
        self.shape = tuple(shape)
        self.rows = rows
        self.values = values

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def nbytes(self) -> int:
        return self.rows.nbytes + self.values.nbytes

    def __repr__(self) -> str:
        return (f"SparseRowGrad(shape={self.shape}, "
                f"rows={self.rows.size}, dtype={self.dtype})")

    # -- conversions ---------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the full-table gradient (tests / fallbacks)."""
        full = np.zeros(self.shape, dtype=self.values.dtype)
        full[self.rows] = self.values
        return full

    def copy(self) -> "SparseRowGrad":
        return SparseRowGrad(self.shape, self.rows.copy(),
                             self.values.copy())

    # -- arithmetic the gradient pipeline needs ------------------------
    def __add__(self, other):
        if isinstance(other, SparseRowGrad):
            if other.shape != self.shape:
                raise ValueError(
                    f"sparse grad shape mismatch: {self.shape} vs "
                    f"{other.shape}")
            rows = np.concatenate([self.rows, other.rows])
            values = np.concatenate([self.values, other.values])
            uniq, inverse = np.unique(rows, return_inverse=True)
            merged = np.zeros((uniq.size,) + self.shape[1:],
                              dtype=values.dtype)
            np.add.at(merged, inverse, values)
            return SparseRowGrad(self.shape, uniq, merged)
        if isinstance(other, np.ndarray):
            if other.shape != self.shape:
                raise ValueError(
                    f"cannot add sparse grad of shape {self.shape} to "
                    f"dense array of shape {other.shape}")
            out = other.copy()
            out[self.rows] += self.values
            return out
        return NotImplemented

    __radd__ = __add__

    def __getitem__(self, index) -> np.ndarray:
        """Gather rows as a dense ``[len(index), k]`` block.

        Supports the fold-in pattern ``param.grad[rows]``: absent rows
        come back zero, exactly like indexing the dense gradient.
        """
        index = np.asarray(index)
        if index.ndim != 1 or not np.issubdtype(index.dtype, np.integer):
            raise TypeError(
                "SparseRowGrad only supports gathering a 1-d integer "
                "row index (the fold-in access pattern)")
        position = np.searchsorted(self.rows, index)
        position = np.minimum(position, max(self.rows.size - 1, 0))
        present = (self.rows[position] == index) if self.rows.size else \
            np.zeros(index.shape, dtype=bool)
        out = np.zeros((index.size,) + self.shape[1:],
                       dtype=self.values.dtype)
        out[present] = self.values[position[present]]
        return out

    def add_scaled_rows(self, dense: np.ndarray,
                        scale: float) -> "SparseRowGrad":
        """``self + scale * dense`` restricted to the touched rows.

        This is lazy L2 regularization: the optimizer decays only the
        rows this step updates.  (The reference backend's dense
        gradients decay every row every step; the fused backend trades
        that for O(touched) work, the standard sparse-training
        approximation.)
        """
        return SparseRowGrad(
            self.shape, self.rows,
            self.values + scale * dense[self.rows])


def scatter_rows(indices: np.ndarray, grad: np.ndarray,
                 table_shape: tuple) -> SparseRowGrad:
    """Unique-index scatter: sum ``grad`` rows that share an index.

    ``indices`` is the flat lookup index array (duplicates allowed);
    ``grad`` is ``[indices.size, k]``.  A single ``np.bincount`` over
    the flattened ``(inverse row, column)`` keys beats ``np.add.at`` on
    a freshly allocated full-size table by orders of magnitude for
    realistic batch sizes — it touches O(batch · k) memory instead of
    O(V · k) — and beats a per-column bincount loop by ~k fewer numpy
    dispatches.
    """
    uniq, inverse = np.unique(indices, return_inverse=True)
    k = grad.shape[-1]
    keys = (inverse[:, None] * k + np.arange(k)).ravel()
    values = np.bincount(keys, weights=grad.ravel(),
                         minlength=uniq.size * k)
    return SparseRowGrad(table_shape, uniq,
                         values.reshape(uniq.size, k).astype(
                             grad.dtype, copy=False))
