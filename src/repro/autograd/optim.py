"""Optimizers: SGD (with momentum) and Adam.

The paper optimizes with Adam (Section 4.4); SGD is provided because the
LibFM baseline was trained with SGD and for the learning-strategy section
(Eq. 14).

Both optimizers understand sparse embedding gradients
(:class:`~repro.autograd.backend.SparseRowGrad`, produced by the fused
backend): state buffers and weights are updated only on the touched
rows — "lazy" momentum / Adam moments, the standard sparse-training
formulation.  Lazy Adam deliberately diverges from dense Adam (untouched
rows keep stale moments instead of decaying); reference-backend training
produces dense gradients and keeps the paper-exact dense update.

State buffers are captured at construction as ``np.zeros_like(p.data)``;
``step()`` asserts they still agree with ``param.data``'s shape and
dtype so a later swap of the parameter array (a dtype migration, a
re-initialization) fails loudly instead of silently training with stale
or mis-typed state.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.autograd.backend import SparseRowGrad
from repro.autograd.tensor import Tensor

Grad = Union[np.ndarray, SparseRowGrad]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, weight_decay: float = 0.0):
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _grad(self, param: Tensor) -> Grad | None:
        grad = param.grad
        if grad is None:
            return None
        if self.weight_decay:
            if isinstance(grad, SparseRowGrad):
                # Lazy L2: decay only the rows this step touches.
                grad = grad.add_scaled_rows(param.data, self.weight_decay)
            else:
                grad = grad + self.weight_decay * param.data
        return grad

    def _check_state(self, param: Tensor, buffer: np.ndarray,
                     name: str) -> None:
        """Fail loudly if ``param.data`` was swapped under the optimizer."""
        if (buffer.shape != param.data.shape
                or buffer.dtype != param.data.dtype):
            raise RuntimeError(
                f"{type(self).__name__} {name} state buffer is "
                f"shape={buffer.shape} dtype={buffer.dtype} but param.data "
                f"is now shape={param.data.shape} dtype={param.data.dtype}; "
                f"param.data was swapped after the optimizer captured its "
                f"state — rebuild the optimizer (convert the model's dtype "
                f"before constructing it)")

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            self._check_state(param, velocity, "velocity")
            grad = self._grad(param)
            if grad is None:
                continue
            if isinstance(grad, SparseRowGrad):
                rows, update = grad.rows, grad.values
                if self.momentum:
                    velocity[rows] = self.momentum * velocity[rows] + update
                    update = velocity[rows]
                param.data[rows] -= self.lr * update
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        correction1 = 1.0 - self.beta1 ** t
        correction2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            self._check_state(param, m, "m")
            self._check_state(param, v, "v")
            grad = self._grad(param)
            if grad is None:
                continue
            if isinstance(grad, SparseRowGrad):
                rows, vals = grad.rows, grad.values
                m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * vals
                v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * vals * vals
                m[rows] = m_rows
                v[rows] = v_rows
                m_hat = m_rows / correction1
                v_hat = v_rows / correction2
                param.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
