"""Optimizers: SGD (with momentum) and Adam.

The paper optimizes with Adam (Section 4.4); SGD is provided because the
LibFM baseline was trained with SGD and for the learning-strategy section
(Eq. 14).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, weight_decay: float = 0.0):
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _grad(self, param: Tensor) -> np.ndarray | None:
        grad = param.grad
        if grad is None:
            return None
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = self._grad(param)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        correction1 = 1.0 - self.beta1 ** t
        correction2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = self._grad(param)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
