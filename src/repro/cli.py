"""Command-line interface: regenerate paper tables or serve a model.

Usage::

    python -m repro table2
    python -m repro table3 --datasets movielens amazon-auto
    python -m repro table4 --models GML-FMdnn BPR-MF --scale quick
    python -m repro table3 --workers 0   # parallel sweep, one process/core
    python -m repro datasets          # list dataset keys
    python -m repro models            # list model names

(Tables 5-6 and the figures have no subcommand; regenerate them with
the ``slow`` benchmarks, e.g. ``pytest -m slow benchmarks/``.)

    # Online serving (repro.serving): JSON endpoints /recommend,
    # /update, /healthz and /stats over stdlib http.server.
    python -m repro serve --artifact bundle.npz --port 8765
    python -m repro serve --dataset movielens --model GML-FMmd --epochs 5
    python -m repro serve --online   # /update folds events into the model
    python -m repro serve --shards 4 --replicas 2  # sharded worker fleet
    python -m repro serve --ann      # IVF candidate retrieval (sub-linear)
    python -m repro serve --trace    # per-request tracing (GET /trace)
    python -m repro serve --frontend async  # event loop + micro-batching
    python -m repro serve --artifact b --mmap  # zero-copy read-only model
    python -m repro serve --selfcheck # boot + one query + exit 0 (CI gate)

    # Observability consoles (repro.obs): watch a live server, or
    # aggregate the benchmark result records into one trajectory table.
    python -m repro top --url http://127.0.0.1:8765
    python -m repro bench report

    # Scenario engine (repro.scenarios): adversarial workloads with
    # gated capacity records (exit 0 iff the gate passed).
    python -m repro scenario list
    python -m repro scenario run flash-crowd
    python -m repro scenario run million-user --json

    # Streaming workload: seeded prequential replay (evaluate-then-
    # train over the event stream with incremental fold-in updates).
    python -m repro replay --dataset movielens --model MF
    python -m repro replay --model BPR-MF --warmup 0.7 --refresh-every 2048
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.data.synthetic import DATASET_BUILDERS, make_dataset
from repro.experiments.configs import get_scale
from repro.experiments.registry import (RATING_MODELS, SERVING_ONLY_MODELS,
                                        TOPN_MODELS)
from repro.experiments.runner import run_rating_table, run_topn_table
from repro.experiments.tables import format_table

DEFAULT_DATASETS = [
    "movielens",
    "amazon-office",
    "amazon-clothing",
    "amazon-auto",
    "mercari-ticket",
    "mercari-books",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the GML-FM paper's evaluation tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset keys")
    sub.add_parser("models", help="list model names per task")

    for name, help_text in (
        ("table2", "dataset statistics"),
        ("table3", "rating prediction RMSE"),
        ("table4", "top-n HR@10 / NDCG@10"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--datasets", nargs="+", default=DEFAULT_DATASETS,
                         choices=sorted(DATASET_BUILDERS))
        cmd.add_argument("--scale", default=None, choices=["quick", "full"])
        if name != "table2":
            default_models = RATING_MODELS if name == "table3" else TOPN_MODELS
            cmd.add_argument("--models", nargs="+", default=default_models)
            cmd.add_argument("--seed", type=int, default=0)
            cmd.add_argument(
                "--workers", type=int, default=None,
                help="training processes for the model x dataset sweep "
                     "(0 = one per CPU core; default $REPRO_WORKERS or 1). "
                     "Results are byte-identical for any value.")
            cmd.add_argument(
                "--backend", default=None, choices=["reference", "fused"],
                help="autograd training backend: 'fused' (default) is the "
                     "float32 engine with fused elementwise chains and "
                     "sparse embedding gradients; 'reference' is the "
                     "original float64 engine")

    serve = sub.add_parser(
        "serve", help="serve top-k recommendations over HTTP (repro.serving)")
    source = serve.add_mutually_exclusive_group()
    source.add_argument("--artifact", default=None,
                        help="serving bundle written by save_artifact")
    source.add_argument("--dataset", default="movielens",
                        choices=sorted(DATASET_BUILDERS),
                        help="synthetic dataset to build a model on")
    serve.add_argument("--model", default="GML-FMmd",
                       choices=sorted(set(RATING_MODELS) | set(TOPN_MODELS)
                                      | set(SERVING_ONLY_MODELS)),
                       help="registry model name (ignored with --artifact)")
    serve.add_argument("--scale", default=None, choices=["quick", "full"])
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--k", type=int, default=16, help="embedding size")
    serve.add_argument("--epochs", type=int, default=0,
                       help="quick-train this many epochs before serving")
    serve.add_argument("--backend", default=None,
                       choices=["reference", "fused"],
                       help="autograd backend for --epochs quick-training "
                            "(default: the TrainConfig default, 'fused')")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="0 binds an ephemeral port (printed at startup)")
    serve.add_argument("--top-k", type=int, default=10, dest="top_k")
    serve.add_argument("--cache-size", type=int, default=1024, dest="cache_size")
    serve.add_argument("--shards", type=int, default=1,
                       help="user-sharded worker processes; 1 (default) is "
                            "the single-process path, N>1 forks a "
                            "ServingCluster with deterministic user routing")
    serve.add_argument("--replicas", type=int, default=1,
                       help="replicas per shard (failover; only with "
                            "--shards > 1)")
    serve.add_argument("--ann", action="store_true",
                       help="IVF candidate retrieval: score only the probed "
                            "item clusters instead of the full catalogue "
                            "(exact re-rank; models without a bilinear grid "
                            "decomposition keep the exact path)")
    serve.add_argument("--ann-clusters", type=int, default=None,
                       dest="ann_clusters",
                       help="IVF cluster count (default ~sqrt(n_items))")
    serve.add_argument("--ann-probes", type=int, default=None,
                       dest="ann_probes",
                       help="clusters scanned per query (default: half — "
                            "recall-safe; lower for throughput)")
    serve.add_argument("--frontend", default="auto",
                       choices=["auto", "threaded", "async"],
                       help="HTTP transport: 'threaded' is the stdlib "
                            "thread-per-request server, 'async' the "
                            "selector event loop that coalesces concurrent "
                            "/recommend calls into micro-batches "
                            "(byte-identical responses); 'auto' (default) "
                            "picks async for --shards > 1, threaded "
                            "otherwise")
    serve.add_argument("--mmap", action="store_true",
                       help="memory-map the --artifact bundle read-only "
                            "(dir-layout bundles only): replicas share one "
                            "page cache instead of copying the model; "
                            "incompatible with --online fold-in unless the "
                            "trainer copies on first write")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.add_argument("--online", action="store_true",
                       help="fold /update events into the model incrementally "
                            "(user-side fold-in; exact per-user cache "
                            "invalidation)")
    serve.add_argument("--trace", action="store_true",
                       help="per-request tracing: mint a trace id per "
                            "/recommend and /update, record spans across "
                            "shard replicas, expose them on GET /trace "
                            "(observational only — responses are "
                            "byte-identical with tracing on or off)")
    serve.add_argument("--selfcheck", action="store_true",
                       help="boot on a synthetic dataset, issue one query, exit")

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    from repro.scenarios.cli import add_scenario_parser

    add_scenario_parser(sub)

    top = sub.add_parser(
        "top", help="live terminal view of a running server's /metrics")
    top.add_argument("--url", default="http://127.0.0.1:8765",
                     help="base URL of a running `repro serve` instance")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N refreshes (0 = until interrupted)")
    top.add_argument("--once", action="store_true",
                     help="print one sample and exit (no screen clearing)")

    bench = sub.add_parser(
        "bench", help="benchmark tooling (aggregate recorded results)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    report = bench_sub.add_parser(
        "report",
        help="aggregate benchmarks/results/*.json into a trajectory table")
    report.add_argument("--results-dir", default="benchmarks/results",
                        dest="results_dir",
                        help="directory of benchmark JSON records")

    replay = sub.add_parser(
        "replay",
        help="prequential replay: evaluate-then-train over the event stream")
    replay.add_argument("--dataset", default="movielens",
                        choices=sorted(DATASET_BUILDERS))
    replay.add_argument("--model", default="MF",
                        choices=sorted(set(RATING_MODELS) | set(TOPN_MODELS)))
    replay.add_argument("--scale", default=None, choices=["quick", "full"])
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--warmup", type=float, default=0.8,
                        help="oldest fraction of events trained offline "
                             "before streaming (default 0.8)")
    replay.add_argument("--epochs", type=int, default=None,
                        help="override the scale's warmup epoch count")
    replay.add_argument("--batch", type=int, default=32,
                        help="events per evaluate-then-train step")
    replay.add_argument("--candidates", type=int, default=20,
                        help="sampled negatives each positive is ranked "
                             "against")
    replay.add_argument("--top-k", type=int, default=10, dest="top_k")
    replay.add_argument("--window", type=int, default=256,
                        help="events per rolling-metrics window")
    replay.add_argument("--refresh-every", type=int, default=0,
                        dest="refresh_every",
                        help="full-retrain on the accumulated log every N "
                             "streamed events (0 disables)")
    replay.add_argument("--backend", default=None,
                        choices=["reference", "fused"],
                        help="autograd backend for warmup/fold-in/refresh "
                             "training (default: fused offline, dtype-"
                             "inferred fold-in)")
    return parser


def _print_table2(datasets: Sequence[str], scale_name: Optional[str]) -> None:
    scale = get_scale(scale_name)
    header = (f"{'dataset':18s} {'#users':>8s} {'#items':>8s} "
              f"{'#attr-dim':>10s} {'#instances':>11s} {'sparsity':>9s}")
    print(header)
    print("-" * len(header))
    for key in datasets:
        stats = make_dataset(key, seed=0, scale=scale.dataset_scale).stats()
        print(f"{key:18s} {stats['users']:8d} {stats['items']:8d} "
              f"{stats['attribute_dim']:10d} {stats['instances']:11d} "
              f"{stats['sparsity']:8.2%}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "datasets":
        for key in sorted(DATASET_BUILDERS):
            print(key)
        return 0
    if args.command == "models":
        print("rating (Table 3):", ", ".join(RATING_MODELS))
        print("top-n  (Table 4):", ", ".join(TOPN_MODELS))
        return 0
    if args.command == "table2":
        _print_table2(args.datasets, args.scale)
        return 0
    if args.command == "serve":
        from repro.serving.server import serve_main

        return serve_main(args)
    if args.command == "lint":
        from repro.lint.cli import lint_main

        return lint_main(args)
    if args.command == "scenario":
        from repro.scenarios.cli import scenario_main

        return scenario_main(args)
    if args.command == "top":
        from repro.obs.console import top_main

        return top_main(args)
    if args.command == "bench":
        from repro.obs.console import bench_report_main

        return bench_report_main(args)
    if args.command == "replay":
        from repro.experiments.streaming import format_replay, run_replay

        result = run_replay(
            args.model,
            args.dataset,
            scale=get_scale(args.scale),
            seed=args.seed,
            warmup_frac=args.warmup,
            batch_size=args.batch,
            n_candidates=args.candidates,
            top_k=args.top_k,
            window=args.window,
            epochs=args.epochs,
            refresh_every=args.refresh_every,
            backend=args.backend,
        )
        print(format_replay(result))
        return 0

    scale = get_scale(args.scale)
    if args.command == "table3":
        unknown = set(args.models) - set(RATING_MODELS)
        if unknown:
            raise SystemExit(f"unknown rating models: {sorted(unknown)}")
        results = run_rating_table(args.datasets, args.models, scale=scale,
                                   seed=args.seed, workers=args.workers,
                                   backend=args.backend)
        print(format_table(results, args.datasets,
                           title="Rating prediction, test RMSE (* = best)",
                           lower_is_better=True))
        return 0
    if args.command == "table4":
        unknown = set(args.models) - set(TOPN_MODELS)
        if unknown:
            raise SystemExit(f"unknown top-n models: {sorted(unknown)}")
        results = run_topn_table(args.datasets, args.models, scale=scale,
                                 seed=args.seed, workers=args.workers,
                                 backend=args.backend)
        print(format_table(results, args.datasets,
                           title="Top-n recommendation, HR@10 / NDCG@10 (* = best)"))
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
