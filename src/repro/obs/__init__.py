"""Observability plane: metrics, tracing, structured logs, profiling.

Module map::

    metrics.py   thread-safe registry (counters / gauges / log-bucketed
                 histograms), Prometheus text rendering, snapshot merge
    tracing.py   per-request trace ids + spans, bounded in-memory ring
    logs.py      JSON-lines structured event logging
    profiler.py  opt-in op-level timing/allocation hooks on the
                 autograd engine (the fused-backend baseline producer)
    console.py   `repro top` live view and `repro bench report`

Policy: metrics are **on by default** everywhere (gated ≤3% serving
overhead in ``benchmarks/test_obs_overhead.py``); tracing and profiling
are **opt-in** (``repro serve --trace``, ``with profile():``) and
observational only — responses are byte-identical with them on or off.
"""

from repro.obs.logs import JsonLogger, default_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    default_latency_buckets,
    merge_snapshots,
    render_snapshot,
    snapshot_quantile,
)
from repro.obs.profiler import OpProfiler, OpStats, profile
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_latency_buckets",
    "merge_snapshots",
    "render_snapshot",
    "snapshot_quantile",
    "Tracer",
    "Trace",
    "Span",
    "JsonLogger",
    "default_logger",
    "OpProfiler",
    "OpStats",
    "profile",
]
