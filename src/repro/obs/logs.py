"""Structured JSON logging: one event, one JSON line.

Stdlib ``logging`` is deliberately not used: the cluster logs from
forked worker parents, HTTP handler threads and a heartbeat thread at
once, and the global logging tree's handler state is exactly the kind
of cross-test, cross-process shared mutable state this repo avoids.  A
:class:`JsonLogger` is a plain object — construct one, inject it,
capture its stream in tests.

Events are key-value records with three reserved fields: ``ts`` (unix
seconds), ``level`` and ``event``.  Everything else is caller context
(``shard``, ``replica``, ``trace_id``, ...).  Lines are written atomically
(single ``write`` call under a lock) so interleaved threads never split
a JSON object.

The module-level :func:`default_logger` writes WARNING-and-up to
stderr: replica failovers, heartbeat misses and dead shards are visible
by default; routine lifecycle chatter (spawns, closes) only shows when
a caller opts into an ``info``-level logger (``repro serve --verbose``
does).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Optional, TextIO

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class JsonLogger:
    """Thread-safe JSON-lines event logger with bound context fields."""

    def __init__(self, stream: Optional[TextIO] = None,
                 min_level: str = "info",
                 bound: Optional[dict] = None):
        if min_level not in _LEVELS:
            raise ValueError(
                f"unknown level {min_level!r}; options: {sorted(_LEVELS)}")
        self._stream = stream
        self.min_level = min_level
        self._bound = dict(bound or {})
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so pytest's stderr capture (which swaps
        # sys.stderr per test) sees the lines.
        return self._stream if self._stream is not None else sys.stderr

    def bind(self, **fields) -> "JsonLogger":
        """A child logger whose every event carries ``fields``."""
        child = JsonLogger(self._stream, self.min_level,
                           {**self._bound, **fields})
        child._lock = self._lock  # shared: children interleave safely
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if _LEVELS[level] < _LEVELS[self.min_level]:
            return
        record = {"ts": round(time.time(), 6), "level": level,
                  "event": event, **self._bound, **fields}
        line = json.dumps(record, default=str, sort_keys=False) + "\n"
        with self._lock:
            try:
                self.stream.write(line)
            except ValueError:
                # Interpreter teardown / closed capture stream: logging
                # must never take the serving path down with it.
                pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_DEFAULT: Optional[JsonLogger] = None
_DEFAULT_LOCK = threading.Lock()


def default_logger() -> JsonLogger:
    """Shared stderr logger for warnings and errors (lazily built)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = JsonLogger(stream=None, min_level="warning")
        return _DEFAULT
