"""Opt-in op-level profiling of the ``repro.autograd`` engine.

The fused-backend roadmap item starts with "measure the hot path": this
profiler answers *which autograd op dominates an epoch* without adding
a single branch to the untraced engine.  Entering :func:`profile`
monkey-patches the declared profile surface —
``Tensor.PROFILE_METHODS`` (arithmetic/reduction/elementwise methods),
``repro.autograd.ops.PROFILE_FUNCTIONS`` and
``repro.autograd.sparse.PROFILE_FUNCTIONS`` (module-level ops), plus
``Tensor._make`` (every non-leaf tensor's birthplace) — and exiting
restores the originals, so the cost when not profiling is exactly zero.

Per op the profiler accumulates:

- ``calls`` / ``forward_s`` — invocation count and inclusive wall time
  of the patched forward entry points (inclusive: ``mean`` includes the
  ``sum`` it calls, like ``cumtime`` in cProfile);
- ``backward_s`` — wall time inside the op's backward closure (wrapped
  at ``_make`` time, so it times exactly the vector-Jacobian product);
- ``tensors`` / ``bytes`` — outputs allocated and their ndarray sizes.

Scope and caveats: one profiler may be active per process (nesting
raises), patching is process-global (don't profile while concurrently
serving), and timings are wall-clock — profile a quiet machine.
Training is the intended workload::

    with profile() as prof:
        trainer.fit_pointwise(users, items, labels)
    for row in prof.summary(top=10):
        print(row)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

_ACTIVE_LOCK = threading.Lock()
_ACTIVE: Optional["OpProfiler"] = None


@dataclass
class OpStats:
    """Cumulative cost of one op name."""

    op: str
    calls: int = 0
    forward_s: float = 0.0
    backward_s: float = 0.0
    backward_calls: int = 0
    tensors: int = 0
    bytes: int = 0

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "calls": self.calls,
            "forward_s": self.forward_s,
            "backward_s": self.backward_s,
            "backward_calls": self.backward_calls,
            "total_s": self.total_s,
            "tensors": self.tensors,
            "bytes": self.bytes,
        }


@dataclass
class _Patch:
    owner: object
    attr: str
    original: object = field(repr=False)


class OpProfiler:
    """Collects per-op stats while active; see module docstring."""

    def __init__(self):
        self.stats: dict[str, OpStats] = {}
        self._patches: list[_Patch] = []
        self.wall_s = 0.0
        self._entered_at = 0.0

    def _stat(self, op: str) -> OpStats:
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStats(op)
        return stat

    # ------------------------------------------------------------------
    def _wrap_forward(self, fn, op: str):
        stat = self._stat(op)

        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                stat.forward_s += time.perf_counter() - t0
                stat.calls += 1

        wrapper.__name__ = getattr(fn, "__name__", op)
        wrapper.__doc__ = getattr(fn, "__doc__", None)
        return wrapper

    def _wrap_make(self, original_make):
        profiler = self

        def make(data, parents, backward, op):
            stat = profiler._stat(op)
            stat.tensors += 1
            stat.bytes += getattr(data, "nbytes", 0)

            def timed_backward(g):
                t0 = time.perf_counter()
                try:
                    return backward(g)
                finally:
                    stat.backward_s += time.perf_counter() - t0
                    stat.backward_calls += 1

            return original_make(data, parents, timed_backward, op)

        return make

    def _patch_attr(self, owner, attr: str, replacement) -> None:
        self._patches.append(_Patch(owner, attr, getattr(owner, attr)))
        setattr(owner, attr, replacement)

    # ------------------------------------------------------------------
    def __enter__(self) -> "OpProfiler":
        global _ACTIVE
        from repro.autograd import ops, sparse
        from repro.autograd.tensor import Tensor

        with _ACTIVE_LOCK:
            if _ACTIVE is not None:
                raise RuntimeError("an OpProfiler is already active in "
                                   "this process")
            _ACTIVE = self
        self._entered_at = time.perf_counter()
        try:
            for method, op in Tensor.PROFILE_METHODS.items():
                self._patch_attr(Tensor, method,
                                 self._wrap_forward(getattr(Tensor, method),
                                                    op))
            for module in (ops, sparse):
                for fn_name, op in module.PROFILE_FUNCTIONS.items():
                    self._patch_attr(module, fn_name,
                                     self._wrap_forward(
                                         getattr(module, fn_name), op))
            self._patch_attr(Tensor, "_make",
                             staticmethod(self._wrap_make(Tensor._make)))
        except BaseException:
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self.wall_s += time.perf_counter() - self._entered_at
        self._restore()

    def _restore(self) -> None:
        global _ACTIVE
        while self._patches:
            patch = self._patches.pop()
            setattr(patch.owner, patch.attr, patch.original)
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None

    # ------------------------------------------------------------------
    def summary(self, top: Optional[int] = None) -> list[dict]:
        """Per-op rows sorted by cumulative (forward+backward) time."""
        rows = sorted(self.stats.values(),
                      key=lambda stat: stat.total_s, reverse=True)
        if top is not None:
            rows = rows[:top]
        return [stat.to_dict() for stat in rows]

    def format(self, top: int = 12) -> str:
        """Human-readable table of :meth:`summary`."""
        header = (f"{'op':16s} {'calls':>8s} {'fwd_ms':>10s} "
                  f"{'bwd_ms':>10s} {'total_ms':>10s} {'alloc_mb':>9s}")
        lines = [header, "-" * len(header)]
        for row in self.summary(top):
            lines.append(
                f"{row['op']:16s} {row['calls']:8d} "
                f"{row['forward_s'] * 1e3:10.2f} "
                f"{row['backward_s'] * 1e3:10.2f} "
                f"{row['total_s'] * 1e3:10.2f} "
                f"{row['bytes'] / 1e6:9.2f}")
        if self.wall_s:
            accounted = sum(stat.total_s for stat in self.stats.values())
            lines.append(f"wall {self.wall_s * 1e3:.1f} ms, op time "
                         f"{accounted * 1e3:.1f} ms (inclusive; nested ops "
                         f"double-count)")
        return "\n".join(lines)


def profile() -> OpProfiler:
    """``with profile() as prof:`` — the one-liner entry point."""
    return OpProfiler()
