"""Process-local, thread-safe metrics: counters, gauges, histograms.

The registry is the repo's single source of operational truth: the
serving plane, the trainers and the CLI surfaces all read and write the
same handles, so ``/stats`` (legacy JSON) and ``/metrics`` (Prometheus
text) can never disagree — both render the same underlying values.

Design goals, in priority order:

- **Exactness under concurrency.**  Every mutation takes the metric's
  own lock; an N-thread hammer on a counter observes the exact total
  and histogram percentiles are monotone by construction (they are read
  off a cumulative bucket walk).
- **Near-zero cost.**  A handle is resolved once (``registry.counter``
  get-or-creates) and each ``inc``/``observe`` is one lock plus one or
  two additions — cheap enough for per-request use on the serving hot
  path (gated ≤3% overhead in ``benchmarks/test_obs_overhead.py``).
- **Mergeable snapshots.**  ``snapshot()`` returns plain-JSON entries;
  :func:`merge_snapshots` sums them across cluster shards and
  :func:`render_snapshot` emits Prometheus exposition text from any
  snapshot, so a :class:`~repro.serving.cluster.ServingCluster` can
  aggregate replicas it cannot share memory with.

Disabling is structural, not conditional: :data:`NULL_REGISTRY` hands
out no-op handles with the same API, so instrumented code carries no
``if metrics_enabled`` branches.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Callable, Iterable, Optional, Sequence

_TYPES = ("counter", "gauge", "histogram")


def default_latency_buckets() -> tuple[float, ...]:
    """Log-spaced latency bucket upper bounds, 10 µs … ~28 s.

    Four buckets per decade (factor ``10^0.25`` ≈ 1.78): fine enough
    that a p99 read off a bucket edge is within ~80% relative of the
    true value, coarse enough that a histogram is 26 numbers.
    """
    return tuple(10.0 ** (exp / 4.0) for exp in range(-20, 6))


class Counter:
    """Monotone non-negative counter."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "",
                 labels: Optional[dict] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"name": self.name, "type": "counter", "help": self.help,
                "labels": self.labels, "value": self.value}


class Gauge:
    """Settable value; optionally backed by a live ``collect`` callback.

    Callback gauges read their value at snapshot time — the pattern the
    service uses for cache size, so ``/metrics`` shows the live value
    without anyone remembering to push updates.
    """

    __slots__ = ("name", "help", "labels", "_lock", "_value", "_collect")

    def __init__(self, name: str, help: str = "",
                 labels: Optional[dict] = None,
                 collect: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0
        self._collect = collect

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._collect is not None:
            return float(self._collect())
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"name": self.name, "type": "gauge", "help": self.help,
                "labels": self.labels, "value": self.value}


class _Timer:
    """Context manager feeding a histogram one wall-clock observation."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Log-bucketed histogram with cumulative-walk percentile reads.

    ``boundaries`` are ascending bucket *upper* bounds; observations
    above the last boundary land in an implicit overflow bucket whose
    reported quantile edge is the largest observation seen.  Quantiles
    are linearly interpolated inside the winning bucket, which keeps
    them monotone in ``q`` (the cumulative counts are monotone and the
    interpolation is monotone within a bucket).
    """

    __slots__ = ("name", "help", "labels", "boundaries", "_lock",
                 "_counts", "_sum", "_count", "_max")

    def __init__(self, name: str, help: str = "",
                 boundaries: Optional[Sequence[float]] = None,
                 labels: Optional[dict] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        bounds = tuple(boundaries if boundaries is not None
                       else default_latency_buckets())
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("boundaries must be non-empty and ascending")
        self.boundaries = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0
        self._max = -math.inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    def time(self) -> _Timer:
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 ≤ q ≤ 1); ``nan`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            return _bucket_quantile(self.boundaries, self._counts,
                                    self._count, self._max, q)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name, "type": "histogram", "help": self.help,
                "labels": self.labels,
                "boundaries": list(self.boundaries),
                "counts": list(self._counts),
                "sum": self._sum, "count": self._count,
                "max": self._max,
            }


def _bucket_quantile(boundaries: Sequence[float], counts: Sequence[int],
                     total: int, maximum: float, q: float) -> float:
    if total == 0:
        return math.nan
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        cumulative += count
        if cumulative >= target:
            if index >= len(boundaries):       # overflow bucket
                return maximum
            upper = boundaries[index]
            lower = boundaries[index - 1] if index > 0 else 0.0
            fraction = 1.0 - (cumulative - target) / count
            return lower + (upper - lower) * fraction
    return maximum  # pragma: no cover - cumulative == total covers q=1


def snapshot_quantile(entry: dict, q: float) -> float:
    """Quantile of one histogram *snapshot* entry (e.g. over HTTP).

    The same cumulative walk :meth:`Histogram.quantile` performs,
    usable by remote readers (``repro top``) and by cluster-merged
    snapshots that no live ``Histogram`` object backs.
    """
    if entry.get("type") != "histogram":
        raise ValueError(f"{entry.get('name')!r} is not a histogram")
    return _bucket_quantile(entry["boundaries"], entry["counts"],
                            entry["count"], entry.get("max", math.nan), q)


class MetricsRegistry:
    """Get-or-create home for the process's metrics.

    Handles are identified by ``(name, sorted labels)``; asking twice
    returns the same object, asking with a conflicting type raises.
    Iteration order is registration order, which makes the exposition
    output stable (the golden test pins it).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Optional[dict], **kwargs):
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, labels=labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[dict] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[dict] = None,
              collect: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels)
        if collect is not None:
            gauge._collect = collect
        return gauge

    def histogram(self, name: str, help: str = "",
                  boundaries: Optional[Sequence[float]] = None,
                  labels: Optional[dict] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   boundaries=boundaries)

    def snapshot(self) -> list[dict]:
        """Plain-JSON entries for every registered metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.snapshot() for metric in metrics]

    def render(self) -> str:
        """Prometheus text exposition of the whole registry."""
        return render_snapshot(self.snapshot())


# ----------------------------------------------------------------------
# No-op variants: structural disabling without call-site branches
# ----------------------------------------------------------------------
class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None


class NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    def quantile(self, q: float) -> float:
        return math.nan


_NULL_TIMER = _NullTimer()
_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Hands out shared no-op handles; snapshots are empty."""

    def counter(self, name: str, help: str = "",
                labels: Optional[dict] = None) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "",
              labels: Optional[dict] = None,
              collect: Optional[Callable[[], float]] = None) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "",
                  boundaries: Optional[Sequence[float]] = None,
                  labels: Optional[dict] = None) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> list[dict]:
        return []

    def render(self) -> str:
        return ""


#: Shared disabled registry (``RecommendationService(metrics=False)``).
NULL_REGISTRY = NullRegistry()


# ----------------------------------------------------------------------
# Snapshot algebra: merge across processes, render anywhere
# ----------------------------------------------------------------------
def merge_snapshots(snapshots: Iterable[list[dict]]) -> list[dict]:
    """Sum same-named entries across per-process snapshots.

    Counter/gauge values add; histogram bucket counts, sums and counts
    add element-wise (boundaries must agree — they come from the same
    code).  Entry identity is ``(name, labels)``; first-seen order is
    preserved so merged output stays stable.
    """
    merged: dict[tuple, dict] = {}
    for snapshot in snapshots:
        for entry in snapshot:
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            into = merged.get(key)
            if into is None:
                merged[key] = {k: (list(v) if isinstance(v, list) else v)
                               for k, v in entry.items()}
                continue
            if into["type"] != entry["type"]:
                raise ValueError(
                    f"metric {entry['name']!r} has conflicting types: "
                    f"{into['type']} vs {entry['type']}")
            if entry["type"] == "histogram":
                if list(into["boundaries"]) != list(entry["boundaries"]):
                    raise ValueError(
                        f"histogram {entry['name']!r} has mismatched "
                        f"boundaries across snapshots")
                into["counts"] = [a + b for a, b in
                                  zip(into["counts"], entry["counts"])]
                into["sum"] += entry["sum"]
                into["count"] += entry["count"]
                into["max"] = max(into["max"], entry["max"])
            else:
                into["value"] += entry["value"]
    return list(merged.values())


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{key}="{value}"'
                     for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def render_snapshot(entries: Sequence[dict]) -> str:
    """Prometheus text exposition (v0.0.4) of snapshot entries.

    ``# HELP``/``# TYPE`` headers are emitted once per family, series
    lines follow in snapshot order; histograms expose cumulative
    ``_bucket{le=...}`` lines plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()
    for entry in entries:
        name = entry["name"]
        if name not in seen_headers:
            seen_headers.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['type']}")
        if entry["type"] == "histogram":
            cumulative = 0
            for boundary, count in zip(entry["boundaries"], entry["counts"]):
                cumulative += count
                labels = _format_labels(entry["labels"],
                                        {"le": _format_value(boundary)})
                lines.append(f"{name}_bucket{labels} {cumulative}")
            cumulative += entry["counts"][-1]
            labels = _format_labels(entry["labels"], {"le": "+Inf"})
            lines.append(f"{name}_bucket{labels} {cumulative}")
            base = _format_labels(entry["labels"])
            lines.append(f"{name}_sum{base} {_format_value(entry['sum'])}")
            lines.append(f"{name}_count{base} {entry['count']}")
        else:
            labels = _format_labels(entry["labels"])
            lines.append(f"{name}{labels} {_format_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")
