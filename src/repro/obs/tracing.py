"""Request tracing: per-request trace ids, spans, a bounded ring.

A :class:`Tracer` is owned by whatever serves requests (the
:class:`~repro.serving.service.RecommendationService`, the
:class:`~repro.serving.cluster.ServingCluster`).  Tracing is **opt-in**
and purely observational: spans record wall-clock offsets and tags,
never touch request data, and the instrumented code paths are
byte-identical with tracing on or off (asserted in
``tests/serving/test_observability.py``).

The model is deliberately small:

- a **trace** is minted per request (`trace_id` = 16 hex chars) and
  collects a flat list of spans;
- a **span** is a named timed section (``with tracer.span("rerank")``);
  nested ``start`` calls while a trace is active become spans, so a
  service running inside an already-traced cluster call contributes its
  spans to the caller's trace instead of starting a second one;
- finished traces land in a bounded ring (``deque(maxlen)``) readable
  via ``GET /trace`` — old traces fall off, memory is bounded.

Cross-process propagation: the cluster sends its trace id over the
worker RPC; the worker *forces* a trace with that id (``start(...,
trace_id=...)`` is active even when the worker's tracer is disabled),
and the worker's spans travel back in the RPC reply, where the router
absorbs them into the parent trace tagged with the replica's identity.
One trace id therefore spans client → shard router → replica.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional


def _mint_trace_id(counter: int, seed_bits: int) -> str:
    """16-hex-char trace id: process-random bits mixed with a counter.

    Not ``random``-module based on purpose: minting must not perturb
    any seeded RNG stream the serving or training paths rely on.
    """
    mixed = (seed_bits ^ (counter * 0x9E3779B97F4A7C15)) & ((1 << 64) - 1)
    return f"{mixed:016x}"


class Span:
    """One timed section inside a trace (flat; identified by name)."""

    __slots__ = ("name", "start", "duration", "tags")

    def __init__(self, name: str, start: float, duration: float = 0.0,
                 tags: Optional[dict] = None):
        self.name = name
        self.start = start          # seconds since trace start
        self.duration = duration    # seconds
        self.tags = tags or {}

    def to_dict(self) -> dict:
        out = {"name": self.name,
               "start_ms": round(self.start * 1e3, 4),
               "duration_ms": round(self.duration * 1e3, 4)}
        if self.tags:
            out["tags"] = self.tags
        return out


class Trace:
    """A request's trace: id, name, wall-clock anchor, spans."""

    __slots__ = ("trace_id", "name", "started_unix", "_t0", "duration",
                 "spans", "_lock")

    def __init__(self, trace_id: str, name: str):
        self.trace_id = trace_id
        self.name = name
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self.duration = 0.0
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def add_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def absorb(self, span_dicts: list[dict], prefix: str = "",
               **tags) -> None:
        """Merge remote span payloads (offsets are the remote clock's)."""
        for payload in span_dicts:
            span = Span(prefix + payload["name"],
                        payload["start_ms"] / 1e3,
                        payload["duration_ms"] / 1e3,
                        dict(payload.get("tags", {})))
            if tags:
                span.tags = {**span.tags, **tags}
            self.add_span(span)

    def export_spans(self) -> list[dict]:
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "name": self.name,
                "started_unix": self.started_unix,
                "duration_ms": round(self.duration * 1e3, 4),
                "spans": [span.to_dict() for span in self.spans],
            }


class _NullContext:
    """Shared no-op for inactive tracing; near-zero per-call cost."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return None


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    __slots__ = ("_trace", "_name", "_tags", "_span", "_started")

    def __init__(self, trace: Trace, name: str, tags: Optional[dict]):
        self._trace = trace
        self._name = name
        self._tags = tags

    def __enter__(self) -> Span:
        self._started = time.perf_counter()
        self._span = Span(self._name, self._trace.elapsed(),
                          tags=self._tags)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.duration = time.perf_counter() - self._started
        self._trace.add_span(self._span)


class _TraceContext:
    __slots__ = ("_tracer", "_trace")

    def __init__(self, tracer: "Tracer", trace: Trace):
        self._tracer = tracer
        self._trace = trace

    def __enter__(self) -> Trace:
        self._tracer._local.trace = self._trace
        return self._trace

    def __exit__(self, *exc_info) -> None:
        trace = self._trace
        trace.duration = trace.elapsed()
        self._tracer._local.trace = None
        self._tracer._record(trace)


class Tracer:
    """Mints traces, scopes spans, keeps the bounded ring.

    ``enabled=False`` (the default) makes :meth:`start` and
    :meth:`span` return a shared no-op context — instrumented call
    sites cost one attribute read and one method call.  A ``trace_id``
    passed to :meth:`start` forces a trace even when disabled; that is
    the cross-process propagation path.
    """

    def __init__(self, enabled: bool = False, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque[Trace] = deque(maxlen=capacity)
        self._ring_lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0
        self._counter_lock = threading.Lock()
        # Seeded from object identity + boot clock: unique enough per
        # process without touching any RNG stream.
        self._seed_bits = (id(self) * 2654435761
                           ^ time.monotonic_ns()) & ((1 << 64) - 1)

    # ------------------------------------------------------------------
    def current(self) -> Optional[Trace]:
        """The trace active on this thread, if any."""
        return getattr(self._local, "trace", None)

    def current_id(self) -> Optional[str]:
        trace = self.current()
        return trace.trace_id if trace is not None else None

    def start(self, name: str, trace_id: Optional[str] = None):
        """Begin a trace (or a child span when one is already active).

        Returns a context manager yielding the :class:`Trace` (or
        :class:`Span`, in the nested case; ``None`` when inactive).
        """
        active = self.current()
        if active is not None:
            # Nested start: the enclosing request owns the trace; this
            # section is just a span of it.
            return _SpanContext(active, name, None)
        if trace_id is None:
            if not self.enabled:
                return _NULL_CONTEXT
            with self._counter_lock:
                self._counter += 1
                trace_id = _mint_trace_id(self._counter, self._seed_bits)
        return _TraceContext(self, Trace(trace_id, name))

    def span(self, name: str, **tags):
        """A timed section of the current trace (no-op without one)."""
        trace = self.current()
        if trace is None:
            return _NULL_CONTEXT
        return _SpanContext(trace, name, tags or None)

    # ------------------------------------------------------------------
    def _record(self, trace: Trace) -> None:
        with self._ring_lock:
            self._ring.append(trace)

    def traces(self, n: Optional[int] = None) -> list[dict]:
        """Most recent finished traces, newest first."""
        with self._ring_lock:
            recent = list(self._ring)
        recent.reverse()
        if n is not None:
            recent = recent[:max(0, int(n))]
        return [trace.to_dict() for trace in recent]

    def clear(self) -> None:
        with self._ring_lock:
            self._ring.clear()
