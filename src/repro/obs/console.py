"""Terminal surfaces: ``repro top`` and ``repro bench report``.

``repro top`` polls a live server's ``/stats`` (legacy JSON counters)
and ``/metrics?format=json`` (registry snapshot) and renders a
one-screen operational view — request rates computed from successive
samples, latency percentiles read straight off the histogram snapshot
(:func:`repro.obs.metrics.snapshot_quantile`), cache and cluster
health.  Rendering is a pure function of the samples so tests drive it
without a terminal.

``repro bench report`` aggregates every JSON record under
``benchmarks/results/`` into one trajectory table: benchmark name,
measured speedup (or percent), the gate it was held to, and pass/skip.
Records are what the gated benchmarks already write; this merely makes
the perf history inspectable in one place.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
import urllib.request
from typing import Optional

from repro.obs.metrics import snapshot_quantile


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def fetch_json(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


def sample_server(base_url: str, timeout: float = 10.0) -> dict:
    """One polling sample: stats + metrics snapshot + a monotonic stamp."""
    return {
        "t": time.perf_counter(),
        "stats": fetch_json(base_url.rstrip("/") + "/stats", timeout),
        "metrics": fetch_json(
            base_url.rstrip("/") + "/metrics?format=json",
            timeout).get("metrics", []),
    }


def _find_metric(snapshot: list, name: str) -> Optional[dict]:
    for entry in snapshot:
        if entry["name"] == name and not entry.get("labels"):
            return entry
    return None


def _rate(now: dict, prev: Optional[dict], counter: str) -> float:
    if prev is None:
        return 0.0
    dt = now["t"] - prev["t"]
    if dt <= 0:
        return 0.0
    return (now["stats"].get(counter, 0) - prev["stats"].get(counter, 0)) / dt


def _fmt_ms(seconds: float) -> str:
    return "--" if math.isnan(seconds) else f"{seconds * 1e3:.2f}ms"


def render_top(sample: dict, prev: Optional[dict] = None,
               url: str = "") -> str:
    """One screenful of operational state (pure; no I/O)."""
    stats = sample["stats"]
    metrics = sample["metrics"]
    lines = []
    title = f"repro top — {stats.get('model', '?')} on {stats.get('dataset', '?')}"
    if url:
        title += f" @ {url}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        f"catalogue  {stats.get('n_users', 0):>8d} users x "
        f"{stats.get('n_items', 0):>6d} items   "
        f"fast_path={stats.get('fast_path')}  ann={stats.get('ann')}  "
        f"online={stats.get('online_updates')}")
    lines.append(
        f"requests   {stats.get('requests', 0):>10d} total  "
        f"{_rate(sample, prev, 'requests'):>8.1f}/s   "
        f"users_scored {stats.get('users_scored', 0)}   "
        f"ann_fallbacks {stats.get('ann_fallbacks', 0)}")
    lines.append(
        f"updates    {stats.get('interactions_added', 0):>10d} ingested  "
        f"{_rate(sample, prev, 'interactions_added'):>8.1f}/s   "
        f"folded_in {stats.get('updates_folded_in', 0)}")
    cache = stats.get("cache", {})
    lines.append(
        f"cache      {cache.get('size', 0)}/{cache.get('capacity', 0)} "
        f"entries   hit_rate {cache.get('hit_rate', 0.0):.1%}   "
        f"evictions {cache.get('evictions', 0)}   "
        f"invalidations {cache.get('invalidations', 0)}")
    request_hist = _find_metric(metrics, "repro_request_seconds")
    if request_hist is not None and request_hist.get("count"):
        p50 = snapshot_quantile(request_hist, 0.50)
        p95 = snapshot_quantile(request_hist, 0.95)
        p99 = snapshot_quantile(request_hist, 0.99)
        mean = request_hist["sum"] / request_hist["count"]
        lines.append(
            f"latency    p50 {_fmt_ms(p50)}   p95 {_fmt_ms(p95)}   "
            f"p99 {_fmt_ms(p99)}   mean {_fmt_ms(mean)}   "
            f"({request_hist['count']} samples)")
    else:
        lines.append("latency    (no request samples yet)")
    cluster = stats.get("cluster")
    if cluster:
        lines.append(
            f"cluster    {cluster['shards']} shards x "
            f"{cluster['replicas']} replicas   alive {cluster['alive']}   "
            f"routed {cluster['requests_routed']}   "
            f"failovers {cluster['failovers']}")
    return "\n".join(lines)


def top_main(args) -> int:
    """Entry point behind ``repro top``."""
    url = args.url.rstrip("/")
    # --iterations 0 (the CLI default) means "until interrupted".
    iterations = 1 if args.once else (args.iterations or None)
    interval = max(0.1, args.interval)
    prev = None
    count = 0
    clear = sys.stdout.isatty() and not args.once
    try:
        while iterations is None or count < iterations:
            if count:
                time.sleep(interval)
            try:
                sample = sample_server(url)
            except OSError as exc:
                print(f"repro top: cannot reach {url}: {exc}",
                      file=sys.stderr)
                return 1
            if clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(render_top(sample, prev, url=url), flush=True)
            prev = sample
            count += 1
    except KeyboardInterrupt:
        pass
    return 0


# ----------------------------------------------------------------------
# repro bench report
# ----------------------------------------------------------------------
def load_records(results_dir: str) -> list[dict]:
    """Every benchmark record under ``results_dir`` (file order, then
    record order inside a file); each gets a ``_file`` provenance key."""
    records = []
    if not os.path.isdir(results_dir):
        return records
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(results_dir, name)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        for record in data if isinstance(data, list) else [data]:
            if isinstance(record, dict):
                records.append({**record, "_file": name})
    return records


def _measured(record: dict) -> Optional[float]:
    """The record's headline number: a speedup, a ratio, or a percent."""
    for key in ("speedup", "speedup_req_per_sec", "throughput_ratio",
                "recall_at_10", "percent"):
        if key in record and isinstance(record[key], (int, float)):
            return float(record[key])
    for key, value in record.items():
        if "speedup" in key and isinstance(value, (int, float)):
            return float(value)
    return None


def _status(record: dict) -> str:
    gate = record.get("gate")
    if isinstance(gate, str) and gate.strip().lower().startswith("skip"):
        return "skip"
    if "gate_passed" in record:
        return "pass" if record["gate_passed"] else "FAIL"
    if record.get("benchmark") == "coverage":
        return ("pass" if record.get("percent", 0.0)
                >= record.get("threshold", 0.0) else "FAIL")
    return "pass" if gate else "--"


def format_report(records: list[dict]) -> str:
    """The trajectory table: name, measured, gate, status, source file."""
    if not records:
        return ("no benchmark records found — run the gated benchmarks "
                "(e.g. pytest benchmarks/ -m 'not slow') first")
    header = (f"{'benchmark':26s} {'measured':>10s} "
              f"{'gate':34s} {'status':>6s}  source")
    lines = [header, "-" * len(header)]
    for record in records:
        name = str(record.get("benchmark") or
                   record["_file"].rsplit(".", 1)[0])
        # Scenario capacity records all share one benchmark id; the
        # scenario name is what distinguishes the rows.
        if record.get("scenario"):
            name = f"scenario:{record['scenario']}"
        measured = _measured(record)
        if measured is None:
            shown = "--"
        elif record.get("benchmark") == "coverage":
            shown = f"{measured:.1f}%"
        else:
            shown = f"{measured:.2f}x" if measured < 1000 else f"{measured:.0f}"
        gate = str(record.get("gate") or "--")
        if len(gate) > 34:
            gate = gate[:31] + "..."
        lines.append(f"{name:26s} {shown:>10s} {gate:34s} "
                     f"{_status(record):>6s}  {record['_file']}")
    counts = {"pass": 0, "skip": 0, "FAIL": 0, "--": 0}
    for record in records:
        counts[_status(record)] += 1
    lines.append(f"{len(records)} records: {counts['pass']} pass, "
                 f"{counts['skip']} skipped, {counts['FAIL']} failed, "
                 f"{counts['--']} ungated")
    return "\n".join(lines)


def bench_report_main(args) -> int:
    """Entry point behind ``repro bench report``."""
    records = load_records(args.results_dir)
    print(format_report(records))
    return 1 if any(_status(r) == "FAIL" for r in records) else 0
