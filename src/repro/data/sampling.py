"""Negative sampling for training and ranking evaluation.

The paper (Sections 4.3.1–4.3.2) samples two negative items per positive
for training, labels positives +1 and negatives -1, and for top-n
evaluation ranks the held-out positive against 99 sampled uninteracted
items.

Sampling is fully vectorized over the dataset's shared sorted-CSR
membership structure (:mod:`repro.data.membership`): every rejection
round batch-draws replacements for the still-colliding entries and
batch-tests them with one ``searchsorted`` — there is no Python-level
per-element membership loop anywhere on this path.  Entries that are
still colliding after the bounded rejection phase (users who interacted
with nearly the whole catalogue) are resolved *exactly* by sampling a
uniform rank into the user's complement, so the "negatives are
uninteracted" contract holds unconditionally.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RecDataset

#: Rejection rounds before falling back to exact complement sampling.
#: Matches the seed's retry cap, which keeps the RNG draw sequence (and
#: therefore every seeded experiment) identical on non-pathological data.
_REJECTION_ROUNDS = 20


class NegativeSampler:
    """Uniform negative sampler avoiding each user's interacted items."""

    def __init__(self, dataset: RecDataset, seed: int = 0):
        self.dataset = dataset
        self.rng = np.random.default_rng(seed)
        self._membership = dataset.membership()

    def sample_for_users(self, users: np.ndarray, n_neg: int) -> np.ndarray:
        """Sample ``n_neg`` uninteracted items for each user.

        Returns an ``int64 [len(users), n_neg]`` array.  Vectorized
        rejection sampling resolves almost every entry in a handful of
        batch rounds; the rare survivors (near-dense users) are finished
        with an exact uniform draw from the user's complement, so no
        returned item is ever one the user interacted with.

        Raises
        ------
        ValueError
            If some requested user has interacted with every item (the
            complement is empty, so the contract cannot be satisfied).
        """
        users = np.asarray(users, dtype=np.int64)
        n_items = self.dataset.n_items
        out = self.rng.integers(0, n_items, size=(users.size, n_neg))
        if out.size == 0:
            return out
        flat_users = np.repeat(users, n_neg)
        collision = self._membership.contains(
            flat_users, out.ravel()).reshape(out.shape)
        for _ in range(_REJECTION_ROUNDS):
            if not collision.any():
                return out
            out[collision] = self.rng.integers(
                0, n_items, size=int(collision.sum()))
            collision[collision] = self._membership.contains(
                flat_users[collision.ravel()], out[collision])
        if collision.any():
            bad_users = flat_users[collision.ravel()]
            free = self._membership.free_counts(bad_users)
            if (free == 0).any():
                dense = np.unique(bad_users[free == 0])
                raise ValueError(
                    f"users {dense[:5].tolist()} interacted with all "
                    f"{n_items} items; no negatives exist")
            ranks = self.rng.integers(0, free)
            out[collision] = self._membership.kth_free(bad_users, ranks)
        return out

    def sample_for_users_excluding(
        self, users: np.ndarray, excluded: np.ndarray, n_neg: int
    ) -> np.ndarray:
        """Like :meth:`sample_for_users`, but also avoid one per-row item.

        Streaming consumers pair each event ``(users[i], excluded[i])``
        with sampled negatives; the event's item is typically *absent*
        from this sampler's (frozen) membership, so a plain draw could
        return it — cancelling a fold-in update or tying an evaluation
        candidate row against its own positive.  Colliding entries are
        redrawn from the same seeded stream for a bounded number of
        rounds (pathological near-dense users keep the collision
        rather than looping).
        """
        users = np.asarray(users, dtype=np.int64)
        excluded = np.asarray(excluded, dtype=np.int64)
        if users.shape != excluded.shape:
            raise ValueError("users and excluded must be parallel arrays")
        negatives = self.sample_for_users(users, n_neg)
        collision = negatives == excluded[:, None]
        for _ in range(_REJECTION_ROUNDS):
            if not collision.any():
                break
            rows, cols = np.nonzero(collision)
            negatives[rows, cols] = self.sample_for_users(
                users[rows], 1).ravel()
            collision = negatives == excluded[:, None]
        return negatives

    def build_pointwise_training_set(
        self, train_index: np.ndarray, n_neg: int = 2
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Positives (+1) plus ``n_neg`` sampled negatives (-1) each.

        Returns ``(users, items, labels)`` shuffled together.  Matching
        the paper's protocol, the sample is drawn once (with this
        sampler's seed) so all models can train on identical instances.
        """
        pos_users = self.dataset.users[train_index]
        pos_items = self.dataset.items[train_index]
        neg_items = self.sample_for_users(pos_users, n_neg)
        users = np.concatenate([pos_users, np.repeat(pos_users, n_neg)])
        items = np.concatenate([pos_items, neg_items.reshape(-1)])
        labels = np.concatenate([
            np.ones(pos_users.size),
            -np.ones(pos_users.size * n_neg),
        ])
        order = self.rng.permutation(users.size)
        return users[order], items[order], labels[order]

    def build_pairwise_training_set(
        self, train_index: np.ndarray, n_neg: int = 1
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(user, positive item, negative item) triples for BPR."""
        pos_users = self.dataset.users[train_index]
        pos_items = self.dataset.items[train_index]
        neg_items = self.sample_for_users(pos_users, n_neg)
        users = np.repeat(pos_users, n_neg)
        positives = np.repeat(pos_items, n_neg)
        negatives = neg_items.reshape(-1)
        order = self.rng.permutation(users.size)
        return users[order], positives[order], negatives[order]


def sample_ranking_candidates(
    dataset: RecDataset,
    test_users: np.ndarray,
    test_items: np.ndarray,
    n_candidates: int = 99,
    seed: int = 0,
) -> np.ndarray:
    """Candidate lists for leave-one-out evaluation.

    For each test row the returned ``int64 [n_test, n_candidates + 1]``
    array holds the positive item in column 0 followed by
    ``n_candidates`` sampled items the user never interacted with.
    """
    sampler = NegativeSampler(dataset, seed=seed)
    negatives = sampler.sample_for_users(np.asarray(test_users), n_candidates)
    return np.concatenate(
        [np.asarray(test_items, dtype=np.int64).reshape(-1, 1), negatives], axis=1
    )
