"""Sorted-CSR per-user positives: the shared membership data plane.

Every consumer of the user→interacted-items relation (negative
sampling, seen-item masking, ``RecDataset.positives_by_user``) needs
the same three operations — enumerate a user's items, test membership,
and sample from the complement — and the seed implemented each one
separately (list-of-sets on the dataset, a private CSR in
``serving.index``, Python ``in`` loops in the sampler).
:class:`UserPositives` is the single structure behind all of them.

CSR layout
----------
The interaction log is deduplicated and sorted by ``(user, item)``
into two arrays:

- ``indices`` — ``int64 [nnz]`` item ids, grouped by user, sorted
  ascending within each user's run;
- ``indptr`` — ``int64 [n_users + 1]`` offsets such that user ``u``'s
  items are ``indices[indptr[u]:indptr[u + 1]]``.

Because each run is sorted, a per-user membership test is an
O(log d) ``searchsorted``.  Batch queries use the equivalent *flat
key* view ``keys = user * n_items + item`` (also fully sorted), so a
whole array of (user, item) pairs is tested with one vectorized
``searchsorted`` over ``keys`` — no Python-level per-element loop.

Complement sampling uses a second derived view: within a user's run,
``indices[j] - local_rank(j)`` counts the uninteracted items preceding
``indices[j]``; it is non-decreasing, so the rank-r uninteracted item
of every queried user is again one global ``searchsorted``
(see :meth:`UserPositives.kth_free`).
"""

from __future__ import annotations

import numpy as np


class UserPositives:
    """Immutable sorted-CSR view of per-user interacted items."""

    def __init__(self, n_users: int, n_items: int,
                 users: np.ndarray, items: np.ndarray):
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must be parallel arrays")
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise ValueError("user id out of range")
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise ValueError("item id out of range")
        # Deduplicate pairs and sort by (user, item) in one pass over
        # the flat keys; the CSR arrays are derived views of the keys.
        span = max(self.n_items, 1)
        self.keys = np.unique(users * span + items)
        csr_users = self.keys // span
        self.indices = self.keys - csr_users * span
        self.indptr = np.searchsorted(
            csr_users, np.arange(self.n_users + 1, dtype=np.int64))
        self._free_keys: np.ndarray | None = None

    @classmethod
    def from_dataset(cls, dataset) -> "UserPositives":
        return cls(dataset.n_users, dataset.n_items,
                   dataset.users, dataset.items)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.indices.size

    def degrees(self) -> np.ndarray:
        """``int64 [n_users]`` interacted-item count per user."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        return int(np.diff(self.indptr).max(initial=0))

    def row(self, user: int) -> np.ndarray:
        """Sorted item ids of one user (a read-only CSR slice)."""
        return self.indices[self.indptr[user]:self.indptr[user + 1]]

    def to_sets(self) -> list[set[int]]:
        """Materialize ``list[set[int]]`` (legacy consumers only)."""
        return [set(self.row(u).tolist()) for u in range(self.n_users)]

    # ------------------------------------------------------------------
    def contains(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized membership test for parallel (user, item) arrays.

        Returns ``bool [len(users)]``; one ``searchsorted`` over the
        sorted flat keys, O(log nnz) per query.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise ValueError("user id out of range")
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise ValueError("item id out of range")
        if self.keys.size == 0:
            return np.zeros(users.shape, dtype=bool)
        query = users * max(self.n_items, 1) + items
        pos = np.searchsorted(self.keys, query)
        pos = np.minimum(pos, self.keys.size - 1)
        return self.keys[pos] == query

    def free_counts(self, users: np.ndarray) -> np.ndarray:
        """Number of *uninteracted* items per queried user."""
        users = np.asarray(users, dtype=np.int64)
        return self.n_items - (self.indptr[users + 1] - self.indptr[users])

    def kth_free(self, users: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """The rank-``r`` uninteracted item of each queried user.

        ``ranks[i]`` must lie in ``[0, free_counts(users)[i])``; the
        result is the item id that is the ``ranks[i]``-th element of
        the sorted complement of user ``i``'s positives.  Fully
        vectorized: the shifted view ``indices - local_rank`` is
        non-decreasing globally once re-keyed by user, so every query
        resolves with a single ``searchsorted``.
        """
        users = np.asarray(users, dtype=np.int64)
        ranks = np.asarray(ranks, dtype=np.int64)
        span = max(self.n_items, 1)
        if self._free_keys is None:
            local_rank = np.arange(self.nnz, dtype=np.int64) - np.repeat(
                self.indptr[:-1], np.diff(self.indptr))
            csr_users = np.repeat(
                np.arange(self.n_users, dtype=np.int64), np.diff(self.indptr))
            self._free_keys = csr_users * span + (self.indices - local_rank)
        query = users * span + ranks
        # Number of positives whose shifted value is <= rank: each one
        # pushes the rank-r free item one slot to the right.
        shift = (np.searchsorted(self._free_keys, query, side="right")
                 - self.indptr[users])
        return ranks + shift
