"""Feature fields and the global one-hot index space.

An *attribute* in the paper (user ID, item ID, item category, ...) maps
to a :class:`FeatureField`.  Each field reserves a contiguous block of
the global feature index space; a :class:`FeatureSpace` is an ordered
collection of fields and provides the local→global index arithmetic.

Fields may be multi-hot (e.g. movie genres): they own ``slots`` columns
in the fixed-width encoded sample.  Unused slots carry value 0, which
deactivates them in every FM-style model (terms are multiplied by the
value ``x_i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterator


@dataclass(frozen=True)
class FeatureField:
    """One attribute block in the concatenated one-hot input vector.

    Parameters
    ----------
    name:
        Unique field name, e.g. ``"user"`` or ``"category"``.
    cardinality:
        Number of distinct values the field can take (block width).
    slots:
        How many values may be active simultaneously (1 for categorical
        fields, >1 for multi-hot fields such as genres).
    """

    name: str
    cardinality: int
    slots: int = 1

    def __post_init__(self):
        if self.cardinality <= 0:
            raise ValueError(f"field {self.name!r}: cardinality must be positive")
        if self.slots <= 0:
            raise ValueError(f"field {self.name!r}: slots must be positive")


class FeatureSpace:
    """Ordered collection of fields forming the global index space.

    The global space mirrors the paper's ``x ∈ R^n`` with
    ``n = Σ cardinality``; encoded samples have fixed width
    ``W = Σ slots``.
    """

    def __init__(self, fields: list[FeatureField]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        self.fields = list(fields)
        self._by_name = {f.name: f for f in fields}
        self._offsets: dict[str, int] = {}
        offset = 0
        for f in fields:
            self._offsets[f.name] = offset
            offset += f.cardinality
        self.n_features = offset
        self.width = sum(f.slots for f in fields)
        self._slot_starts: dict[str, int] = {}
        start = 0
        for f in fields:
            self._slot_starts[f.name] = start
            start += f.slots

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[FeatureField]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def field(self, name: str) -> FeatureField:
        """Return the field named ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown field {name!r}") from None

    def offset(self, name: str) -> int:
        """Global index of the first value of field ``name``."""
        self.field(name)
        return self._offsets[name]

    def slot_start(self, name: str) -> int:
        """First encoded-sample column owned by field ``name``."""
        self.field(name)
        return self._slot_starts[name]

    def globalize(self, name: str, local_indices):
        """Convert local field indices to global feature indices."""
        return self.offset(name) + local_indices

    def field_of(self, global_index: int) -> FeatureField:
        """Return the field owning a global feature index."""
        if not 0 <= global_index < self.n_features:
            raise IndexError(f"global index {global_index} out of range")
        for f in self.fields:
            start = self._offsets[f.name]
            if start <= global_index < start + f.cardinality:
                return f
        raise AssertionError("unreachable")

    def subspace(self, names: list[str]) -> "FeatureSpace":
        """A new space containing only the named fields, in given order.

        Used by the attribute-effect experiment (Table 6) to train on
        attribute subsets.
        """
        return FeatureSpace([self.field(n) for n in names])

    def describe(self) -> str:
        """Human-readable summary used in dataset statistics tables."""
        rows = [
            f"  {f.name}: cardinality={f.cardinality} slots={f.slots} offset={self._offsets[f.name]}"
            for f in self.fields
        ]
        header = f"FeatureSpace(n_features={self.n_features}, width={self.width})"
        return "\n".join([header] + rows)
