"""Cached encoded-instance plane for static instance sets.

:meth:`repro.data.dataset.RecDataset.encode` rebuilds the fixed-width
``(indices, values)`` arrays for every minibatch it is handed.  During
training the *instance set* (the full array of (user, item) pairs) is
static across epochs — only the minibatch order changes — so the
encoding can be built once per instance set and sliced per minibatch,
mirroring the item-side precompute of the serving grid scorer
(:class:`repro.serving.scorer.BatchScorer`).

This module provides the memo behind
:meth:`repro.data.dataset.RecDataset.encode_cached`:

- :func:`instance_key` fingerprints an instance set by *content*, so a
  freshly sliced copy of the same ids hits the cache while any change
  to the instances (different split, mutated arrays, new negatives)
  naturally invalidates it;
- :class:`EncodedCache` is a small LRU keyed by those fingerprints with
  hit/miss counters for tests and benchmarks.

Cached arrays are marked read-only: every consumer slices them (fancy
indexing copies; basic slices are views that must not be written), so
an accidental in-place mutation raises instead of corrupting every
later epoch.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

#: Instance sets larger than this are encoded on demand instead of
#: being materialized whole — bounds cache memory when a fallback
#: scorer pushes a flattened ``users x catalogue`` grid through
#: ``predict`` (see ``FeatureRecommender.batch_scorer``).
ENCODE_CACHE_MAX_ROWS = 2_000_000


def instance_key(users: np.ndarray, items: np.ndarray) -> bytes:
    """Content fingerprint of an instance set.

    Two instance sets get the same key iff they hold the same (user,
    item) id sequences — object identity is irrelevant, so the arrays
    re-created by a split each epoch still hit the cache, and any
    content change misses it (which is exactly the invalidation rule
    the cache needs).
    """
    users = np.ascontiguousarray(users, dtype=np.int64)
    items = np.ascontiguousarray(items, dtype=np.int64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(users.size).tobytes())
    digest.update(users.tobytes())
    digest.update(items.tobytes())
    return digest.digest()


class EncodedCache:
    """LRU cache of encoded instance sets keyed by content fingerprint.

    Bounded twice over: at most ``capacity`` entries, and at most
    ``max_bytes`` of cached array data in total.  Entries larger than
    the byte budget on their own are never admitted (callers check
    :meth:`repro.data.dataset.RecDataset.encoding_cacheable` and fall
    back to per-chunk encoding before even materializing them).
    Under-budget entries compete by LRU: a burst of one-shot sets can
    evict long-lived training encodings, which costs one re-encode on
    the next epoch but never more than the two bounds allow in memory.
    """

    def __init__(self, capacity: int = 8, max_bytes: int = 256 * 1024 * 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.capacity = int(capacity)
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[bytes, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._ghosts: OrderedDict[bytes, None] = OrderedDict()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0

    #: How many recently-observed-but-not-cached keys to remember for
    #: the second-observation admission policy (16-byte digests each).
    GHOST_CAPACITY = 64

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _entry_bytes(encoded: tuple[np.ndarray, np.ndarray]) -> int:
        indices, values = encoded
        return int(indices.nbytes) + int(values.nbytes)

    def get(self, key: bytes) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """The cached ``(indices, values)`` pair, or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, encoded: tuple[np.ndarray, np.ndarray]) -> None:
        """Insert an entry, evicting least recently used beyond either bound."""
        size = self._entry_bytes(encoded)
        if size > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._nbytes -= self._entry_bytes(old)
        self._entries[key] = encoded
        self._nbytes += size
        while len(self._entries) > self.capacity or self._nbytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= self._entry_bytes(evicted)

    def observe(self, key: bytes) -> bool:
        """Record a sighting of ``key``; True iff it was seen before.

        Backs the second-observation admission policy for opportunistic
        callers (``predict`` on an arbitrary instance set): a key's
        first sighting only leaves a 16-byte ghost, so one-shot sets
        (e.g. flattened user×catalogue grids) never earn a cache slot,
        while genuinely repeated sets (per-epoch validation splits) are
        admitted from their second epoch on.
        """
        if key in self._entries:
            return True
        if key in self._ghosts:
            self._ghosts.move_to_end(key)
            return True
        self._ghosts[key] = None
        while len(self._ghosts) > self.GHOST_CAPACITY:
            self._ghosts.popitem(last=False)
        return False

    def clear(self) -> None:
        self._entries.clear()
        self._ghosts.clear()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss counters plus current occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "nbytes": self._nbytes,
        }
