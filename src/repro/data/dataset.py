"""The interaction dataset container used across the whole repository.

A :class:`RecDataset` bundles

- the positive user→item interactions (implicit feedback, timestamped),
- static user and item side attributes, and
- the :class:`~repro.data.schema.FeatureSpace` describing how a sample
  ``(user, item)`` is encoded into the fixed-width ``(indices, values)``
  pair every FM-family model consumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.membership import UserPositives
from repro.data.schema import FeatureField, FeatureSpace

USER_FIELD = "user"
ITEM_FIELD = "item"


class RecDataset:
    """Implicit-feedback dataset with side attributes.

    Parameters
    ----------
    name:
        Dataset name (used in reports).
    n_users, n_items:
        Entity counts; user and item ids are dense in ``[0, n)``.
    users, items, timestamps:
        Parallel arrays of positive interactions.
    user_attrs, item_attrs:
        Mapping from field name to ``(indices, values)`` arrays of shape
        ``[n_entities, slots]``; ``indices`` are local to the field and
        slots with value 0 are padding.
    """

    def __init__(
        self,
        name: str,
        n_users: int,
        n_items: int,
        users: np.ndarray,
        items: np.ndarray,
        timestamps: Optional[np.ndarray] = None,
        user_attrs: Optional[dict[str, tuple[np.ndarray, np.ndarray]]] = None,
        item_attrs: Optional[dict[str, tuple[np.ndarray, np.ndarray]]] = None,
    ):
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must be parallel arrays")
        if users.size and (users.min() < 0 or users.max() >= n_users):
            raise ValueError("user id out of range")
        if items.size and (items.min() < 0 or items.max() >= n_items):
            raise ValueError("item id out of range")
        if timestamps is None:
            timestamps = np.arange(users.size, dtype=np.int64)
        timestamps = np.asarray(timestamps, dtype=np.int64)
        if timestamps.shape != users.shape:
            raise ValueError("timestamps must parallel interactions")

        self.name = name
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.users = users
        self.items = items
        self.timestamps = timestamps
        self.user_attrs = dict(user_attrs or {})
        self.item_attrs = dict(item_attrs or {})
        for attr_name, (idx, val) in {**self.user_attrs, **self.item_attrs}.items():
            if idx.shape != val.shape:
                raise ValueError(f"attr {attr_name!r}: indices/values shape mismatch")

        self.feature_space = self._build_feature_space()
        self._membership_cache: Optional[UserPositives] = None
        self._positives_cache: Optional[list[set[int]]] = None

    # ------------------------------------------------------------------
    # Feature space
    # ------------------------------------------------------------------
    def _build_feature_space(self) -> FeatureSpace:
        fields = [
            FeatureField(USER_FIELD, self.n_users),
            FeatureField(ITEM_FIELD, self.n_items),
        ]
        for attr_name, (idx, _val) in self.user_attrs.items():
            fields.append(
                FeatureField(attr_name, int(idx.max()) + 1, slots=idx.shape[1])
            )
        for attr_name, (idx, _val) in self.item_attrs.items():
            fields.append(
                FeatureField(attr_name, int(idx.max()) + 1, slots=idx.shape[1])
            )
        return FeatureSpace(fields)

    @property
    def n_features(self) -> int:
        """Length ``n`` of the concatenated one-hot vector (paper Table 1)."""
        return self.feature_space.n_features

    @property
    def sample_width(self) -> int:
        """Number of active-slot columns per encoded sample."""
        return self.feature_space.width

    @property
    def n_interactions(self) -> int:
        return self.users.size

    def sparsity(self) -> float:
        """1 - density of the user-item matrix (paper Table 2)."""
        return 1.0 - self.n_interactions / (self.n_users * self.n_items)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, users: np.ndarray, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode (user, item) pairs into ``(indices, values)`` arrays.

        Returns
        -------
        indices:
            ``int64 [B, W]`` global feature indices.
        values:
            ``float64 [B, W]`` feature values (0 for padding slots).
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        batch = users.shape[0]
        space = self.feature_space
        indices = np.zeros((batch, space.width), dtype=np.int64)
        values = np.zeros((batch, space.width), dtype=np.float64)

        for field in space.fields:
            start = space.slot_start(field.name)
            stop = start + field.slots
            offset = space.offset(field.name)
            if field.name == USER_FIELD:
                indices[:, start] = offset + users
                values[:, start] = 1.0
            elif field.name == ITEM_FIELD:
                indices[:, start] = offset + items
                values[:, start] = 1.0
            elif field.name in self.user_attrs:
                idx, val = self.user_attrs[field.name]
                indices[:, start:stop] = offset + idx[users]
                values[:, start:stop] = val[users]
            else:
                idx, val = self.item_attrs[field.name]
                indices[:, start:stop] = offset + idx[items]
                values[:, start:stop] = val[items]
        return indices, values

    def encode_half(self, side: str, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode only the user-side or item-side feature slots.

        The full encoding of a pair splits cleanly into slots that
        depend on the user (``user`` id + user attributes) and slots
        that depend on the item (``item`` id + item attributes).  Batch
        scorers exploit this to precompute item-side representations
        once and reuse them for every user (see
        :mod:`repro.serving.scorer`).

        Parameters
        ----------
        side:
            ``"user"`` or ``"item"``.
        ids:
            Entity ids for that side.

        Returns
        -------
        ``(indices, values)`` of shape ``[len(ids), W_side]`` using the
        same *global* feature indices as :meth:`encode`, so embeddings
        looked up from the half encoding match the full encoding.
        """
        if side not in (USER_FIELD, ITEM_FIELD):
            raise ValueError(f"side must be 'user' or 'item', got {side!r}")
        ids = np.asarray(ids, dtype=np.int64)
        space = self.feature_space
        own_attrs = self.user_attrs if side == USER_FIELD else self.item_attrs
        fields = [f for f in space.fields
                  if f.name == side or f.name in own_attrs]
        width = sum(f.slots for f in fields)
        indices = np.zeros((ids.shape[0], width), dtype=np.int64)
        values = np.zeros((ids.shape[0], width), dtype=np.float64)
        start = 0
        for field in fields:
            stop = start + field.slots
            offset = space.offset(field.name)
            if field.name == side:
                indices[:, start] = offset + ids
                values[:, start] = 1.0
            else:
                idx, val = own_attrs[field.name]
                indices[:, start:stop] = offset + idx[ids]
                values[:, start:stop] = val[ids]
            start = stop
        return indices, values

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def select_fields(self, attr_names: list[str]) -> "RecDataset":
        """Return a view keeping only the named side-attribute fields.

        ``user`` and ``item`` are always retained.  Used by the
        attribute-effect study (Table 6): ``select_fields([])`` is the
        paper's "base" configuration.
        """
        unknown = [n for n in attr_names if n not in self.user_attrs and n not in self.item_attrs]
        if unknown:
            raise KeyError(f"unknown attribute fields: {unknown}")
        view = RecDataset(
            name=self.name,
            n_users=self.n_users,
            n_items=self.n_items,
            users=self.users,
            items=self.items,
            timestamps=self.timestamps,
            user_attrs={k: v for k, v in self.user_attrs.items() if k in attr_names},
            item_attrs={k: v for k, v in self.item_attrs.items() if k in attr_names},
        )
        return view

    def subset(self, index: np.ndarray, name_suffix: str = "") -> "RecDataset":
        """Return a dataset containing only the selected interactions."""
        return RecDataset(
            name=self.name + name_suffix,
            n_users=self.n_users,
            n_items=self.n_items,
            users=self.users[index],
            items=self.items[index],
            timestamps=self.timestamps[index],
            user_attrs=self.user_attrs,
            item_attrs=self.item_attrs,
        )

    # ------------------------------------------------------------------
    # Interaction lookups
    # ------------------------------------------------------------------
    def membership(self) -> UserPositives:
        """The shared sorted-CSR per-user positives structure (cached).

        Negative sampling, seen-item masking
        (:class:`repro.serving.index.TopKIndex`) and
        :meth:`positives_by_user` are all views of this one structure;
        see :mod:`repro.data.membership` for the layout.
        """
        if self._membership_cache is None:
            self._membership_cache = UserPositives.from_dataset(self)
        return self._membership_cache

    def positives_by_user(self) -> list[set[int]]:
        """Per-user set of interacted items (cached legacy view)."""
        if self._positives_cache is None:
            self._positives_cache = self.membership().to_sets()
        return self._positives_cache

    def interactions_per_user(self) -> np.ndarray:
        """Count of interactions per user id."""
        return np.bincount(self.users, minlength=self.n_users)

    def interactions_per_item(self) -> np.ndarray:
        """Count of interactions per item id."""
        return np.bincount(self.items, minlength=self.n_items)

    def stats(self) -> dict[str, float]:
        """Dataset statistics in the shape of the paper's Table 2."""
        return {
            "users": self.n_users,
            "items": self.n_items,
            "attribute_dim": self.n_features,
            "instances": self.n_interactions,
            "sparsity": self.sparsity(),
        }

    def __repr__(self) -> str:
        return (
            f"RecDataset({self.name!r}, users={self.n_users}, items={self.n_items}, "
            f"interactions={self.n_interactions}, n_features={self.n_features})"
        )
