"""The interaction dataset container used across the whole repository.

A :class:`RecDataset` bundles

- the positive user→item interactions (implicit feedback, timestamped),
- static user and item side attributes, and
- the :class:`~repro.data.schema.FeatureSpace` describing how a sample
  ``(user, item)`` is encoded into the fixed-width ``(indices, values)``
  pair every FM-family model consumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.encoding import ENCODE_CACHE_MAX_ROWS, EncodedCache, instance_key
from repro.data.membership import UserPositives
from repro.data.schema import FeatureField, FeatureSpace

USER_FIELD = "user"
ITEM_FIELD = "item"


class RecDataset:
    """Implicit-feedback dataset with side attributes.

    Parameters
    ----------
    name:
        Dataset name (used in reports).
    n_users, n_items:
        Entity counts; user and item ids are dense in ``[0, n)``.
    users, items, timestamps:
        Parallel arrays of positive interactions.
    user_attrs, item_attrs:
        Mapping from field name to ``(indices, values)`` arrays of shape
        ``[n_entities, slots]``; ``indices`` are local to the field and
        slots with value 0 are padding.
    """

    def __init__(
        self,
        name: str,
        n_users: int,
        n_items: int,
        users: np.ndarray,
        items: np.ndarray,
        timestamps: Optional[np.ndarray] = None,
        user_attrs: Optional[dict[str, tuple[np.ndarray, np.ndarray]]] = None,
        item_attrs: Optional[dict[str, tuple[np.ndarray, np.ndarray]]] = None,
    ):
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must be parallel arrays")
        if users.size and (users.min() < 0 or users.max() >= n_users):
            raise ValueError("user id out of range")
        if items.size and (items.min() < 0 or items.max() >= n_items):
            raise ValueError("item id out of range")
        if timestamps is None:
            timestamps = np.arange(users.size, dtype=np.int64)
        timestamps = np.asarray(timestamps, dtype=np.int64)
        if timestamps.shape != users.shape:
            raise ValueError("timestamps must parallel interactions")

        self.name = name
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.users = users
        self.items = items
        self.timestamps = timestamps
        self.user_attrs = dict(user_attrs or {})
        self.item_attrs = dict(item_attrs or {})
        for attr_name, (idx, val) in {**self.user_attrs, **self.item_attrs}.items():
            if idx.shape != val.shape:
                raise ValueError(f"attr {attr_name!r}: indices/values shape mismatch")

        self.feature_space = self._build_feature_space()
        self._membership_cache: Optional[UserPositives] = None
        self._positives_cache: Optional[list[set[int]]] = None
        self._encoded_cache = EncodedCache()

    # ------------------------------------------------------------------
    # Feature space
    # ------------------------------------------------------------------
    def _build_feature_space(self) -> FeatureSpace:
        fields = [
            FeatureField(USER_FIELD, self.n_users),
            FeatureField(ITEM_FIELD, self.n_items),
        ]
        for attr_name, (idx, _val) in self.user_attrs.items():
            fields.append(
                FeatureField(attr_name, int(idx.max()) + 1, slots=idx.shape[1])
            )
        for attr_name, (idx, _val) in self.item_attrs.items():
            fields.append(
                FeatureField(attr_name, int(idx.max()) + 1, slots=idx.shape[1])
            )
        return FeatureSpace(fields)

    @property
    def n_features(self) -> int:
        """Length ``n`` of the concatenated one-hot vector (paper Table 1)."""
        return self.feature_space.n_features

    @property
    def sample_width(self) -> int:
        """Number of active-slot columns per encoded sample."""
        return self.feature_space.width

    @property
    def n_interactions(self) -> int:
        return self.users.size

    def sparsity(self) -> float:
        """1 - density of the user-item matrix (paper Table 2)."""
        return 1.0 - self.n_interactions / (self.n_users * self.n_items)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, users: np.ndarray, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode (user, item) pairs into ``(indices, values)`` arrays.

        Returns
        -------
        indices:
            ``int64 [B, W]`` global feature indices.
        values:
            ``float64 [B, W]`` feature values (0 for padding slots).
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        batch = users.shape[0]
        space = self.feature_space
        indices = np.zeros((batch, space.width), dtype=np.int64)
        values = np.zeros((batch, space.width), dtype=np.float64)

        for field in space.fields:
            start = space.slot_start(field.name)
            stop = start + field.slots
            offset = space.offset(field.name)
            if field.name == USER_FIELD:
                indices[:, start] = offset + users
                values[:, start] = 1.0
            elif field.name == ITEM_FIELD:
                indices[:, start] = offset + items
                values[:, start] = 1.0
            elif field.name in self.user_attrs:
                idx, val = self.user_attrs[field.name]
                indices[:, start:stop] = offset + idx[users]
                values[:, start:stop] = val[users]
            else:
                idx, val = self.item_attrs[field.name]
                indices[:, start:stop] = offset + idx[items]
                values[:, start:stop] = val[items]
        return indices, values

    def encoding_cacheable(
        self, n_rows: int, max_rows: int = ENCODE_CACHE_MAX_ROWS
    ) -> bool:
        """Whether an ``n_rows`` instance set is worth precomputing whole.

        True when the full ``(indices, values)`` encoding both fits the
        row gate and would be admitted by the cache's byte budget.
        Callers that precompute-and-slice
        (:meth:`repro.models.base.FeatureRecommender.batch_scorer`)
        check this first so they never materialize a huge encoding the
        cache would refuse to keep — those fall back to per-chunk
        encoding instead.
        """
        entry_bytes = n_rows * self.sample_width * 16  # int64 + float64 slots
        return n_rows <= max_rows and entry_bytes <= self._encoded_cache.max_bytes

    def encode_cached(
        self,
        users: np.ndarray,
        items: np.ndarray,
        max_rows: int = ENCODE_CACHE_MAX_ROWS,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode a *static* instance set once and memoize the result.

        Identical to :meth:`encode` value-for-value, but the full
        ``(indices, values)`` arrays are cached in a small LRU keyed by
        the *content* of ``(users, items)`` (see
        :func:`repro.data.encoding.instance_key`).  Training loops and
        per-epoch validation pass the same instance set every epoch, so
        the encoding is built once and each minibatch is a cheap slice
        of the cached arrays — the per-epoch re-encoding hot spot in
        :class:`repro.training.trainer.Trainer` goes away.

        Content keying doubles as invalidation: a different split, a
        freshly sampled negative set, or mutated id arrays produce a
        different fingerprint and are re-encoded.  The returned arrays
        are read-only (callers slice, never write); instance sets with
        more than ``max_rows`` rows bypass the cache entirely and
        behave exactly like :meth:`encode`.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if not self.encoding_cacheable(users.size, max_rows=max_rows):
            return self.encode(users, items)
        key = instance_key(users, items)
        cached = self._encoded_cache.get(key)
        if cached is None:
            indices, values = self.encode(users, items)
            indices.setflags(write=False)
            values.setflags(write=False)
            cached = (indices, values)
            self._encoded_cache.put(key, cached)
        return cached

    def cached_encoding_if_reused(
        self, users: np.ndarray, items: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """The cached encoding of a set that has *earned* caching, else None.

        The opportunistic sibling of :meth:`encode_cached` for callers
        that cannot know whether their instance set will recur
        (``predict``).  A set is only encoded-and-cached from its
        second sighting on (:meth:`repro.data.encoding.EncodedCache.observe`);
        on first sight this returns ``None`` and the caller should
        encode per chunk — so one-shot prediction sets (e.g. serving's
        flattened score grids) never allocate a full-set encoding nor
        occupy a cache slot, while per-epoch validation splits are
        served from the cache from their second epoch on.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if not self.encoding_cacheable(users.size):
            return None
        key = instance_key(users, items)
        cached = self._encoded_cache.get(key)
        if cached is not None:
            return cached
        if not self._encoded_cache.observe(key):
            return None
        indices, values = self.encode(users, items)
        indices.setflags(write=False)
        values.setflags(write=False)
        cached = (indices, values)
        self._encoded_cache.put(key, cached)
        return cached

    def encoded_cache_stats(self) -> dict[str, int]:
        """Hit/miss/occupancy counters of the encoded-instance cache."""
        return self._encoded_cache.stats()

    def clear_encoded_cache(self) -> None:
        """Drop all cached encodings (e.g. after freeing a dataset view)."""
        self._encoded_cache.clear()

    def encode_half(self, side: str, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode only the user-side or item-side feature slots.

        The full encoding of a pair splits cleanly into slots that
        depend on the user (``user`` id + user attributes) and slots
        that depend on the item (``item`` id + item attributes).  Batch
        scorers exploit this to precompute item-side representations
        once and reuse them for every user (see
        :mod:`repro.serving.scorer`).

        Parameters
        ----------
        side:
            ``"user"`` or ``"item"``.
        ids:
            Entity ids for that side.

        Returns
        -------
        ``(indices, values)`` of shape ``[len(ids), W_side]`` using the
        same *global* feature indices as :meth:`encode`, so embeddings
        looked up from the half encoding match the full encoding.
        """
        if side not in (USER_FIELD, ITEM_FIELD):
            raise ValueError(f"side must be 'user' or 'item', got {side!r}")
        ids = np.asarray(ids, dtype=np.int64)
        space = self.feature_space
        own_attrs = self.user_attrs if side == USER_FIELD else self.item_attrs
        fields = [f for f in space.fields
                  if f.name == side or f.name in own_attrs]
        width = sum(f.slots for f in fields)
        indices = np.zeros((ids.shape[0], width), dtype=np.int64)
        values = np.zeros((ids.shape[0], width), dtype=np.float64)
        start = 0
        for field in fields:
            stop = start + field.slots
            offset = space.offset(field.name)
            if field.name == side:
                indices[:, start] = offset + ids
                values[:, start] = 1.0
            else:
                idx, val = own_attrs[field.name]
                indices[:, start:stop] = offset + idx[ids]
                values[:, start:stop] = val[ids]
            start = stop
        return indices, values

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def select_fields(self, attr_names: list[str]) -> "RecDataset":
        """Return a view keeping only the named side-attribute fields.

        ``user`` and ``item`` are always retained.  Used by the
        attribute-effect study (Table 6): ``select_fields([])`` is the
        paper's "base" configuration.
        """
        unknown = [n for n in attr_names if n not in self.user_attrs and n not in self.item_attrs]
        if unknown:
            raise KeyError(f"unknown attribute fields: {unknown}")
        view = RecDataset(
            name=self.name,
            n_users=self.n_users,
            n_items=self.n_items,
            users=self.users,
            items=self.items,
            timestamps=self.timestamps,
            user_attrs={k: v for k, v in self.user_attrs.items() if k in attr_names},
            item_attrs={k: v for k, v in self.item_attrs.items() if k in attr_names},
        )
        return view

    def subset(self, index: np.ndarray, name_suffix: str = "") -> "RecDataset":
        """Return a dataset containing only the selected interactions."""
        return RecDataset(
            name=self.name + name_suffix,
            n_users=self.n_users,
            n_items=self.n_items,
            users=self.users[index],
            items=self.items[index],
            timestamps=self.timestamps[index],
            user_attrs=self.user_attrs,
            item_attrs=self.item_attrs,
        )

    # ------------------------------------------------------------------
    # Interaction lookups
    # ------------------------------------------------------------------
    def membership(self) -> UserPositives:
        """The shared sorted-CSR per-user positives structure (cached).

        Negative sampling, seen-item masking
        (:class:`repro.serving.index.TopKIndex`) and
        :meth:`positives_by_user` are all views of this one structure;
        see :mod:`repro.data.membership` for the layout.
        """
        if self._membership_cache is None:
            self._membership_cache = UserPositives.from_dataset(self)
        return self._membership_cache

    def positives_by_user(self) -> list[set[int]]:
        """Per-user set of interacted items (cached legacy view)."""
        if self._positives_cache is None:
            self._positives_cache = self.membership().to_sets()
        return self._positives_cache

    def interactions_per_user(self) -> np.ndarray:
        """Count of interactions per user id."""
        return np.bincount(self.users, minlength=self.n_users)

    def interactions_per_item(self) -> np.ndarray:
        """Count of interactions per item id."""
        return np.bincount(self.items, minlength=self.n_items)

    def stats(self) -> dict[str, float]:
        """Dataset statistics in the shape of the paper's Table 2."""
        return {
            "users": self.n_users,
            "items": self.n_items,
            "attribute_dim": self.n_features,
            "instances": self.n_interactions,
            "sparsity": self.sparsity(),
        }

    def __getstate__(self) -> dict:
        """Pickle without the derived caches.

        Parallel experiment cells (:mod:`repro.experiments.parallel`)
        ship datasets to worker processes; the membership/positives/
        encoding caches are deterministic functions of the interaction
        arrays, so each worker rebuilds them on demand instead of
        paying to serialize them.
        """
        state = self.__dict__.copy()
        state["_membership_cache"] = None
        state["_positives_cache"] = None
        state["_encoded_cache"] = EncodedCache(
            capacity=self._encoded_cache.capacity,
            max_bytes=self._encoded_cache.max_bytes,
        )
        return state

    def __repr__(self) -> str:
        return (
            f"RecDataset({self.name!r}, users={self.n_users}, items={self.n_items}, "
            f"interactions={self.n_interactions}, n_features={self.n_features})"
        )
