"""Data layer: feature schema, interaction datasets, generators, splits.

The paper's input representation (Section 2.2) concatenates one-hot
attribute blocks into a single sparse vector ``x``.  We represent every
sample compactly as a fixed-width pair of arrays ``(indices, values)``:
``indices[b, s]`` is a global feature index and ``values[b, s]`` its
real value (0 for padding slots), so that all FM-family models compute
only over active features.
"""

from repro.data.schema import FeatureField, FeatureSpace
from repro.data.encoding import ENCODE_CACHE_MAX_ROWS, EncodedCache, instance_key
from repro.data.membership import UserPositives
from repro.data.dataset import RecDataset
from repro.data.synthetic import (
    make_amazon_like,
    make_mercari_like,
    make_movielens_like,
    make_dataset,
    DATASET_BUILDERS,
)
from repro.data.splits import leave_one_out_split, random_split
from repro.data.sampling import NegativeSampler, sample_ranking_candidates
from repro.data.batching import minibatches
from repro.data.streaming import (
    InteractionEvent,
    InteractionLog,
    prequential_split,
    replay_events,
    replay_order,
)

__all__ = [
    "FeatureField",
    "FeatureSpace",
    "ENCODE_CACHE_MAX_ROWS",
    "EncodedCache",
    "instance_key",
    "RecDataset",
    "UserPositives",
    "make_movielens_like",
    "make_amazon_like",
    "make_mercari_like",
    "make_dataset",
    "DATASET_BUILDERS",
    "random_split",
    "leave_one_out_split",
    "NegativeSampler",
    "sample_ranking_candidates",
    "minibatches",
    "InteractionEvent",
    "InteractionLog",
    "prequential_split",
    "replay_events",
    "replay_order",
]
