"""Mini-batch iteration over index arrays."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


def minibatches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    Parameters
    ----------
    n:
        Number of samples.
    batch_size:
        Maximum batch size (the paper fixes 256).
    rng:
        Generator used for shuffling; required when ``shuffle`` is True
        and reproducibility matters.
    shuffle:
        Randomize sample order each pass.
    drop_last:
        Drop a trailing batch smaller than ``batch_size``.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        order = rng.permutation(n)
    else:
        order = np.arange(n)
    for start in range(0, n, batch_size):
        batch = order[start:start + batch_size]
        if drop_last and batch.size < batch_size:
            return
        yield batch
