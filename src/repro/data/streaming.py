"""Streaming interaction ingestion: the online data plane.

The batch pipeline treats the interaction log as frozen arrays on a
:class:`~repro.data.dataset.RecDataset`.  This module makes the log a
living object:

- :class:`InteractionLog` — an append-friendly event store with
  amortized-doubling (chunked) growth, watermarked snapshots back into
  immutable :class:`RecDataset` objects, and range validation at the
  ingestion edge;
- :func:`replay_events` — seeded, deterministic replay of any
  ``RecDataset``'s interactions as an event stream (timestamp order,
  arrival order, or a seeded shuffle), the input side of prequential
  evaluation (:mod:`repro.experiments.streaming`);
- :func:`prequential_split` — the warmup/stream boundary used by
  ``repro replay`` and the streaming benchmark.

Determinism contract: every function here is a pure function of its
arguments plus an explicit ``seed`` — replaying the same dataset with
the same seed yields byte-identical event batches, which is what makes
incremental-update runs reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.dataset import RecDataset

#: Replay orders accepted by :func:`replay_events`.
REPLAY_ORDERS = ("timestamp", "arrival", "shuffled")


@dataclass(frozen=True)
class InteractionEvent:
    """One observed interaction: ``user`` did something with ``item``."""

    user: int
    item: int
    timestamp: int


class InteractionLog:
    """Append-friendly interaction store with chunked growth.

    Interactions live in three parallel ``int64`` arrays that grow by
    capacity doubling, so ``append`` is amortized O(1) and ``extend``
    of a batch is one slice assignment — no per-event Python object
    churn.  Reads (``users``/``items``/``timestamps``) are read-only
    views of the filled prefix, safe to hand to numpy consumers while
    ingestion continues.

    The *watermark* is the number of events ingested so far; it only
    grows.  :meth:`snapshot` freezes the first ``upto`` events (default:
    the current watermark) into an immutable :class:`RecDataset`, so a
    periodic full retrain can train on a consistent prefix while new
    events keep arriving behind it.
    """

    def __init__(self, n_users: int, n_items: int, capacity: int = 1024):
        if n_users <= 0 or n_items <= 0:
            raise ValueError("n_users and n_items must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self._users = np.empty(capacity, dtype=np.int64)
        self._items = np.empty(capacity, dtype=np.int64)
        self._timestamps = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._max_time = -1

    @classmethod
    def from_dataset(cls, dataset: RecDataset, capacity: int = 1024) -> "InteractionLog":
        """Seed a log with a dataset's existing interactions."""
        log = cls(dataset.n_users, dataset.n_items,
                  capacity=max(capacity, dataset.n_interactions, 1))
        log.extend(dataset.users, dataset.items, dataset.timestamps)
        return log

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def watermark(self) -> int:
        """Events ingested so far (monotonically increasing)."""
        return self._size

    @property
    def capacity(self) -> int:
        """Allocated event slots (grows by doubling, never shrinks)."""
        return self._users.size

    def _view(self, array: np.ndarray) -> np.ndarray:
        view = array[:self._size]
        view.flags.writeable = False
        return view

    @property
    def users(self) -> np.ndarray:
        """Read-only ``int64 [watermark]`` user ids in arrival order."""
        return self._view(self._users)

    @property
    def items(self) -> np.ndarray:
        """Read-only ``int64 [watermark]`` item ids in arrival order."""
        return self._view(self._items)

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only ``int64 [watermark]`` event timestamps."""
        return self._view(self._timestamps)

    # ------------------------------------------------------------------
    def _grow_to(self, needed: int) -> None:
        capacity = self._users.size
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_users", "_items", "_timestamps"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=np.int64)
            new[:self._size] = old[:self._size]
            setattr(self, name, new)

    def append(self, user: int, item: int,
               timestamp: Optional[int] = None) -> InteractionEvent:
        """Ingest one event; a missing timestamp continues the clock.

        Auto-assigned timestamps are ``max(existing) + 1`` so replaying
        the log in timestamp order preserves arrival order.
        """
        event = self.extend([user], [item],
                            None if timestamp is None else [timestamp])
        return InteractionEvent(int(user), int(item), int(event[0]))

    def extend(
        self,
        users: np.ndarray,
        items: np.ndarray,
        timestamps: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Ingest a batch of events; returns the assigned timestamps."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be parallel 1-d arrays")
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise ValueError("user id out of range")
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise ValueError("item id out of range")
        if timestamps is None:
            timestamps = self._max_time + 1 + np.arange(users.size,
                                                        dtype=np.int64)
        else:
            timestamps = np.asarray(timestamps, dtype=np.int64)
            if timestamps.shape != users.shape:
                raise ValueError("timestamps must parallel the events")
        if users.size == 0:
            return timestamps
        self._grow_to(self._size + users.size)
        stop = self._size + users.size
        self._users[self._size:stop] = users
        self._items[self._size:stop] = items
        self._timestamps[self._size:stop] = timestamps
        self._size = stop
        self._max_time = max(self._max_time, int(timestamps.max()))
        return timestamps

    # ------------------------------------------------------------------
    def snapshot(self, upto: Optional[int] = None, name: str = "stream") -> RecDataset:
        """Freeze the first ``upto`` events into an immutable dataset.

        ``upto`` defaults to the current watermark; the snapshot's name
        records it (``"<name>@<upto>"``) so artifacts built from
        different watermarks are distinguishable.  The arrays are
        copied: later ingestion never mutates a snapshot.
        """
        upto = self._size if upto is None else int(upto)
        if not 0 <= upto <= self._size:
            raise ValueError(
                f"snapshot watermark {upto} outside [0, {self._size}]")
        return RecDataset(
            name=f"{name}@{upto}",
            n_users=self.n_users,
            n_items=self.n_items,
            users=self._users[:upto].copy(),
            items=self._items[:upto].copy(),
            timestamps=self._timestamps[:upto].copy(),
        )

    def __repr__(self) -> str:
        return (f"InteractionLog(users={self.n_users}, items={self.n_items}, "
                f"watermark={self._size}, capacity={self.capacity})")


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay_order(
    dataset: RecDataset,
    order: str = "timestamp",
    seed: int = 0,
) -> np.ndarray:
    """Deterministic replay permutation of a dataset's interactions.

    - ``"timestamp"`` — stable sort by event time (ties keep arrival
      order), the prequential default;
    - ``"arrival"`` — the log's own storage order;
    - ``"shuffled"`` — a seeded uniform permutation.
    """
    if order not in REPLAY_ORDERS:
        raise ValueError(f"unknown order {order!r}; options: {REPLAY_ORDERS}")
    n = dataset.n_interactions
    if order == "timestamp":
        return np.argsort(dataset.timestamps, kind="stable")
    if order == "arrival":
        return np.arange(n, dtype=np.int64)
    return np.random.default_rng(seed).permutation(n)


def replay_events(
    dataset: RecDataset,
    batch_size: int = 1,
    order: str = "timestamp",
    seed: int = 0,
    start: int = 0,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Replay a dataset's interactions as seeded event batches.

    Yields ``(users, items, timestamps)`` array triples of at most
    ``batch_size`` events, skipping the first ``start`` events of the
    chosen order.  A fixed ``(dataset, order, seed, start)`` yields a
    byte-identical batch sequence on every call — the foundation of the
    reproducible prequential sweeps in
    :mod:`repro.experiments.streaming`.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    index = replay_order(dataset, order=order, seed=seed)
    if not 0 <= start <= index.size:
        raise ValueError(f"start {start} outside [0, {index.size}]")
    for begin in range(start, index.size, batch_size):
        batch = index[begin:begin + batch_size]
        yield (dataset.users[batch], dataset.items[batch],
               dataset.timestamps[batch])


def prequential_split(
    dataset: RecDataset,
    warmup_frac: float = 0.8,
    order: str = "timestamp",
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Split a replay order into warmup and stream index arrays.

    The first ``warmup_frac`` of events (in replay order) trains the
    initial model offline; the remainder streams through
    evaluate-then-train.  Returns ``(warmup_index, stream_index)``
    index arrays into the dataset's interaction arrays.
    """
    if not 0.0 <= warmup_frac <= 1.0:
        raise ValueError("warmup_frac must be in [0, 1]")
    index = replay_order(dataset, order=order, seed=seed)
    n_warmup = int(round(warmup_frac * index.size))
    return index[:n_warmup], index[n_warmup:]
