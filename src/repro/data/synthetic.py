"""Synthetic dataset generators standing in for the paper's corpora.

The paper evaluates on Amazon 5-core categories, MovieLens-1M and the
proprietary Mercari second-hand-trading dataset.  None can be downloaded
in this offline environment (and Mercari was never released), so this
module generates implicit-feedback datasets whose *generative structure*
matches the properties each experiment relies on:

- a metric-structured ground truth: user/item affinity is a negative
  **Mahalanobis** distance between latent vectors, with a non-diagonal
  metric — i.e. the latent features are linearly correlated exactly as
  in the paper's Figure 1(a);
- optionally a **non-linear warp** of the latents (Figure 1(b)) for the
  datasets where the paper observes GML-FM(dnn) > GML-FM(md);
- informative side attributes derived from the latent cluster structure,
  with a per-attribute informativeness dial (the Mercari "condition"
  attribute is built weakly informative and "shipping" strongly
  informative, matching the finding of Table 6);
- long-tail (Zipf) item popularity and 5-core style per-user minimum
  interaction counts;
- per-dataset sparsity levels ordered as in the paper's Table 2
  (MovieLens dense → Amazon sparse → Mercari extremely sparse).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.dataset import RecDataset

LATENT_DIM = 8


def _stable_key(name: str) -> int:
    """Process-independent per-name seed offset.

    ``hash(str)`` is salted per interpreter process (PYTHONHASHSEED),
    which silently made every "seeded" dataset differ between runs —
    and made run-to-run results irreproducible.  CRC32 is stable across
    processes and platforms.
    """
    return zlib.crc32(name.encode("utf-8")) % 10_000


# ----------------------------------------------------------------------
# Latent-structure helpers
# ----------------------------------------------------------------------
def _zipf_popularity(n_items: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity distribution over a random item permutation."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    rng.shuffle(weights)
    return weights / weights.sum()


def _correlated_metric(dim: int, rng: np.random.Generator, strength: float = 0.6) -> np.ndarray:
    """A positive-definite, non-diagonal metric M* = LᵀL + εI.

    The off-diagonal mass of ``M*`` is what makes the latent features
    linearly correlated, so that a learned Mahalanobis distance has an
    advantage over plain Euclidean.
    """
    base = np.eye(dim)
    mix = rng.normal(0.0, strength, size=(dim, dim))
    factor = base + mix
    return factor.T @ factor + 0.05 * np.eye(dim)


def _cluster_latents(
    count: int,
    centroids: np.ndarray,
    spread: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample latent vectors around *shared* cluster centroids.

    Users and items must be drawn around the same centroid set so that a
    user's cluster determines which item clusters sit nearby — this is
    the correspondence every recommender is supposed to learn.  Returns
    the latents ``[count, LATENT_DIM]`` and each entity's cluster id
    (reused to derive informative attributes).
    """
    n_clusters = centroids.shape[0]
    assignment = rng.integers(0, n_clusters, size=count)
    latents = centroids[assignment] + rng.normal(0.0, spread, size=(count, LATENT_DIM))
    return latents, assignment


def _nonlinear_warp(latents: np.ndarray, mix: np.ndarray) -> np.ndarray:
    """Apply a smooth non-linear mixing of latent features (Fig. 1(b)).

    The same mixing matrix must warp users and items, otherwise the
    user/item geometry is destroyed rather than bent.
    """
    warped = np.tanh(latents @ mix)
    norms = np.linalg.norm(warped, axis=1, keepdims=True).clip(min=1e-9)
    return warped * np.sqrt(LATENT_DIM) / norms


def _attribute_from_clusters(
    clusters: np.ndarray,
    cardinality: int,
    informativeness: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Derive a categorical attribute correlated with the cluster id.

    ``informativeness`` in [0, 1]: probability that the attribute value
    reflects the cluster rather than uniform noise.
    """
    n = clusters.shape[0]
    mapped = clusters % cardinality
    noise = rng.integers(0, cardinality, size=n)
    keep = rng.random(n) < informativeness
    return np.where(keep, mapped, noise).astype(np.int64)


def _single_slot(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Package a categorical attribute column as (indices, values) arrays."""
    idx = values.reshape(-1, 1).astype(np.int64)
    val = np.ones_like(idx, dtype=np.float64)
    return idx, val


def _multi_hot(
    primary: np.ndarray,
    cardinality: int,
    max_slots: int,
    extra_prob: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Multi-hot attribute: a primary value plus random extras.

    Padding slots use index 0 with value 0 — every model multiplies by
    the value, so padding contributes nothing.
    """
    n = primary.shape[0]
    idx = np.zeros((n, max_slots), dtype=np.int64)
    val = np.zeros((n, max_slots), dtype=np.float64)
    idx[:, 0] = primary
    val[:, 0] = 1.0
    for slot in range(1, max_slots):
        active = rng.random(n) < extra_prob
        extras = rng.integers(0, cardinality, size=n)
        idx[:, slot] = np.where(active, extras, 0)
        val[:, slot] = np.where(active, 1.0, 0.0)
    return idx, val


# ----------------------------------------------------------------------
# Interaction generation
# ----------------------------------------------------------------------
def _draw_interaction_counts(
    n_users: int,
    mean_per_user: float,
    min_per_user: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-user interaction counts: long-tailed, at least ``min_per_user``."""
    raw = rng.lognormal(mean=np.log(max(mean_per_user - min_per_user, 0.5)), sigma=0.6, size=n_users)
    return (min_per_user + raw).astype(np.int64)


def _generate_interactions(
    user_latents: np.ndarray,
    item_effective: np.ndarray,
    metric: np.ndarray,
    popularity: np.ndarray,
    counts: np.ndarray,
    temperature: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample positive interactions per user.

    For every user we draw a popularity-weighted candidate pool, score
    candidates with the negative Mahalanobis distance to the user latent
    plus Gumbel noise (a Plackett–Luce style choice model), and keep the
    user's ``counts[u]`` best items.  Timestamps interleave a per-user
    start offset with within-user order so that leave-one-out and the
    cold-start grouping both behave like real logs.
    """
    n_users = user_latents.shape[0]
    n_items = item_effective.shape[0]
    users_out: list[np.ndarray] = []
    items_out: list[np.ndarray] = []
    times_out: list[np.ndarray] = []
    start_times = rng.integers(0, 1_000_000, size=n_users)

    for u in range(n_users):
        n_u = min(int(counts[u]), n_items)
        pool_size = min(n_items, max(20 * n_u, 120))
        if pool_size >= n_items:
            pool = np.arange(n_items)
        else:
            pool = rng.choice(n_items, size=pool_size, replace=False, p=popularity)
        diff = item_effective[pool] - user_latents[u]
        affinity = -np.einsum("ij,jk,ik->i", diff, metric, diff)
        gumbel = rng.gumbel(0.0, temperature, size=pool.shape[0])
        chosen = pool[np.argsort(-(affinity + gumbel))[:n_u]]
        order = rng.permutation(n_u)
        users_out.append(np.full(n_u, u, dtype=np.int64))
        items_out.append(chosen[order])
        times_out.append(start_times[u] + np.arange(n_u, dtype=np.int64))

    return (
        np.concatenate(users_out),
        np.concatenate(items_out),
        np.concatenate(times_out),
    )


# ----------------------------------------------------------------------
# Generator configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs shared by all three dataset families."""

    n_users: int
    n_items: int
    mean_per_user: float
    min_per_user: int
    n_clusters: int
    cluster_spread: float
    zipf_alpha: float
    temperature: float
    nonlinear: bool


def _build_latent_world(config: SyntheticConfig, rng: np.random.Generator):
    """Sample everything the interaction generator needs."""
    centroids = rng.normal(0.0, 1.0, size=(config.n_clusters, LATENT_DIM))
    user_latents, user_clusters = _cluster_latents(
        config.n_users, centroids, config.cluster_spread, rng
    )
    item_latents, item_clusters = _cluster_latents(
        config.n_items, centroids, config.cluster_spread, rng
    )
    if config.nonlinear:
        mix = rng.normal(0.0, 0.8, size=(LATENT_DIM, LATENT_DIM))
        item_effective = _nonlinear_warp(item_latents, mix)
        user_effective = _nonlinear_warp(user_latents, mix)
    else:
        item_effective = item_latents
        user_effective = user_latents
    metric = _correlated_metric(LATENT_DIM, rng)
    popularity = _zipf_popularity(config.n_items, config.zipf_alpha, rng)
    counts = _draw_interaction_counts(
        config.n_users, config.mean_per_user, config.min_per_user, rng
    )
    return user_effective, item_effective, user_clusters, item_clusters, metric, popularity, counts


# ----------------------------------------------------------------------
# Public dataset builders
# ----------------------------------------------------------------------
def make_movielens_like(
    n_users: int = 600,
    n_items: int = 400,
    mean_per_user: float = 18.0,
    seed: int = 0,
) -> RecDataset:
    """MovieLens-style dataset: dense, rich user and item attributes.

    Attributes mirror ML-1M: user gender (2), age bracket (7),
    occupation (21); item genres (18, multi-hot up to 3 slots).
    """
    rng = np.random.default_rng(seed)
    config = SyntheticConfig(
        n_users=n_users,
        n_items=n_items,
        mean_per_user=mean_per_user,
        min_per_user=5,
        n_clusters=10,
        cluster_spread=0.35,
        zipf_alpha=0.9,
        temperature=0.6,
        nonlinear=False,
    )
    users_l, items_l, user_c, item_c, metric, pop, counts = _build_latent_world(config, rng)
    users, items, times = _generate_interactions(
        users_l, items_l, metric, pop, counts, config.temperature, rng
    )
    genres_primary = _attribute_from_clusters(item_c, 18, 0.8, rng)
    return RecDataset(
        name="movielens",
        n_users=n_users,
        n_items=n_items,
        users=users,
        items=items,
        timestamps=times,
        user_attrs={
            "gender": _single_slot(_attribute_from_clusters(user_c, 2, 0.55, rng)),
            "age": _single_slot(_attribute_from_clusters(user_c, 7, 0.6, rng)),
            "occupation": _single_slot(_attribute_from_clusters(user_c, 21, 0.55, rng)),
        },
        item_attrs={
            "genre": _multi_hot(genres_primary, 18, max_slots=3, extra_prob=0.35, rng=rng),
        },
    )


_AMAZON_PRESETS = {
    # name: (users, items, mean/user, subcategories, nonlinear)
    "auto": (300, 600, 7.0, 12, False),
    "office": (450, 700, 11.0, 16, False),
    "clothing": (900, 2200, 7.0, 24, True),
}


def make_amazon_like(category: str = "auto", seed: int = 0, scale: float = 1.0) -> RecDataset:
    """Amazon 5-core style dataset with a sub-category attribute."""
    if category not in _AMAZON_PRESETS:
        raise ValueError(f"unknown amazon category {category!r}; options: {sorted(_AMAZON_PRESETS)}")
    n_users, n_items, per_user, n_subcats, nonlinear = _AMAZON_PRESETS[category]
    n_users = max(20, int(n_users * scale))
    n_items = max(30, int(n_items * scale))
    rng = np.random.default_rng(seed + _stable_key(category))
    config = SyntheticConfig(
        n_users=n_users,
        n_items=n_items,
        mean_per_user=per_user,
        min_per_user=5,
        n_clusters=n_subcats,
        cluster_spread=0.35,
        zipf_alpha=1.0,
        temperature=0.6,
        nonlinear=nonlinear,
    )
    users_l, items_l, _user_c, item_c, metric, pop, counts = _build_latent_world(config, rng)
    users, items, times = _generate_interactions(
        users_l, items_l, metric, pop, counts, config.temperature, rng
    )
    return RecDataset(
        name=f"amazon-{category}",
        n_users=n_users,
        n_items=n_items,
        users=users,
        items=items,
        timestamps=times,
        item_attrs={
            "subcategory": _single_slot(_attribute_from_clusters(item_c, n_subcats, 0.85, rng)),
        },
    )


_MERCARI_PRESETS = {
    # name: (users, items, mean/user, categories)
    "ticket": (350, 3000, 9.0, 20),
    "books": (500, 6000, 10.0, 30),
}


def make_mercari_like(category: str = "ticket", seed: int = 0, scale: float = 1.0) -> RecDataset:
    """Mercari-style second-hand trading dataset (extremely sparse).

    Item attributes: category (strongly informative), condition (weakly
    informative — the paper finds it non-discriminative in Table 6),
    shipping method / origin / duration (informative).
    """
    if category not in _MERCARI_PRESETS:
        raise ValueError(f"unknown mercari category {category!r}; options: {sorted(_MERCARI_PRESETS)}")
    n_users, n_items, per_user, n_cats = _MERCARI_PRESETS[category]
    n_users = max(20, int(n_users * scale))
    n_items = max(50, int(n_items * scale))
    # The "v2:" tag pins a draw where the designed attribute structure
    # (condition weakly informative, shipping strongly) is visible at
    # quick scale; bump it if the generator changes.
    rng = np.random.default_rng(seed + 7 + _stable_key("v2:" + category))
    config = SyntheticConfig(
        n_users=n_users,
        n_items=n_items,
        mean_per_user=per_user,
        min_per_user=5,
        n_clusters=n_cats,
        cluster_spread=0.3,
        zipf_alpha=0.6,
        temperature=0.5,
        nonlinear=True,
    )
    users_l, items_l, _user_c, item_c, metric, pop, counts = _build_latent_world(config, rng)
    users, items, times = _generate_interactions(
        users_l, items_l, metric, pop, counts, config.temperature, rng
    )
    # Shipping attributes share a second latent grouping so that method,
    # origin and duration are mutually correlated (the paper notes the
    # shipping method is strongly related to duration and cost).
    shipping_group = rng.integers(0, 6, size=n_items)
    shipping_group = np.where(rng.random(n_items) < 0.8, item_c % 6, shipping_group)
    return RecDataset(
        name=f"mercari-{category}",
        n_users=n_users,
        n_items=n_items,
        users=users,
        items=items,
        timestamps=times,
        item_attrs={
            "category": _single_slot(_attribute_from_clusters(item_c, n_cats, 0.85, rng)),
            "condition": _single_slot(rng.integers(0, 5, size=n_items)),
            "ship_method": _single_slot(_attribute_from_clusters(shipping_group, 6, 0.9, rng)),
            "ship_origin": _single_slot(_attribute_from_clusters(shipping_group, 9, 0.7, rng)),
            "ship_duration": _single_slot(_attribute_from_clusters(shipping_group, 4, 0.8, rng)),
        },
    )


DATASET_BUILDERS: dict[str, Callable[..., RecDataset]] = {
    "movielens": make_movielens_like,
    "amazon-auto": lambda seed=0, scale=1.0: make_amazon_like("auto", seed=seed, scale=scale),
    "amazon-office": lambda seed=0, scale=1.0: make_amazon_like("office", seed=seed, scale=scale),
    "amazon-clothing": lambda seed=0, scale=1.0: make_amazon_like("clothing", seed=seed, scale=scale),
    "mercari-ticket": lambda seed=0, scale=1.0: make_mercari_like("ticket", seed=seed, scale=scale),
    "mercari-books": lambda seed=0, scale=1.0: make_mercari_like("books", seed=seed, scale=scale),
}


def make_dataset(key: str, seed: int = 0, scale: Optional[float] = None) -> RecDataset:
    """Build one of the six benchmark datasets by key.

    Keys: ``movielens``, ``amazon-auto``, ``amazon-office``,
    ``amazon-clothing``, ``mercari-ticket``, ``mercari-books``.
    """
    if key not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {key!r}; options: {sorted(DATASET_BUILDERS)}")
    builder = DATASET_BUILDERS[key]
    if key == "movielens":
        if scale is None:
            return builder(seed=seed)
        return make_movielens_like(
            n_users=max(20, int(600 * scale)),
            n_items=max(30, int(400 * scale)),
            seed=seed,
        )
    if scale is None:
        return builder(seed=seed)
    return builder(seed=seed, scale=scale)
