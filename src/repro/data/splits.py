"""Train / validation / test splitting protocols (paper Section 4.3).

- Rating prediction uses a random 70/20/10 split.
- Top-n recommendation uses leave-one-out: the *latest* interaction of
  each user is the test positive; everything earlier is training data.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RecDataset


def random_split(
    dataset: RecDataset,
    ratios: tuple[float, float, float] = (0.7, 0.2, 0.1),
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split interaction indices randomly into train / validation / test.

    Returns three index arrays into ``dataset``'s interaction arrays.
    """
    if len(ratios) != 3:
        raise ValueError("ratios must have three entries")
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError("ratios must sum to 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_interactions)
    n_train = int(round(ratios[0] * order.size))
    n_valid = int(round(ratios[1] * order.size))
    train = order[:n_train]
    valid = order[n_train:n_train + n_valid]
    test = order[n_train + n_valid:]
    return train, valid, test


def leave_one_out_split(dataset: RecDataset) -> tuple[np.ndarray, np.ndarray]:
    """Hold out each user's latest interaction (by timestamp).

    Users with a single interaction stay entirely in training (they
    cannot be evaluated without any training signal).

    Returns
    -------
    train_index, test_index:
        Index arrays into the dataset's interaction arrays; the test
        array holds at most one row per user.
    """
    users = dataset.users
    times = dataset.timestamps
    n = users.size
    # Lexicographic sort by (user, time); the last row per user is the
    # held-out positive.
    order = np.lexsort((times, users))
    sorted_users = users[order]
    is_last = np.ones(n, dtype=bool)
    is_last[:-1] = sorted_users[:-1] != sorted_users[1:]
    counts = np.bincount(users, minlength=dataset.n_users)
    eligible = counts[sorted_users] >= 2
    test_mask_sorted = is_last & eligible
    test_index = order[test_mask_sorted]
    train_index = order[~test_mask_sorted]
    return np.sort(train_index), np.sort(test_index)
