"""Loader for the real MovieLens-1M files (optional).

This offline environment cannot download ML-1M, so the benchmark suite
uses :func:`repro.data.synthetic.make_movielens_like`.  Users who have
the GroupLens files locally (``ratings.dat``, ``users.dat``,
``movies.dat`` with ``::`` separators) can load the real dataset into
the same :class:`~repro.data.dataset.RecDataset` container with this
module and re-run every experiment unchanged.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.dataset import RecDataset

GENRES = [
    "Action", "Adventure", "Animation", "Children's", "Comedy", "Crime",
    "Documentary", "Drama", "Fantasy", "Film-Noir", "Horror", "Musical",
    "Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
]

AGE_BRACKETS = [1, 18, 25, 35, 45, 50, 56]

MAX_GENRE_SLOTS = 3


def load_movielens_1m(directory: str, min_rating: float = 4.0) -> RecDataset:
    """Load ML-1M as an implicit-feedback :class:`RecDataset`.

    Ratings of at least ``min_rating`` become positive interactions
    (the standard implicit-feedback conversion).  User gender, age and
    occupation plus item genres populate the attribute fields, matching
    the paper's MovieLens setup.
    """
    ratings_path = os.path.join(directory, "ratings.dat")
    users_path = os.path.join(directory, "users.dat")
    movies_path = os.path.join(directory, "movies.dat")
    for path in (ratings_path, users_path, movies_path):
        if not os.path.exists(path):
            raise FileNotFoundError(f"MovieLens file missing: {path}")

    raw_users: list[tuple[int, int, int, int]] = []
    with open(users_path, encoding="latin-1") as handle:
        for line in handle:
            uid, gender, age, occupation, _zip = line.strip().split("::")
            raw_users.append(
                (int(uid), 0 if gender == "F" else 1,
                 AGE_BRACKETS.index(int(age)), int(occupation))
            )

    raw_movies: dict[int, list[int]] = {}
    with open(movies_path, encoding="latin-1") as handle:
        for line in handle:
            mid, _title, genres = line.strip().split("::")
            raw_movies[int(mid)] = [
                GENRES.index(g) for g in genres.split("|") if g in GENRES
            ]

    rows: list[tuple[int, int, int]] = []
    with open(ratings_path, encoding="latin-1") as handle:
        for line in handle:
            uid, mid, rating, timestamp = line.strip().split("::")
            if float(rating) >= min_rating:
                rows.append((int(uid), int(mid), int(timestamp)))

    user_ids = sorted({r[0] for r in rows})
    item_ids = sorted({r[1] for r in rows})
    user_map = {raw: new for new, raw in enumerate(user_ids)}
    item_map = {raw: new for new, raw in enumerate(item_ids)}

    users = np.array([user_map[r[0]] for r in rows], dtype=np.int64)
    items = np.array([item_map[r[1]] for r in rows], dtype=np.int64)
    times = np.array([r[2] for r in rows], dtype=np.int64)

    n_users, n_items = len(user_ids), len(item_ids)
    gender = np.zeros(n_users, dtype=np.int64)
    age = np.zeros(n_users, dtype=np.int64)
    occupation = np.zeros(n_users, dtype=np.int64)
    for uid, g, a, o in raw_users:
        if uid in user_map:
            new = user_map[uid]
            gender[new], age[new], occupation[new] = g, a, o

    genre_idx = np.zeros((n_items, MAX_GENRE_SLOTS), dtype=np.int64)
    genre_val = np.zeros((n_items, MAX_GENRE_SLOTS), dtype=np.float64)
    for mid, genre_list in raw_movies.items():
        if mid in item_map:
            new = item_map[mid]
            for slot, genre in enumerate(genre_list[:MAX_GENRE_SLOTS]):
                genre_idx[new, slot] = genre
                genre_val[new, slot] = 1.0

    def single(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return column.reshape(-1, 1), np.ones((column.size, 1))

    return RecDataset(
        name="movielens-1m",
        n_users=n_users,
        n_items=n_items,
        users=users,
        items=items,
        timestamps=times,
        user_attrs={
            "gender": single(gender),
            "age": single(age),
            "occupation": single(occupation),
        },
        item_attrs={"genre": (genre_idx, genre_val)},
    )
