"""Cold-start grouping and evaluation (paper Figure 4, RQ5).

Following MAMO's protocol (which the paper reuses), users are split into
warm/cold by the time of their first interaction and items by how often
they were interacted with, giving four scenarios:

- W-W: existing users, existing items
- W-C: existing users, cold items
- C-W: cold users, existing items
- C-C: cold users, cold items

The figure plots test RMSE against the number of training interactions
available for the tested user (1–15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import RecDataset
from repro.training.metrics import rmse

SCENARIOS = ("W-W", "W-C", "C-W", "C-C")


@dataclass
class ColdStartGroups:
    """Warm/cold masks over users and items."""

    warm_users: np.ndarray   # bool [n_users]
    warm_items: np.ndarray   # bool [n_items]

    def scenario_mask(self, scenario: str, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Boolean mask selecting (user, item) rows of one scenario."""
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; options: {SCENARIOS}")
        user_warm = self.warm_users[users]
        item_warm = self.warm_items[items]
        wants_warm_user = scenario[0] == "W"
        wants_warm_item = scenario[2] == "W"
        return (user_warm == wants_warm_user) & (item_warm == wants_warm_item)


def group_cold_start(
    dataset: RecDataset,
    user_quantile: float = 0.5,
    item_min_interactions: int = 5,
) -> ColdStartGroups:
    """Group users by first-interaction time and items by frequency.

    Users whose first interaction falls in the earliest
    ``user_quantile`` fraction are *warm* (long-standing accounts);
    items with at least ``item_min_interactions`` are *warm*.
    """
    first_time = np.full(dataset.n_users, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first_time, dataset.users, dataset.timestamps)
    observed = first_time < np.iinfo(np.int64).max
    threshold = np.quantile(first_time[observed], user_quantile)
    warm_users = observed & (first_time <= threshold)
    warm_items = dataset.interactions_per_item() >= item_min_interactions
    return ColdStartGroups(warm_users=warm_users, warm_items=warm_items)


def cold_start_rmse_curve(
    predict: Callable[[np.ndarray, np.ndarray], np.ndarray],
    test_users: np.ndarray,
    test_items: np.ndarray,
    test_labels: np.ndarray,
    train_counts: np.ndarray,
    max_interactions: int = 15,
) -> dict[int, float]:
    """RMSE versus the tested user's number of training interactions.

    ``train_counts[u]`` is how many interactions of user ``u`` are in
    the training split.  Buckets with no test rows are omitted.
    """
    curve: dict[int, float] = {}
    counts = train_counts[test_users]
    predictions = predict(test_users, test_items)
    for n in range(1, max_interactions + 1):
        mask = counts == n
        if mask.sum() == 0:
            continue
        curve[n] = rmse(predictions[mask], test_labels[mask])
    return curve
