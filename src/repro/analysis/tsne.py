"""Exact t-SNE (van der Maaten & Hinton 2008) in numpy.

Used to 2-D project item embeddings for the case study of the paper's
Figures 5–6.  The implementation is the exact O(N²) algorithm with
perplexity calibration via bisection, early exaggeration and momentum
gradient descent — entirely sufficient for the few hundred points the
figures visualize (scikit-learn is unavailable in this environment).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    sq = (x * x).sum(axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _conditional_probabilities(distances: np.ndarray, perplexity: float,
                               tol: float = 1e-5, max_iter: int = 50) -> np.ndarray:
    """Row-wise Gaussian kernels calibrated to the target perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(max_iter):
            kernel = np.exp(-row * beta)
            total = kernel.sum()
            if total <= 0:
                prob = np.full_like(row, 1.0 / row.size)
            else:
                prob = kernel / total
            entropy = -(prob * np.log(np.maximum(prob, 1e-12))).sum()
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = (beta + beta_low) / 2.0
        p[i, np.arange(n) != i] = prob
    return p


class TSNE:
    """Exact t-SNE with sensible defaults for small embedding sets.

    Parameters mirror the common API: ``n_components`` (fixed to 2 here),
    ``perplexity``, ``learning_rate``, ``n_iter`` and ``seed``.
    """

    def __init__(self, perplexity: float = 20.0, learning_rate: float = 100.0,
                 n_iter: int = 400, early_exaggeration: float = 6.0,
                 seed: int = 0):
        if perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if n_iter < 50:
            raise ValueError("n_iter too small for a meaningful layout")
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.early_exaggeration = early_exaggeration
        self.seed = seed
        self.kl_history_: list[float] = []

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Project ``x [N, d]`` to 2-D."""
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n < 5:
            raise ValueError("need at least 5 points")
        perplexity = min(self.perplexity, (n - 1) / 3.0)
        rng = np.random.default_rng(self.seed)

        distances = _pairwise_squared_distances(x)
        p_conditional = _conditional_probabilities(distances, perplexity)
        p = (p_conditional + p_conditional.T) / (2.0 * n)
        p = np.maximum(p, 1e-12)

        y = rng.normal(0.0, 1e-4, size=(n, 2))
        velocity = np.zeros_like(y)
        self.kl_history_ = []
        exaggeration_end = min(100, self.n_iter // 4)

        for iteration in range(self.n_iter):
            scale = self.early_exaggeration if iteration < exaggeration_end else 1.0
            momentum = 0.5 if iteration < exaggeration_end else 0.8

            d_low = _pairwise_squared_distances(y)
            q_num = 1.0 / (1.0 + d_low)
            np.fill_diagonal(q_num, 0.0)
            q = np.maximum(q_num / q_num.sum(), 1e-12)

            pq = (scale * p - q) * q_num
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

            velocity = momentum * velocity - self.learning_rate * grad
            y = y + velocity
            y = y - y.mean(axis=0)

            if iteration % 50 == 0 or iteration == self.n_iter - 1:
                kl = float((p * np.log(p / q)).sum())
                self.kl_history_.append(kl)
        return y
