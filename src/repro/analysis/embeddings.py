"""Embedding case study (paper Figures 5–6, RQ6).

The paper t-SNE-projects, for a chosen user, the embeddings of the items
the user interacted with (positives) and an equal number of random
non-interacted items (negatives), and observes that metric-learning
based FMs cluster the positives while inner-product FMs do not.

As a figure cannot be diffed in CI, this module also quantifies the
visual claim with a *cluster-separation score*: the silhouette-style
statistic of positive vs negative groups in the 2-D projection (higher
means the positives form a tighter, better separated cluster).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tsne import TSNE
from repro.data.dataset import RecDataset


def cluster_separation(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient of the binary labelling.

    For each point: ``(b − a) / max(a, b)`` with ``a`` the mean distance
    to its own group and ``b`` to the other group.  Ranges in [-1, 1].
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if points.shape[0] != labels.shape[0]:
        raise ValueError("points and labels must be parallel")
    if labels.all() or (~labels).all():
        raise ValueError("need both positive and negative points")
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diff * diff).sum(axis=-1))
    scores = np.empty(points.shape[0])
    for index in range(points.shape[0]):
        same = labels == labels[index]
        same[index] = False
        a = distances[index, same].mean() if same.any() else 0.0
        b = distances[index, ~same & (np.arange(points.shape[0]) != index)].mean()
        scores[index] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


@dataclass
class EmbeddingCaseStudy:
    """Result of one user's item-embedding projection."""

    user: int
    projection: np.ndarray      # [2m, 2]
    labels: np.ndarray          # [2m] True = positive item
    separation: float


def item_embedding_case_study(
    model,
    dataset: RecDataset,
    user: int,
    max_items: int = 60,
    seed: int = 0,
    tsne_iterations: int = 300,
    use_transform: bool = True,
) -> EmbeddingCaseStudy:
    """Project a user's positive/negative item embeddings to 2-D.

    ``model`` must expose ``item_embeddings(item_ids, offset)`` (FM,
    NFM, TransFM and GML-FM all do); ``offset`` locates the item-id
    block inside the global feature space.

    When ``use_transform`` is set and the model carries a feature
    transform (GML-FM's ``v̂ = φ(v)``), the *transformed* embeddings are
    projected — that is the space in which GML-FM's metric operates, so
    it is where its clustering is expected to appear.
    """
    positives = sorted(dataset.positives_by_user()[user])
    if len(positives) < 5:
        raise ValueError(f"user {user} has too few interactions for the case study")
    rng = np.random.default_rng(seed)
    positives = np.asarray(positives[:max_items])
    pool = np.setdiff1d(np.arange(dataset.n_items), positives)
    negatives = rng.choice(pool, size=positives.size, replace=False)

    offset = dataset.feature_space.offset("item")
    item_ids = np.concatenate([positives, negatives])
    vectors = model.item_embeddings(item_ids, offset)
    if use_transform and hasattr(model, "transform"):
        from repro.autograd.tensor import Tensor, no_grad

        was_training = getattr(model, "training", False)
        if hasattr(model, "eval"):
            model.eval()
        with no_grad():
            vectors = model.transform(Tensor(vectors)).data
        if was_training and hasattr(model, "train"):
            model.train()
    labels = np.concatenate([
        np.ones(positives.size, dtype=bool),
        np.zeros(negatives.size, dtype=bool),
    ])

    projection = TSNE(n_iter=tsne_iterations, seed=seed).fit_transform(vectors)
    return EmbeddingCaseStudy(
        user=user,
        projection=projection,
        labels=labels,
        separation=cluster_separation(projection, labels),
    )
