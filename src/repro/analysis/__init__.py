"""Analysis utilities: t-SNE projection, embedding-cluster statistics
and cold-start user/item grouping (paper Sections 5.5–5.6)."""

from repro.analysis.tsne import TSNE
from repro.analysis.embeddings import (
    EmbeddingCaseStudy,
    cluster_separation,
    item_embedding_case_study,
)
from repro.analysis.cold_start import ColdStartGroups, group_cold_start, cold_start_rmse_curve

__all__ = [
    "TSNE",
    "cluster_separation",
    "item_embedding_case_study",
    "EmbeddingCaseStudy",
    "ColdStartGroups",
    "group_cold_start",
    "cold_start_rmse_curve",
]
