"""Neural Collaborative Filtering / NeuMF (He et al. 2017).

Combines a GMF branch (element-wise product of user/item embeddings)
with an MLP branch over their concatenation; the fused vector feeds a
final linear prediction unit.  Point-wise learning to rank.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.models.base import EntityRecommender


class NCF(EntityRecommender):
    """NeuMF with separate GMF and MLP embedding tables."""

    def __init__(self, n_users: int, n_items: int, k: int = 32,
                 hidden: Optional[list[int]] = None, dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(n_users, n_items)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.gmf_user = nn.Embedding(n_users, k, std=0.01, rng=rng)
        self.gmf_item = nn.Embedding(n_items, k, std=0.01, rng=rng)
        self.mlp_user = nn.Embedding(n_users, k, std=0.01, rng=rng)
        self.mlp_item = nn.Embedding(n_items, k, std=0.01, rng=rng)
        hidden = hidden if hidden is not None else [64, 32]
        self.mlp = nn.make_mlp([2 * k] + hidden, activation="relu",
                               dropout=dropout, rng=rng)
        self.head = nn.Linear(k + hidden[-1], 1, rng=rng)

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = self.gmf_user(users) * self.gmf_item(items)
        mlp_in = ops.concatenate([self.mlp_user(users), self.mlp_item(items)], axis=-1)
        mlp_out = self.mlp(mlp_in)
        fused = ops.concatenate([gmf, mlp_out], axis=-1)
        return self.head(fused).squeeze(-1)
