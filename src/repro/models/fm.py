"""Vanilla Factorization Machine (Rendle 2010) — the LibFM baseline.

    ŷ(x) = w₀ + Σᵢ wᵢxᵢ + Σ_{i<j} ⟨v_i, v_j⟩ x_i x_j

computed with the classic O(k·n) identity
``Σ_{i<j}⟨v_i,v_j⟩x_ix_j = ½Σ_k[(Σᵢ v_{ik}x_i)² − Σᵢ v_{ik}²x_i²]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender


class FactorizationMachine(FeatureRecommender):
    """Second-order FM over the sparse feature encoding."""

    def __init__(self, dataset: RecDataset, k: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(dataset)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.embeddings = nn.Embedding(self.n_features, k, std=0.01, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        x = Tensor(values)
        v = self.embeddings(indices)                      # [B, W, k]
        xv = x.expand_dims(-1) * v                        # [B, W, k]
        sum_sq = xv.sum(axis=1) ** 2                      # [B, k]
        sq_sum = (xv * xv).sum(axis=1)                    # [B, k]
        interaction = 0.5 * (sum_sq - sq_sum).sum(axis=-1)
        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)
        return self.bias + linear + interaction

    def item_embeddings(self, item_ids: np.ndarray, offset: int) -> np.ndarray:
        """Raw item-id embeddings for the t-SNE case study (Figs. 5–6)."""
        return self.embeddings.weight.data[offset + np.asarray(item_ids)]

    # -- batch-serving fast path ---------------------------------------
    # The O(k·n) identity splits across the user/item feature halves:
    # with s = s_u + s_i (value-weighted embedding sums) the interaction
    # is [per-user const] + [per-item const] + s_u·s_i, so a whole
    # [U, I] grid is one matmul plus broadcast constants.
    def _half_state(self, dataset, side: str, ids: np.ndarray):
        indices, values = dataset.encode_half(side, ids)
        v = self.embeddings.weight.data[indices]            # [N, W, k]
        xv = values[..., None] * v
        s = xv.sum(axis=1)                                  # [N, k]
        const = (
            (self.linear.weight.data[indices][..., 0] * values).sum(axis=-1)
            + 0.5 * ((s * s).sum(axis=-1) - (xv * xv).sum(axis=(1, 2)))
        )
        return s, const

    def item_state(self, dataset):
        items = np.arange(dataset.n_items, dtype=np.int64)
        s_i, const_i = self._half_state(dataset, "item", items)
        return {"dataset": dataset, "s_i": s_i, "const_i": const_i}

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        s_u, const_u = self._half_state(state["dataset"], "user",
                                        np.asarray(users, dtype=np.int64))
        cross = s_u @ state["s_i"].T                        # [U, I]
        return (self.bias.data + const_u[:, None]) + state["const_i"][None, :] + cross

    def grid_factor_items(self, state):
        return state["s_i"], state["const_i"]

    def grid_factor_users(self, users: np.ndarray, state):
        s_u, const_u = self._half_state(state["dataset"], "user",
                                        np.asarray(users, dtype=np.int64))
        return s_u, self.bias.data + const_u
