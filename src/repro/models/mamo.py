"""MAMO-style memory-augmented meta-learning recommender (Dong et al. 2020).

The cold-start comparison of the paper's Figure 4 pits GML-FM against
MAMO.  The official MAMO couples MAML-style meta-learning with two
memory matrices that provide *personalized* parameter initialization
instead of one global initialization.  This implementation keeps that
essential mechanism at laptop scale:

- a **profile encoder** maps a user's side attributes to a profile
  vector ``p_u``;
- a **feature-specific memory** (keys ``K``, values ``V``) is addressed
  by attention over ``p_u`` and emits a personalized user-embedding
  initialization ``e_u = p_u + softmax(p_u Kᵀ) V``;
- **local adaptation** runs a few gradient steps on the user's support
  interactions, updating only the fast user embedding;
- the **meta-update** backpropagates the post-adaptation query loss into
  the profile encoder, the memories and the item tower (first-order
  approximation, as in FOMAML — the adaptation delta is treated as a
  constant).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn, ops
from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel


class MAMO(RecommenderModel):
    """Memory-augmented meta-optimization for cold-start recommendation."""

    def __init__(self, dataset: RecDataset, k: int = 32, n_memory: int = 8,
                 local_lr: float = 0.05, local_steps: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.dataset = dataset
        self.k = k
        self.n_memory = n_memory
        self.local_lr = local_lr
        self.local_steps = local_steps

        # Profile encoder: one embedding table over the user-attribute
        # feature space (user id excluded — cold users have no history,
        # only attributes).
        self._attr_fields = list(dataset.user_attrs.keys())
        self._attr_sizes = {
            name: int(idx.max()) + 1 for name, (idx, _v) in dataset.user_attrs.items()
        }
        total_attr = sum(self._attr_sizes.values()) if self._attr_sizes else 1
        self._attr_offsets: dict[str, int] = {}
        offset = 0
        for name in self._attr_fields:
            self._attr_offsets[name] = offset
            offset += self._attr_sizes[name]
        self.profile_embeddings = nn.Embedding(total_attr, k, std=0.05, rng=rng)

        # Feature-specific memory.
        self.memory_keys = Tensor(rng.normal(0.0, 0.1, size=(n_memory, k)), requires_grad=True)
        self.memory_values = Tensor(rng.normal(0.0, 0.1, size=(n_memory, k)), requires_grad=True)

        # Item tower.
        self.item_factors = nn.Embedding(dataset.n_items, k, std=0.01, rng=rng)
        self.item_bias = nn.Embedding(dataset.n_items, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())

    # ------------------------------------------------------------------
    def _profile_indices(self, user: int) -> np.ndarray:
        """Global indices of a user's attribute values."""
        indices = []
        for name in self._attr_fields:
            idx, val = self.dataset.user_attrs[name]
            active = idx[user][val[user] > 0]
            indices.append(self._attr_offsets[name] + active)
        if not indices:
            return np.zeros(1, dtype=np.int64)
        return np.concatenate(indices)

    def personalized_init(self, user: int) -> Tensor:
        """Profile vector plus attention-read from the memory."""
        profile = self.profile_embeddings(self._profile_indices(user)).mean(axis=0)
        attention = ops.softmax((self.memory_keys @ profile), axis=-1)  # [n_memory]
        read = attention @ self.memory_values                            # [k]
        return profile + read

    def _score_items(self, user_embedding: Tensor, items: np.ndarray) -> Tensor:
        q = self.item_factors(items)
        return (
            self.bias
            + self.item_bias(items).squeeze(-1)
            + q @ user_embedding
        )

    # ------------------------------------------------------------------
    def adapt(self, user: int, support_items: np.ndarray,
              support_labels: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Local adaptation: returns (initial embedding node, delta).

        The delta is computed with detached fast weights so the
        meta-gradient is first-order.
        """
        init_embedding = self.personalized_init(user)
        fast = init_embedding.data.copy()
        labels = np.asarray(support_labels, dtype=fast.dtype)
        for _ in range(self.local_steps):
            fast_t = Tensor(fast, requires_grad=True)
            with_tape = self._score_items(fast_t, support_items)
            loss = ((with_tape - labels) ** 2).mean()
            loss.backward()
            fast = fast - self.local_lr * fast_t.grad
        delta = fast - init_embedding.data
        return init_embedding, delta

    def meta_fit(
        self,
        train_users: np.ndarray,
        train_items: np.ndarray,
        train_labels: np.ndarray,
        epochs: int = 3,
        meta_lr: float = 0.01,
        support_fraction: float = 0.5,
        seed: int = 0,
        users_per_step: int = 16,
    ) -> list[float]:
        """First-order meta-training over users as tasks.

        Returns the per-epoch mean query loss (for convergence tests).
        """
        from repro.autograd.optim import Adam

        rng = np.random.default_rng(seed)
        optimizer = Adam(list(self.parameters()), lr=meta_lr)
        by_user: dict[int, np.ndarray] = {}
        train_users = np.asarray(train_users)
        for u in np.unique(train_users):
            by_user[int(u)] = np.where(train_users == u)[0]
        users = np.array(sorted(by_user), dtype=np.int64)
        history: list[float] = []

        for _epoch in range(epochs):
            rng.shuffle(users)
            epoch_losses: list[float] = []
            for start in range(0, users.size, users_per_step):
                batch_users = users[start:start + users_per_step]
                optimizer.zero_grad()
                total = None
                counted = 0
                for u in batch_users:
                    rows = by_user[int(u)]
                    if rows.size < 2:
                        continue
                    perm = rng.permutation(rows)
                    n_support = max(1, int(support_fraction * rows.size))
                    support, query = perm[:n_support], perm[n_support:]
                    if query.size == 0:
                        continue
                    init_node, delta = self.adapt(
                        int(u), train_items[support], train_labels[support]
                    )
                    adapted = init_node + Tensor(delta)
                    scores = self._score_items(adapted, train_items[query])
                    labels = np.asarray(train_labels[query],
                                        dtype=scores.data.dtype)
                    loss = ((scores - labels) ** 2).mean()
                    total = loss if total is None else total + loss
                    counted += 1
                if total is None:
                    continue
                mean_loss = total * (1.0 / counted)
                mean_loss.backward()
                optimizer.step()
                epoch_losses.append(mean_loss.item())
            history.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        return history

    # ------------------------------------------------------------------
    def predict_for_user(self, user: int, support_items: np.ndarray,
                         support_labels: np.ndarray, query_items: np.ndarray) -> np.ndarray:
        """Adapt on the user's support set, then score query items."""
        support_items = np.asarray(support_items)
        if support_items.size == 0:
            with no_grad():
                embedding = self.personalized_init(user)
                return self._score_items(embedding, np.asarray(query_items)).data
        init_node, delta = self.adapt(user, support_items, np.asarray(support_labels))
        adapted = init_node.data + delta
        with no_grad():
            return self._score_items(Tensor(adapted), np.asarray(query_items)).data

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Non-adapted scoring (personalized init only).

        Used where a generic scorer is required; the cold-start harness
        calls :meth:`predict_for_user` to include local adaptation.
        """
        users = np.asarray(users)
        items = np.asarray(items)
        rows = [self._score_items(self.personalized_init(int(u)), items[b:b + 1])
                for b, u in enumerate(users)]
        return ops.concatenate(rows, axis=0)

    # -- batch-serving fast path ---------------------------------------
    # Non-adapted scoring is the bilinear form
    #
    #     score(u, i) = bias + item_bias[i] + q_i · e_u
    #
    # with e_u the personalized init (profile + memory read) — a pure
    # function of the *parameters*, not of any per-pair tape.  That
    # makes MAMO grid-servable (and ANN-eligible) exactly like MF: the
    # per-pair Python loop in :meth:`score` never runs in serving.

    def _personalized_init_grid(self, users: np.ndarray) -> np.ndarray:
        """``[len(users), k]`` personalized inits, tape-free numpy."""
        weights = self.profile_embeddings.weight.data
        keys = self.memory_keys.data
        values = self.memory_values.data
        out = np.empty((users.size, self.k))
        for row, user in enumerate(users.tolist()):
            profile = weights[self._profile_indices(int(user))].mean(axis=0)
            logits = keys @ profile
            logits = logits - logits.max()
            attention = np.exp(logits)
            attention /= attention.sum()
            out[row] = profile + attention @ values
        return out

    def item_state(self, dataset=None):
        return (self.item_factors.weight.data,
                self.item_bias.weight.data[:, 0])

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        q, item_bias = state
        users = np.asarray(users, dtype=np.int64)
        e = self._personalized_init_grid(users)
        return float(self.bias.data) + item_bias[None, :] + e @ q.T

    def grid_factor_items(self, state):
        q, item_bias = state
        return q, item_bias

    def grid_factor_users(self, users: np.ndarray, state):
        users = np.asarray(users, dtype=np.int64)
        return (self._personalized_init_grid(users),
                np.full(users.size, float(self.bias.data)))

    # -- incremental-update (fold-in) hook -----------------------------
    def fold_in_targets(
        self, users: np.ndarray, items: np.ndarray,
        sides: tuple[str, ...] = ("user", "item"),
    ) -> list[tuple[Tensor, np.ndarray]]:
        """Item-tower rows only — MAMO has no per-user table to fold.

        Personalization flows through the profile encoder and the
        memories, which are *shared* across users; updating them from
        one user's events would shift every sibling's scores, exactly
        what fold-in must not do.  Item factors and biases are
        per-entity rows, so item-side fold-in is safe and local.
        """
        if "item" not in sides:
            return []
        rows = np.unique(np.asarray(items, dtype=np.int64))
        return [(self.item_factors.weight, rows),
                (self.item_bias.weight, rows)]
