"""Neural Graph Collaborative Filtering (Wang et al. 2019).

Propagates user/item embeddings over the normalized bipartite
interaction graph:

    E⁽ˡ⁺¹⁾ = LeakyReLU((Â + I) E⁽ˡ⁾ W₁⁽ˡ⁾ + Â E⁽ˡ⁾ ⊙ E⁽ˡ⁾ W₂⁽ˡ⁾)

with ``Â = D^{-1/2} A D^{-1/2}``.  The final representation concatenates
all layers; scores are inner products.  Trained pairwise (BPR).

The adjacency is built once from the *training* interactions; this is
the one place in the repository that uses ``scipy.sparse`` through the
autograd bridge (:func:`repro.autograd.sparse.sparse_matmul`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd import nn, ops
from repro.autograd.sparse import sparse_matmul
from repro.autograd.tensor import Tensor, no_grad
from repro.models.base import EntityRecommender


def build_normalized_adjacency(
    n_users: int, n_items: int, users: np.ndarray, items: np.ndarray
) -> sp.csr_matrix:
    """Symmetric-normalized bipartite adjacency over users ∪ items."""
    n = n_users + n_items
    rows = np.concatenate([users, items + n_users])
    cols = np.concatenate([items + n_users, users])
    data = np.ones(rows.size, dtype=np.float64)  # repro: allow(dtype-hardcoded): degree normalization stays float64; cast to the model dtype at assignment
    adjacency = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = degrees[positive] ** -0.5
    norm = sp.diags(inv_sqrt) @ adjacency @ sp.diags(inv_sqrt)
    return norm.tocsr()


class NGCF(EntityRecommender):
    """NGCF with configurable propagation depth."""

    pairwise = True

    def __init__(self, n_users: int, n_items: int, k: int = 32, n_layers: int = 2,
                 train_users: Optional[np.ndarray] = None,
                 train_items: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(n_users, n_items)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.n_layers = n_layers
        self.embeddings = nn.Embedding(n_users + n_items, k, std=0.01, rng=rng)
        self.w1 = nn.ModuleList([nn.Linear(k, k, rng=rng) for _ in range(n_layers)])
        self.w2 = nn.ModuleList([nn.Linear(k, k, rng=rng) for _ in range(n_layers)])
        if train_users is None or train_items is None:
            train_users = np.empty(0, dtype=np.int64)
            train_items = np.empty(0, dtype=np.int64)
        self.adjacency = build_normalized_adjacency(
            n_users, n_items, np.asarray(train_users), np.asarray(train_items)
        ).astype(self.embeddings.weight.data.dtype)

    def set_training_graph(self, users: np.ndarray, items: np.ndarray) -> None:
        """Rebuild the propagation graph (train split only, no leakage)."""
        self.adjacency = build_normalized_adjacency(
            self.n_users, self.n_items, np.asarray(users), np.asarray(items)
        ).astype(self.embeddings.weight.data.dtype)

    def _convert_extras(self, dtype: np.dtype) -> None:
        # The adjacency is non-parameter state; a float64 matrix would
        # upcast every propagation under a float32 backend.
        if self.adjacency.dtype != dtype:
            self.adjacency = self.adjacency.astype(dtype)

    def propagate(self) -> Tensor:
        """All-entity representations: concat of every propagation layer."""
        e = self.embeddings.weight
        layers = [e]
        for w1, w2 in zip(self.w1, self.w2):
            neighbor = sparse_matmul(self.adjacency, e)
            message = w1(neighbor + e) + w2(neighbor * e)
            # LeakyReLU(0.2)
            e = ops.maximum(message, message * 0.2)
            layers.append(e)
        return ops.concatenate(layers, axis=-1)

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        representations = self.propagate()
        user_repr = representations[np.asarray(users)]
        item_repr = representations[np.asarray(items) + self.n_users]
        return (user_repr * item_repr).sum(axis=-1)

    #: Graph propagation spreads any base-embedding change to every
    #: entity's representation, so fold-in staleness is not per-user.
    fold_in_is_local = False

    def fold_in_targets(self, users, items, sides=("user", "item")):
        """Rows of the fused ``[n_users + n_items, k]`` entity table.

        Users occupy rows ``[0, n_users)`` and items rows
        ``[n_users, n_users + n_items)``.  Only the base embeddings are
        folded in; the propagation transforms (``w1``/``w2``) stay
        frozen, and the training graph is not rebuilt per event —
        updates reach other entities only through the next
        :meth:`item_state` refresh.
        """
        rows = []
        if "user" in sides:
            rows.append(np.unique(np.asarray(users, dtype=np.int64)))
        if "item" in sides:
            rows.append(self.n_users
                        + np.unique(np.asarray(items, dtype=np.int64)))
        if not rows:
            return []
        return [(self.embeddings.weight, np.concatenate(rows))]

    # -- batch-serving fast path ---------------------------------------
    # ``forward_entities`` re-propagates the whole graph for every
    # batch; for serving the propagated representations are computed
    # once and reused across all user queries.
    def item_state(self, dataset=None):
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                representations = self.propagate().data
        finally:
            if was_training:
                self.train()
        return representations

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        user_repr = state[np.asarray(users, dtype=np.int64)]
        item_repr = state[self.n_users:]
        return user_repr @ item_repr.T

    def grid_factor_items(self, state):
        item_repr = state[self.n_users:]
        return item_repr, np.zeros(item_repr.shape[0])

    def grid_factor_users(self, users: np.ndarray, state):
        users = np.asarray(users, dtype=np.int64)
        return state[users], np.zeros(users.size)
