"""Baseline recommenders the paper compares against (Section 4.2).

FM family (consume side attributes through the feature encoding):
``FactorizationMachine`` (LibFM), ``NFM``, ``DeepFM``, ``xDeepFM``,
``AFM``, ``TransFM``.

MF family (user/item ids only): ``MF``, ``PMF``, ``NCF``, ``BPRMF``,
``NGCF`` and the meta-learning cold-start baseline ``MAMO``.
"""

from repro.models.base import EntityRecommender, FeatureRecommender, RecommenderModel
from repro.models.fm import FactorizationMachine
from repro.models.nfm import NFM
from repro.models.deepfm import DeepFM
from repro.models.xdeepfm import XDeepFM
from repro.models.afm import AFM
from repro.models.transfm import TransFM
from repro.models.mf import MF
from repro.models.pmf import PMF
from repro.models.ncf import NCF
from repro.models.bprmf import BPRMF
from repro.models.ngcf import NGCF
from repro.models.mamo import MAMO

__all__ = [
    "RecommenderModel",
    "FeatureRecommender",
    "EntityRecommender",
    "FactorizationMachine",
    "NFM",
    "DeepFM",
    "XDeepFM",
    "AFM",
    "TransFM",
    "MF",
    "PMF",
    "NCF",
    "BPRMF",
    "NGCF",
    "MAMO",
]
