"""Attentional Factorization Machine (Xiao et al. 2017).

Learns a per-pair importance with a small attention network:

    e_ij = (v_i ⊙ v_j) x_i x_j
    a_ij = softmax(hₐᵀ ReLU(W e_ij + b))
    ŷ    = w₀ + Σᵢ wᵢxᵢ + pᵀ Σ_{i<j} a_ij e_ij
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn, ops
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender


class AFM(FeatureRecommender):
    """AFM with a single attention layer over pairwise interactions."""

    def __init__(self, dataset: RecDataset, k: int = 32, attention_dim: int = 16,
                 dropout: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__(dataset)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.embeddings = nn.Embedding(self.n_features, k, std=0.01, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())
        self.attention = nn.Linear(k, attention_dim, rng=rng)
        self.attention_vector = Tensor(
            rng.normal(0.0, 0.01, size=(attention_dim,)), requires_grad=True
        )
        self.projection = Tensor(
            rng.normal(0.0, 0.01, size=(k,)), requires_grad=True
        )
        self.dropout = nn.Dropout(dropout, rng=rng)
        left, right = np.triu_indices(self.sample_width, k=1)
        self._left, self._right = left, right

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        x = Tensor(values)
        v = self.embeddings(indices)                        # [B, W, k]
        xv = x.expand_dims(-1) * v
        e = xv[:, self._left, :] * xv[:, self._right, :]    # [B, P, k]

        logits = self.attention(e).relu() @ self.attention_vector  # [B, P]
        weights = ops.softmax(logits, axis=-1)
        attended = (weights.expand_dims(-1) * e).sum(axis=1)       # [B, k]
        attended = self.dropout(attended)

        interaction = attended @ self.projection
        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)
        return self.bias + linear + interaction
