"""Common recommender interfaces.

Every model exposes ``score(users, items) -> Tensor[B]`` so the trainer
and evaluators are model-agnostic.  Two families exist:

- :class:`FeatureRecommender` — FM-style models that consume the full
  attribute encoding; they hold a reference to the dataset's encoder
  and implement ``forward_features(indices, values)``.
- :class:`EntityRecommender` — MF-style models that look only at the
  raw (user, item) ids and implement ``forward_entities(users, items)``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataset import RecDataset


class RecommenderModel(nn.Module):
    """Base class: a trainable scorer over (user, item) pairs."""

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for a batch of (user, item) pairs."""
        raise NotImplementedError

    def predict(self, users: np.ndarray, items: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Numpy predictions in eval mode without building the tape.

        The prior train/eval mode is restored on exit, so calling
        ``predict`` on a model someone already put in eval mode does
        not silently re-enable dropout for later ``score`` calls.
        """
        was_training = self.training
        self.eval()
        users = np.asarray(users)
        items = np.asarray(items)
        chunks = []
        try:
            with no_grad():
                for start in range(0, users.size, batch_size):
                    stop = start + batch_size
                    chunks.append(self.score(users[start:stop], items[start:stop]).data)
        finally:
            if was_training:
                self.train()
        return np.concatenate(chunks) if chunks else np.empty(0)

    # -- batch-serving hooks -------------------------------------------
    # Models that can score a whole [users, catalogue] grid without
    # evaluating every (user, item) pair through ``score`` override
    # these two methods; ``repro.serving.scorer.BatchScorer`` falls back
    # to chunked ``predict`` calls when ``item_state`` returns None.

    def item_state(self, dataset: RecDataset):
        """Precompute item-side representations for grid scoring.

        Returns an opaque state object covering the dataset's full item
        catalogue, or ``None`` when the model has no fast grid path.
        The state is only valid while the parameters are unchanged.
        """
        return None

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        """Score ``[len(users), n_items]`` against a precomputed state.

        Only called when :meth:`item_state` returned a state; the caller
        is responsible for eval mode and chunking the user axis.
        """
        raise NotImplementedError(f"{type(self).__name__} has no grid scorer")


class FeatureRecommender(RecommenderModel):
    """FM-family base: scores via the dataset's feature encoding."""

    def __init__(self, dataset: RecDataset):
        super().__init__()
        self._encode = dataset.encode
        self.n_features = dataset.n_features
        self.sample_width = dataset.sample_width

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        """Score already-encoded samples; shape ``[B, W]`` each."""
        raise NotImplementedError

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        indices, values = self._encode(users, items)
        return self.forward_features(indices, values)

    def forward(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        return self.forward_features(indices, values)


class EntityRecommender(RecommenderModel):
    """MF-family base: scores directly from (user, item) ids."""

    def __init__(self, n_users: int, n_items: int):
        super().__init__()
        self.n_users = n_users
        self.n_items = n_items

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        raise NotImplementedError

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.forward_entities(np.asarray(users), np.asarray(items))

    def forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.forward_entities(users, items)
