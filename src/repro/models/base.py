"""Common recommender interfaces.

Every model exposes ``score(users, items) -> Tensor[B]`` so the trainer
and evaluators are model-agnostic.  Two families exist:

- :class:`FeatureRecommender` — FM-style models that consume the full
  attribute encoding; they hold a reference to the dataset's encoder
  and implement ``forward_features(indices, values)``.
- :class:`EntityRecommender` — MF-style models that look only at the
  raw (user, item) ids and implement ``forward_entities(users, items)``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataset import RecDataset


class RecommenderModel(nn.Module):
    """Base class: a trainable scorer over (user, item) pairs."""

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for a batch of (user, item) pairs."""
        raise NotImplementedError

    def batch_scorer(self, users: np.ndarray, items: np.ndarray,
                     precompute=True):
        """A ``score`` specialized to one fixed instance set.

        Returns ``score_batch(batch) -> Tensor`` where ``batch`` is any
        index (array or slice) into the given parallel ``users`` /
        ``items`` arrays.  The base implementation simply slices the
        ids and defers to :meth:`score`; feature models override it to
        pre-encode the whole instance set once
        (:meth:`repro.data.dataset.RecDataset.encode_cached`) so every
        epoch's minibatches slice cached arrays instead of re-encoding.

        ``precompute`` — ``True`` (training loops: the closure is
        reused across many epochs, always worth building whole) or
        ``"auto"`` (one-shot callers like :meth:`predict`: precompute
        only if the set already earned a cache slot by recurring).
        The base implementation ignores it.

        Equivalence contract: ``score_batch(batch)`` is byte-identical
        to ``score(users[batch], items[batch])`` — encoding is a pure
        row-wise function of the ids, so precompute-and-slice cannot
        change a single bit of any training run.
        """
        users = np.asarray(users)
        items = np.asarray(items)
        return lambda batch: self.score(users[batch], items[batch])

    def predict(self, users: np.ndarray, items: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Numpy predictions in eval mode without building the tape.

        The prior train/eval mode is restored on exit, so calling
        ``predict`` on a model someone already put in eval mode does
        not silently re-enable dropout for later ``score`` calls.
        Chunks are scored through :meth:`batch_scorer`, so feature
        models reuse the dataset's encoded-instance cache when the same
        evaluation split is predicted every epoch.
        """
        was_training = self.training
        self.eval()
        users = np.asarray(users)
        items = np.asarray(items)
        score_batch = self.batch_scorer(users, items, precompute="auto")
        chunks = []
        try:
            with no_grad():
                for start in range(0, users.size, batch_size):
                    chunks.append(score_batch(slice(start, start + batch_size)).data)
        finally:
            if was_training:
                self.train()
        return np.concatenate(chunks) if chunks else np.empty(0)

    # -- batch-serving hooks -------------------------------------------
    # Models that can score a whole [users, catalogue] grid without
    # evaluating every (user, item) pair through ``score`` override
    # these two methods; ``repro.serving.scorer.BatchScorer`` falls back
    # to chunked ``predict`` calls when ``item_state`` returns None.

    def item_state(self, dataset: RecDataset):
        """Precompute item-side representations for grid scoring.

        Returns an opaque state object covering the dataset's full item
        catalogue, or ``None`` when the model has no fast grid path.
        The state is only valid while the parameters are unchanged.
        """
        return None

    # -- incremental-update (fold-in) hook -----------------------------
    #: Whether a user-side fold-in can only move that user's own
    #: scores.  True for factorization models (a user's row enters no
    #: other user's score); graph-propagation models override with
    #: False, and serving then flushes its whole result cache after
    #: any fold-in instead of only the touched users' entries.
    fold_in_is_local = True

    def fold_in_targets(
        self, users: np.ndarray, items: np.ndarray,
        sides: tuple[str, ...] = ("user", "item"),
    ) -> list[tuple[Tensor, np.ndarray]]:
        """Embedding rows a fold-in update may touch for these events.

        Returns ``[(parameter, rows)]`` pairs: for each listed
        parameter, an incremental trainer
        (:class:`repro.training.online.IncrementalTrainer`) applies SGD
        only to the given (unique) rows and leaves every other row —
        and every non-listed parameter, e.g. MLP/attention weights —
        frozen.  ``sides`` restricts the update to user-side and/or
        item-side representations; user-side-only fold-in is what lets
        a serving cache invalidate exactly the touched users.

        The base implementation returns ``[]``, meaning the model does
        not support fold-in; both concrete families override it.
        """
        return []

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        """Score ``[len(users), n_items]`` against a precomputed state.

        Only called when :meth:`item_state` returned a state; the caller
        is responsible for eval mode and chunking the user axis.
        """
        raise NotImplementedError(f"{type(self).__name__} has no grid scorer")

    # -- bilinear grid decomposition (ANN candidate retrieval) ---------
    # Every grid fast path in this repo is a bilinear form
    #
    #     score(u, i) = u_const[u] + i_const[i] + U[u] · V[i]
    #
    # and models that expose the two factor hooks below let serving
    # retrieve candidates with sub-linear maximum-inner-product search
    # (:mod:`repro.serving.ann`) instead of scoring the whole
    # catalogue.  Returning None from ``grid_factor_items`` (the base
    # behavior) keeps the model on the exact full-grid path.

    def grid_factor_items(self, state):
        """``(V [n_items, d], i_const [n_items])`` of the bilinear form.

        ``state`` is the object :meth:`item_state` returned.  Contract:
        together with :meth:`grid_factor_users`,
        ``u_const[:, None] + i_const[None, :] + U @ V.T`` equals
        :meth:`score_grid` up to float summation order.  ``None`` (the
        default) declares that no such decomposition is available.
        """
        return None

    def grid_factor_users(self, users: np.ndarray, state):
        """``(U [len(users), d], u_const [len(users)])`` query factors.

        Only called when :meth:`grid_factor_items` returned factors;
        ``d`` must match the item side.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no grid factor decomposition")


class FeatureRecommender(RecommenderModel):
    """FM-family base: scores via the dataset's feature encoding."""

    def __init__(self, dataset: RecDataset):
        super().__init__()
        self._dataset = dataset
        self._encode = dataset.encode
        self.n_features = dataset.n_features
        self.sample_width = dataset.sample_width

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        """Score already-encoded samples; shape ``[B, W]`` each."""
        raise NotImplementedError

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        indices, values = self._encode(users, items)
        return self.forward_features(indices, values)

    def batch_scorer(self, users: np.ndarray, items: np.ndarray,
                     precompute=True):
        """Pre-encode the instance set once, then score cached slices.

        The full ``(indices, values)`` encoding is built (and memoized
        on the dataset, see
        :meth:`~repro.data.dataset.RecDataset.encode_cached`) up front;
        each call slices it and runs :meth:`forward_features`.  Because
        encoding is row-wise, ``indices[batch]`` equals
        ``encode(users[batch], items[batch])`` exactly, so training
        through this path is byte-identical to per-batch encoding.

        Two situations fall back to encoding each batch on demand,
        keeping peak memory bounded by the chunk size exactly as
        before this cache existed:

        - sets the cache would refuse (too many rows, or a full
          encoding over the byte budget);
        - ``precompute="auto"`` (the :meth:`predict` policy) when the
          set has not recurred yet — one-shot prediction sets such as
          serving's flattened user×catalogue grids never allocate a
          full-set encoding, while per-epoch validation splits earn
          their slot on the second epoch
          (:meth:`~repro.data.dataset.RecDataset.cached_encoding_if_reused`).
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if not self._dataset.encoding_cacheable(users.size):
            return lambda batch: self.forward_features(
                *self._encode(users[batch], items[batch]))
        if precompute == "auto":
            cached = self._dataset.cached_encoding_if_reused(users, items)
            if cached is None:
                return lambda batch: self.forward_features(
                    *self._encode(users[batch], items[batch]))
            indices, values = cached
        else:
            indices, values = self._dataset.encode_cached(users, items)
        return lambda batch: self.forward_features(indices[batch], values[batch])

    def fold_in_targets(
        self, users: np.ndarray, items: np.ndarray,
        sides: tuple[str, ...] = ("user", "item"),
    ) -> list[tuple[Tensor, np.ndarray]]:
        """Rows of every feature-indexed embedding table for the events.

        FM-family models share one feature space across all their
        lookup tables (pairwise factors, linear weights, TransFM's
        translations, …), so fold-in touches the *user-id* and
        *item-id* feature rows of each ``[n_features, ·]`` embedding.
        Attribute rows are deliberately excluded: they are shared
        across entities, and updating them from one user's event would
        silently shift every sibling's scores.
        """
        space = self._dataset.feature_space
        rows = []
        if "user" in sides:
            rows.append(space.offset("user")
                        + np.unique(np.asarray(users, dtype=np.int64)))
        if "item" in sides:
            rows.append(space.offset("item")
                        + np.unique(np.asarray(items, dtype=np.int64)))
        if not rows:
            return []
        row_index = np.concatenate(rows)
        targets = []
        for module in self.modules():
            if (isinstance(module, nn.Embedding)
                    and module.num_embeddings == self.n_features):
                targets.append((module.weight, row_index))
        return targets

    def forward(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        return self.forward_features(indices, values)


class EntityRecommender(RecommenderModel):
    """MF-family base: scores directly from (user, item) ids."""

    def __init__(self, n_users: int, n_items: int):
        super().__init__()
        self.n_users = n_users
        self.n_items = n_items

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        raise NotImplementedError

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.forward_entities(np.asarray(users), np.asarray(items))

    def fold_in_targets(
        self, users: np.ndarray, items: np.ndarray,
        sides: tuple[str, ...] = ("user", "item"),
    ) -> list[tuple[Tensor, np.ndarray]]:
        """Per-entity embedding rows, resolved by module naming.

        MF-family models keep one or more ``[n_users, ·]`` tables whose
        attribute names contain ``user`` (``user_factors``,
        ``gmf_user``, …) and likewise for items; fold-in updates the
        event entities' rows of each.  Models with a fused entity table
        (NGCF) override this.  Dense transforms (NCF's MLP) are never
        listed — fold-in adjusts representations, not the network.
        """
        user_rows = np.unique(np.asarray(users, dtype=np.int64))
        item_rows = np.unique(np.asarray(items, dtype=np.int64))
        targets = []
        for name, module in self.named_modules():
            if not isinstance(module, nn.Embedding):
                continue
            leaf = name.rsplit(".", 1)[-1]
            if ("user" in sides and "user" in leaf
                    and module.num_embeddings == self.n_users):
                targets.append((module.weight, user_rows))
            elif ("item" in sides and "item" in leaf
                    and module.num_embeddings == self.n_items):
                targets.append((module.weight, item_rows))
        return targets

    def forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.forward_entities(users, items)
