"""TransFM (Pasricha & McAuley 2018) adapted to general recommendation.

Replaces the FM inner product with a translated squared Euclidean
distance (paper Section 2.2):

    ŷ(x) = w₀ + Σᵢ wᵢxᵢ + Σ_{i<j} d(v_i + v'_i, v_j) x_i x_j
    d(a, b) = (a − b)ᵀ(a − b)

``v`` are embedding vectors and ``v'`` translation vectors.  As in the
paper's experiments, the sequential-adjacency constraint is removed so
all attribute pairs interact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender


class TransFM(FeatureRecommender):
    """FM with translation vectors and squared Euclidean interactions."""

    def __init__(self, dataset: RecDataset, k: int = 32, init_std: float = 0.01,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(dataset)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        # The purely non-negative distance interaction is prone to
        # divergence; it needs a small init and a conservative learning
        # rate (the runner uses 0.003).
        self.embeddings = nn.Embedding(self.n_features, k, std=init_std, rng=rng)
        self.translations = nn.Embedding(self.n_features, k, std=init_std, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())
        left, right = np.triu_indices(self.sample_width, k=1)
        self._left, self._right = left, right

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        x = Tensor(values)
        v = self.embeddings(indices)        # [B, W, k]
        t = self.translations(indices)      # [B, W, k]

        source = v[:, self._left, :] + t[:, self._left, :]
        target = v[:, self._right, :]
        diff = source - target
        d = (diff * diff).sum(axis=-1)                       # [B, P]
        x_pair = x[:, self._left] * x[:, self._right]
        interaction = (d * x_pair).sum(axis=-1)

        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)
        return self.bias + linear + interaction

    def item_embeddings(self, item_ids: np.ndarray, offset: int) -> np.ndarray:
        """Raw item-id embeddings for the t-SNE case study (Figs. 5–6)."""
        return self.embeddings.weight.data[offset + np.asarray(item_ids)]
