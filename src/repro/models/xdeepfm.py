"""xDeepFM (Lian et al. 2018): Compressed Interaction Network + DNN.

The CIN builds explicit vector-wise high-order interactions:

    X⁰ ∈ [B, W, k]                         (field embedding matrix)
    Xˡ_{h,:} = Σ_{i,j} Wˡ_{h,ij} (Xˡ⁻¹_{i,:} ⊙ X⁰_{j,:})

Each layer is sum-pooled over the embedding axis and the pooled vectors
feed a final linear unit, alongside a plain DNN and the linear part.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender


class XDeepFM(FeatureRecommender):
    """xDeepFM with a small CIN and DNN tower."""

    def __init__(self, dataset: RecDataset, k: int = 32,
                 cin_sizes: Optional[list[int]] = None,
                 hidden: Optional[list[int]] = None, dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(dataset)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.embeddings = nn.Embedding(self.n_features, k, std=0.01, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())

        self.cin_sizes = cin_sizes if cin_sizes is not None else [8, 8]
        width = self.sample_width
        self.cin_weights = nn.ModuleList()
        prev = width
        for size in self.cin_sizes:
            # A 1x1 "convolution" over the H_{l-1}·W outer-product rows.
            self.cin_weights.append(nn.Linear(prev * width, size, bias=False, rng=rng))
            prev = size

        hidden = hidden if hidden is not None else [64, 32]
        dims = [width * k] + hidden
        self.mlp = nn.make_mlp(dims, activation="relu", dropout=dropout, rng=rng)
        self.deep_head = nn.Linear(dims[-1], 1, rng=rng)
        self.cin_head = nn.Linear(sum(self.cin_sizes), 1, rng=rng)

    def _cin(self, x0: Tensor) -> Tensor:
        """Compressed Interaction Network; returns pooled ``[B, ΣH]``."""
        batch, width, k = x0.shape
        pooled = []
        current = x0
        for layer in self.cin_weights:
            h_prev = current.shape[1]
            # Outer products along the embedding axis:
            # z[b, i, j, d] = current[b, i, d] * x0[b, j, d]
            z = current.expand_dims(2) * x0.expand_dims(1)        # [B, H, W, k]
            z = z.reshape(batch, h_prev * width, k)               # [B, H*W, k]
            # Compress rows with the layer weights: [B, k, H*W] @ [H*W, H'].
            compressed = (z.swapaxes(1, 2) @ layer.weight).swapaxes(1, 2)
            current = compressed                                   # [B, H', k]
            pooled.append(current.sum(axis=-1))                    # [B, H']
        from repro.autograd import ops
        return ops.concatenate(pooled, axis=-1)

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        x = Tensor(values)
        v = self.embeddings(indices)
        xv = x.expand_dims(-1) * v

        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)
        cin_out = self.cin_head(self._cin(xv)).squeeze(-1)
        flat = xv.reshape(xv.shape[0], self.sample_width * self.k)
        deep = self.deep_head(self.mlp(flat)).squeeze(-1)
        return self.bias + linear + cin_out + deep
