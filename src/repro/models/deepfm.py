"""DeepFM (Guo et al. 2017): FM component + deep component, shared embeddings.

The FM component models low-order interactions (identical to the vanilla
FM); the deep component is an MLP over the concatenated field embedding
vectors; their outputs are summed (Wide & Deep architecture).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender


class DeepFM(FeatureRecommender):
    """DeepFM with a shared embedding table."""

    def __init__(self, dataset: RecDataset, k: int = 32,
                 hidden: Optional[list[int]] = None, dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(dataset)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.embeddings = nn.Embedding(self.n_features, k, std=0.01, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())
        hidden = hidden if hidden is not None else [64, 32]
        dims = [self.sample_width * k] + hidden
        self.mlp = nn.make_mlp(dims, activation="relu", dropout=dropout, rng=rng)
        self.head = nn.Linear(dims[-1], 1, rng=rng)

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        x = Tensor(values)
        v = self.embeddings(indices)                       # [B, W, k]
        xv = x.expand_dims(-1) * v

        # FM component.
        sum_sq = xv.sum(axis=1) ** 2
        sq_sum = (xv * xv).sum(axis=1)
        fm_term = 0.5 * (sum_sq - sq_sum).sum(axis=-1)
        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)

        # Deep component over concatenated (value-scaled) field vectors.
        flat = xv.reshape(xv.shape[0], self.sample_width * self.k)
        deep = self.head(self.mlp(flat)).squeeze(-1)

        return self.bias + linear + fm_term + deep
