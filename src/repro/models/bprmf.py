"""BPR-MF (Rendle et al. 2009): MF scored, trained with the pairwise
Bayesian Personalized Ranking loss (see ``training.losses.bpr_loss``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor
from repro.models.base import EntityRecommender


class BPRMF(EntityRecommender):
    """Inner-product MF intended for pairwise (BPR) training."""

    #: Trainers check this flag to choose the pairwise loop.
    pairwise = True

    def __init__(self, n_users: int, n_items: int, k: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(n_users, n_items)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.user_factors = nn.Embedding(n_users, k, std=0.01, rng=rng)
        self.item_factors = nn.Embedding(n_items, k, std=0.01, rng=rng)
        self.item_bias = nn.Embedding(n_items, 1, std=0.01, rng=rng)

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self.user_factors(users)
        q = self.item_factors(items)
        return (p * q).sum(axis=-1) + self.item_bias(items).squeeze(-1)

    # -- batch-serving fast path ---------------------------------------
    def item_state(self, dataset=None):
        return (self.item_factors.weight.data, self.item_bias.weight.data[:, 0])

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        q, item_bias = state
        p = self.user_factors.weight.data[np.asarray(users, dtype=np.int64)]
        return p @ q.T + item_bias[None, :]

    def grid_factor_items(self, state):
        q, item_bias = state
        return q, item_bias

    def grid_factor_users(self, users: np.ndarray, state):
        users = np.asarray(users, dtype=np.int64)
        return self.user_factors.weight.data[users], np.zeros(users.size)
