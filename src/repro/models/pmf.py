"""Probabilistic Matrix Factorization (Mnih & Salakhutdinov 2008).

The MAP objective of PMF is the squared loss plus Gaussian priors on
both factor matrices, i.e. plain inner-product MF with L2 regularization
and no bias terms.  The prior precision ratio becomes the trainer's
``weight_decay``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor
from repro.models.base import EntityRecommender


class PMF(EntityRecommender):
    """Bias-free MF trained with weight decay (Gaussian priors)."""

    def __init__(self, n_users: int, n_items: int, k: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(n_users, n_items)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.user_factors = nn.Embedding(n_users, k, std=0.01, rng=rng)
        self.item_factors = nn.Embedding(n_items, k, std=0.01, rng=rng)

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self.user_factors(users)
        q = self.item_factors(items)
        return (p * q).sum(axis=-1)

    # -- batch-serving fast path ---------------------------------------
    def item_state(self, dataset=None):
        return self.item_factors.weight.data

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        p = self.user_factors.weight.data[np.asarray(users, dtype=np.int64)]
        return p @ state.T

    def grid_factor_items(self, state):
        return state, np.zeros(state.shape[0])

    def grid_factor_users(self, users: np.ndarray, state):
        users = np.asarray(users, dtype=np.int64)
        return self.user_factors.weight.data[users], np.zeros(users.size)
