"""Matrix factorization with biases (rating-prediction baseline).

    ŷ(u, i) = μ + b_u + b_i + p_uᵀ q_i
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor
from repro.models.base import EntityRecommender


class MF(EntityRecommender):
    """Biased matrix factorization."""

    def __init__(self, n_users: int, n_items: int, k: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(n_users, n_items)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.user_factors = nn.Embedding(n_users, k, std=0.01, rng=rng)
        self.item_factors = nn.Embedding(n_items, k, std=0.01, rng=rng)
        self.user_bias = nn.Embedding(n_users, 1, std=0.01, rng=rng)
        self.item_bias = nn.Embedding(n_items, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())

    def forward_entities(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        p = self.user_factors(users)
        q = self.item_factors(items)
        dot = (p * q).sum(axis=-1)
        return (
            self.bias
            + self.user_bias(users).squeeze(-1)
            + self.item_bias(items).squeeze(-1)
            + dot
        )

    # -- batch-serving fast path ---------------------------------------
    def item_state(self, dataset=None):
        return (self.item_factors.weight.data, self.item_bias.weight.data[:, 0])

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        # One BLAS matmul for the whole [users, items] grid; agrees with
        # ``predict`` to float rounding (summation order differs).
        q, item_bias = state
        users = np.asarray(users, dtype=np.int64)
        p = self.user_factors.weight.data[users]
        user_bias = self.user_bias.weight.data[users, 0]
        return self.bias.data + user_bias[:, None] + item_bias[None, :] + p @ q.T

    def grid_factor_items(self, state):
        q, item_bias = state
        return q, item_bias

    def grid_factor_users(self, users: np.ndarray, state):
        users = np.asarray(users, dtype=np.int64)
        p = self.user_factors.weight.data[users]
        return p, self.bias.data + self.user_bias.weight.data[users, 0]
