"""Neural Factorization Machine (He & Chua 2017).

    ŷ(x) = w₀ + Σᵢ wᵢxᵢ + hᵀ MLP(f_BI(Vx))
    f_BI(Vx) = Σ_{i<j} x_i v_i ⊙ x_j v_j
             = ½[(Σᵢ x_i v_i)² − Σᵢ (x_i v_i)²]

Bi-Interaction pooling followed by fully connected layers; an
inner-product model with non-linear transformations (paper Section 2.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender


class NFM(FeatureRecommender):
    """NFM with Bi-Interaction pooling and an MLP head."""

    def __init__(self, dataset: RecDataset, k: int = 32, n_layers: int = 1,
                 dropout: float = 0.1, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None):
        super().__init__(dataset)
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.embeddings = nn.Embedding(self.n_features, k, std=0.01, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())
        self.dropout = nn.Dropout(dropout, rng=rng)
        if n_layers > 0:
            self.mlp = nn.make_mlp([k] * (n_layers + 1), activation=activation,
                                   dropout=dropout, rng=rng)
        else:
            self.mlp = nn.Identity()
        self.head = nn.Linear(k, 1, bias=False, rng=rng)

    def bi_interaction(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        """The pooled pairwise element-wise products ``[B, k]``."""
        x = Tensor(values)
        v = self.embeddings(indices)
        xv = x.expand_dims(-1) * v
        return 0.5 * (xv.sum(axis=1) ** 2 - (xv * xv).sum(axis=1))

    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        x = Tensor(values)
        pooled = self.dropout(self.bi_interaction(indices, values))
        deep = self.head(self.mlp(pooled)).squeeze(-1)
        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)
        return self.bias + linear + deep

    def item_embeddings(self, item_ids: np.ndarray, offset: int) -> np.ndarray:
        """Raw item-id embeddings for the t-SNE case study (Figs. 5–6)."""
        return self.embeddings.weight.data[offset + np.asarray(item_ids)]
