"""Million-user scenario engine: streamed corpora + adversarial load.

Three layers, composed by :mod:`repro.scenarios.engine`:

- :mod:`repro.scenarios.corpus` — chunked, seeded corpus streaming
  (any chunk size yields the byte-identical corpus) with adapters into
  ``InteractionLog`` snapshots and serving artifacts;
- :mod:`repro.scenarios.schedules` — seeded arrival schedules (Zipf,
  flash crowd, diurnal, cold-start surge, sessions);
- :mod:`repro.scenarios.loadgen` — the multi-threaded HTTP load driver
  with per-window error/latency stats (grown out of the test harness).

``repro scenario run <name>`` executes one scenario and emits a gated
capacity record; the benchmarks pin one record per scenario under
``benchmarks/results/``.
"""

from repro.scenarios.corpus import (
    BLOCK_USERS,
    CorpusChunk,
    CorpusStats,
    StreamConfig,
    build_stream_artifact,
    materialize,
    stream_corpus,
    stream_to_log,
    windowed_snapshot,
)
from repro.scenarios.engine import (
    SCENARIOS,
    ScenarioSpec,
    list_scenarios,
    peak_rss_mb,
    run_scenario,
)
from repro.scenarios.loadgen import LoadResult, drive, resolve_schedule
from repro.scenarios.schedules import (
    Schedule,
    cold_start_surge,
    diurnal,
    even_windows,
    flash_crowd,
    sessions,
    uniform_users,
    zipf_users,
)

__all__ = [
    "BLOCK_USERS",
    "CorpusChunk",
    "CorpusStats",
    "LoadResult",
    "SCENARIOS",
    "Schedule",
    "ScenarioSpec",
    "StreamConfig",
    "build_stream_artifact",
    "cold_start_surge",
    "diurnal",
    "drive",
    "even_windows",
    "flash_crowd",
    "list_scenarios",
    "materialize",
    "peak_rss_mb",
    "resolve_schedule",
    "run_scenario",
    "sessions",
    "stream_corpus",
    "stream_to_log",
    "uniform_users",
    "windowed_snapshot",
    "zipf_users",
]
