"""Scenario engine: adversarial workloads composed into gated runs.

A *scenario* wires a seeded corpus (streamed or synthetic), a registry
model, the serving stack and an arrival schedule into one run, and
returns a **capacity record**: measured throughput/latency/memory plus
a ``gate`` / ``gate_passed`` verdict, in the same shape the benchmark
results directory already uses — so ``repro bench report`` renders and
enforces scenario gates exactly like the other throughput gates.

Every scenario is a pure function of its keyword arguments (explicit
seeds everywhere), and every gate is a *capacity* bound — zero errors,
a conservative requests/sec floor, a peak-RSS ceiling — never a
quality metric: an init-state model exercises the identical serving
path as a trained one, minutes cheaper.

The built-ins cover the shapes the paper never tested:

==================  ====================================================
``cold-start-surge``  MAMO serves users with *no* history while launch
                      traffic shifts onto them mid-run.
``session-traffic``   TransFM serves sequential same-user runs while
                      each finished session folds into the model online.
``catalog-churn``     BPR-MF + ANN retrieval under item-side fold-in
                      rounds, each invalidating codebook + caches.
``flash-crowd``       A stampede onto a tiny hot set mid-stream (cache
                      pressure; per-window stats show the step).
``diurnal``           Day-night request volume over even time windows.
``million-user``      The capacity run: a 10⁶-user / 10⁵-item corpus
                      streams through generation → artifact → serving
                      without materializing the interaction set.
==================  ====================================================

Use ``repro scenario run <name>`` (CLI) or :func:`run_scenario`
(in-process); the capacity benchmarks pin one record per scenario under
``benchmarks/results/``.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
import urllib.request
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from repro.scenarios import schedules
from repro.scenarios.corpus import CorpusStats, StreamConfig, windowed_snapshot
from repro.scenarios.loadgen import LoadResult, drive


def peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MB (0.0 where unsupported).

    A process-lifetime high-water mark: meaningful as a tight bound
    only when the scenario runs in a fresh process (the CLI path the
    million-user benchmark uses); in-process runs gate it loosely.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX only
        return 0.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _finish(record: dict, checks: list[tuple[str, bool]]) -> dict:
    """Attach the gate verdict (bench-report contract) to a record."""
    record["checks"] = {name: bool(ok) for name, ok in checks}
    record["gate"] = "; ".join(name for name, _ok in checks)
    record["gate_passed"] = all(ok for _name, ok in checks)
    return record


@contextlib.contextmanager
def _served(service) -> Iterator[str]:
    """A live HTTP server around ``service``; yields its base URL."""
    from repro.serving.server import build_server

    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _post_update(base_url: str, users, items, timeout: float = 30.0) -> dict:
    """``POST /update`` a batch of events; returns the parsed report."""
    body = json.dumps({
        "events": [[int(u), int(i)] for u, i in zip(users, items)],
    }).encode()
    request = urllib.request.Request(
        f"{base_url}/update", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return json.loads(resp.read())


def _complete(result: LoadResult, k: int) -> bool:
    """Every response present with a full-length ranked list."""
    return all(body is not None and len(body.get("items", ())) == k
               for body in result.responses)


def _capacity_checks(result: LoadResult, k: int, min_req_per_sec: float,
                     max_peak_rss_mb: float) -> list[tuple[str, bool]]:
    """The gate block every scenario shares."""
    return [
        ("zero errors", not result.errors),
        (f"all lists length {k}", _complete(result, k)),
        (f"req/s >= {min_req_per_sec:g}",
         result.requests_per_sec >= min_req_per_sec),
        (f"peak RSS <= {max_peak_rss_mb:g} MB",
         peak_rss_mb() <= max_peak_rss_mb),
    ]


def _base_record(name: str, result: LoadResult,
                 boundaries: Optional[np.ndarray] = None) -> dict:
    record = {
        "benchmark": "scenario_capacity",
        "scenario": name,
        **result.summary(),
        "peak_rss_mb": peak_rss_mb(),
    }
    if boundaries is not None:
        record["windows"] = result.window_stats(boundaries)
    return record


def _stream_dataset(n_users: int, n_items: int, seed: int,
                    mean_events: float = 8.0, cold_frac: float = 0.0):
    """Small streamed corpus (full window) for the fast scenarios."""
    config = StreamConfig(n_users=n_users, n_items=n_items, seed=seed,
                          mean_events=mean_events, cold_frac=cold_frac)
    dataset, _peak = windowed_snapshot(
        config, window_events=max(1, 4 * int(mean_events) * n_users))
    return dataset


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------
def run_cold_start_surge(
    seed: int = 0,
    scale: float = 0.25,
    cold_frac: float = 0.2,
    n_requests: int = 240,
    n_threads: int = 4,
    top_k: int = 5,
    epochs: int = 0,
    min_req_per_sec: float = 5.0,
    max_peak_rss_mb: float = 4096.0,
) -> dict:
    """MAMO under a launch-day surge of history-free users.

    The coldest ``cold_frac`` of the user space has every interaction
    dropped (attributes kept — that is all a cold user brings), MAMO is
    built through the registry, and the surge schedule shifts traffic
    onto those users mid-run.  ``epochs`` optionally meta-trains first;
    the capacity gates hold either way.
    """
    from repro.data.dataset import RecDataset
    from repro.data.synthetic import make_dataset
    from repro.experiments.registry import build_model
    from repro.serving.service import RecommendationService

    base = make_dataset("movielens", seed=seed, scale=scale)
    cold = np.arange(int(round((1.0 - cold_frac) * base.n_users)),
                     base.n_users, dtype=np.int64)
    keep = ~np.isin(base.users, cold)
    dataset = RecDataset(
        name="movielens-coldstart",
        n_users=base.n_users, n_items=base.n_items,
        users=base.users[keep], items=base.items[keep],
        timestamps=base.timestamps[keep],
        user_attrs=base.user_attrs, item_attrs=base.item_attrs)
    model = build_model("MAMO", dataset, k=8, seed=seed)
    if epochs:
        model.meta_fit(dataset.users, dataset.items,
                       np.ones(dataset.users.size), epochs=epochs, seed=seed)
    service = RecommendationService(model, dataset, top_k=top_k,
                                    cache_size=256)
    # Warm users who have already seen all but < top_k items cannot get
    # a full-length unseen list (the service 400s by contract); keep
    # them out of the warm pool so every request is answerable.
    pairs = dataset.users.astype(np.int64) * base.n_items + dataset.items
    seen = np.bincount(np.unique(pairs) // base.n_items,
                       minlength=base.n_users)
    saturated = np.flatnonzero(base.n_items - seen < top_k)
    schedule = schedules.cold_start_surge(base.n_users, cold, n_requests,
                                          seed=seed, exclude=saturated)
    with _served(service) as base_url:
        result = drive(base_url, schedule, n_threads=n_threads, k=top_k)
    cold_requests = int(np.isin(schedule.users, cold).sum())
    record = _base_record("cold-start-surge", result, schedule.boundaries)
    record.update(model="MAMO", n_users=base.n_users, n_items=base.n_items,
                  cold_users=int(cold.size), cold_requests=cold_requests,
                  saturated_users=int(saturated.size))
    return _finish(record, _capacity_checks(
        result, top_k, min_req_per_sec, max_peak_rss_mb) + [
        ("cold users actually queried", cold_requests > 0),
    ])


def run_session_traffic(
    seed: int = 0,
    scale: float = 0.2,
    n_sessions: int = 24,
    session_len: int = 8,
    n_threads: int = 2,
    top_k: int = 5,
    min_req_per_sec: float = 5.0,
    max_peak_rss_mb: float = 4096.0,
) -> dict:
    """TransFM serving sequential sessions with online fold-in between.

    Each session is a run of same-user requests; when it ends, the
    consumed item posts to ``/update`` and folds into the model
    (user-side, so invalidation stays per-user).  The gate additionally
    pins that every posted event actually folded in.
    """
    from repro.data.synthetic import make_dataset
    from repro.experiments.registry import build_model
    from repro.serving.service import RecommendationService
    from repro.training.online import OnlineConfig

    dataset = make_dataset("movielens", seed=seed, scale=scale)
    model = build_model("TransFM", dataset, k=8, seed=seed)
    service = RecommendationService(
        model, dataset, top_k=top_k, cache_size=256,
        online_config=OnlineConfig(sides=("user",)))
    schedule = schedules.sessions(dataset.n_users, n_sessions, session_len,
                                  seed=seed)
    rng = np.random.default_rng(np.random.SeedSequence((seed, 5)))
    consumed = rng.integers(0, dataset.n_items, size=n_sessions)

    latencies, responses, errors = [], [], []
    wall = 0.0
    with _served(service) as base_url:
        for window in range(schedule.n_windows):
            lo = int(schedule.boundaries[window])
            hi = int(schedule.boundaries[window + 1])
            result = drive(base_url, schedule.users[lo:hi],
                           n_threads=n_threads, k=top_k)
            latencies.append(result.latencies)
            responses.extend(result.responses)
            errors.extend((lo + pos, user, exc)
                          for pos, user, exc in result.errors)
            wall += result.wall_seconds
            _post_update(base_url, [schedule.users[lo]], [consumed[window]])
    combined = LoadResult(latencies=np.concatenate(latencies),
                          responses=responses, errors=errors,
                          wall_seconds=wall)
    record = _base_record("session-traffic", combined, schedule.boundaries)
    record.update(model="TransFM", n_users=dataset.n_users,
                  n_items=dataset.n_items, sessions=n_sessions,
                  folded_in=service.updates_folded_in)
    return _finish(record, _capacity_checks(
        combined, top_k, min_req_per_sec, max_peak_rss_mb) + [
        (f"all {n_sessions} session events folded in",
         service.updates_folded_in == n_sessions),
    ])


def run_catalog_churn(
    seed: int = 0,
    n_users: int = 400,
    n_items: int = 256,
    churn_rounds: int = 4,
    requests_per_round: int = 60,
    events_per_round: int = 24,
    n_threads: int = 2,
    top_k: int = 5,
    min_req_per_sec: float = 5.0,
    max_peak_rss_mb: float = 4096.0,
) -> dict:
    """ANN retrieval under rounds of item-side fold-in (codebook churn).

    BPR-MF with IVF candidate retrieval serves Zipf traffic; after each
    round a batch of item-touching events folds in, which moves item
    representations and therefore rebuilds the scorer's item state and
    ANN codebook and flushes every cached list.  The gate pins that ANN
    stayed active and the service kept answering complete lists across
    every invalidation.
    """
    from repro.experiments.registry import build_model
    from repro.serving.ann import ANNConfig
    from repro.serving.service import RecommendationService
    from repro.training.online import OnlineConfig

    dataset = _stream_dataset(n_users, n_items, seed)
    model = build_model("BPR-MF", dataset, k=8, seed=seed)
    service = RecommendationService(
        model, dataset, top_k=top_k, cache_size=256,
        ann=ANNConfig(seed=seed),
        online_config=OnlineConfig(sides=("user", "item")))
    rng = np.random.default_rng(np.random.SeedSequence((seed, 6)))

    latencies, responses, errors = [], [], []
    wall = 0.0
    folded = 0
    with _served(service) as base_url:
        for round_id in range(churn_rounds):
            users = schedules.zipf_users(n_users, requests_per_round,
                                         seed=seed + round_id)
            result = drive(base_url, users, n_threads=n_threads, k=top_k)
            offset = round_id * requests_per_round
            latencies.append(result.latencies)
            responses.extend(result.responses)
            errors.extend((offset + pos, user, exc)
                          for pos, user, exc in result.errors)
            wall += result.wall_seconds
            report = _post_update(
                base_url,
                rng.integers(0, n_users, size=events_per_round),
                rng.integers(0, n_items, size=events_per_round))
            folded += int(report.get("folded_in", False))
    combined = LoadResult(latencies=np.concatenate(latencies),
                          responses=responses, errors=errors,
                          wall_seconds=wall)
    boundaries = np.arange(churn_rounds + 1, dtype=np.int64) \
        * requests_per_round
    record = _base_record("catalog-churn", combined, boundaries)
    record.update(model="BPR-MF", n_users=n_users, n_items=n_items,
                  churn_rounds=churn_rounds, ann=service.scorer.ann_active,
                  folded_rounds=folded)
    return _finish(record, _capacity_checks(
        combined, top_k, min_req_per_sec, max_peak_rss_mb) + [
        ("ANN retrieval active", bool(service.scorer.ann_active)),
        (f"all {churn_rounds} churn rounds folded in",
         folded == churn_rounds),
    ])


def run_flash_crowd(
    seed: int = 0,
    n_users: int = 600,
    n_items: int = 200,
    n_requests: int = 320,
    n_threads: int = 4,
    top_k: int = 5,
    min_req_per_sec: float = 5.0,
    max_peak_rss_mb: float = 4096.0,
) -> dict:
    """A mid-run stampede onto a handful of users (cache pressure)."""
    from repro.experiments.registry import build_model
    from repro.serving.service import RecommendationService

    dataset = _stream_dataset(n_users, n_items, seed)
    model = build_model("BPR-MF", dataset, k=8, seed=seed)
    service = RecommendationService(model, dataset, top_k=top_k,
                                    cache_size=512)
    schedule = schedules.flash_crowd(n_users, n_requests, seed=seed)
    with _served(service) as base_url:
        result = drive(base_url, schedule, n_threads=n_threads, k=top_k)
    cache = service.stats()["cache"]
    record = _base_record("flash-crowd", result, schedule.boundaries)
    record.update(model="BPR-MF", n_users=n_users, n_items=n_items,
                  cache_hit_rate=cache.get("hit_rate", 0.0))
    return _finish(record, _capacity_checks(
        result, top_k, min_req_per_sec, max_peak_rss_mb) + [
        ("burst answered from cache (hits > 0)",
         cache.get("hits", 0) > 0),
    ])


def run_diurnal(
    seed: int = 0,
    n_users: int = 500,
    n_items: int = 200,
    n_requests: int = 320,
    n_threads: int = 2,
    top_k: int = 5,
    min_req_per_sec: float = 5.0,
    max_peak_rss_mb: float = 4096.0,
) -> dict:
    """Day-night volume: uneven windows over the same request budget."""
    from repro.experiments.registry import build_model
    from repro.serving.service import RecommendationService

    dataset = _stream_dataset(n_users, n_items, seed)
    model = build_model("BPR-MF", dataset, k=8, seed=seed)
    service = RecommendationService(model, dataset, top_k=top_k,
                                    cache_size=256)
    schedule = schedules.diurnal(n_users, n_requests, seed=seed)
    with _served(service) as base_url:
        result = drive(base_url, schedule, n_threads=n_threads, k=top_k)
    sizes = np.diff(schedule.boundaries)
    record = _base_record("diurnal", result, schedule.boundaries)
    record.update(model="BPR-MF", n_users=n_users, n_items=n_items,
                  peak_window_requests=int(sizes.max()),
                  trough_window_requests=int(sizes.min()))
    return _finish(record, _capacity_checks(
        result, top_k, min_req_per_sec, max_peak_rss_mb) + [
        ("volume actually diurnal (peak > trough)",
         int(sizes.max()) > int(sizes.min())),
    ])


def run_million_user(
    seed: int = 0,
    n_users: int = 1_000_000,
    n_items: int = 100_000,
    mean_events: float = 10.0,
    cold_frac: float = 0.05,
    window_events: int = 500_000,
    chunk_users: Optional[int] = None,
    model_name: str = "BPR-MF",
    k: int = 8,
    sample_users: int = 256,
    top_k: int = 10,
    min_gen_events_per_sec: float = 100_000.0,
    min_serve_users_per_sec: float = 20.0,
    max_peak_rss_mb: float = 1536.0,
    artifact_path: Optional[str] = None,
) -> dict:
    """The capacity run: stream → windowed snapshot → artifact → serve.

    Generates the full corpus chunk-by-chunk while keeping only the
    newest ``window_events`` in memory, builds a serving artifact from
    the windowed snapshot over the *full* 10⁶-user entity space, boots
    a service from the bundle, and batch-serves a seeded user sample.
    Gates: generation throughput floor, serving throughput floor, a
    peak-RSS ceiling (meaningful when run in a fresh process — the CLI
    path), and the no-materialization bound on buffered events.
    """
    from repro.experiments.registry import build_model
    from repro.serving.artifact import save_artifact
    from repro.serving.service import RecommendationService

    config = StreamConfig(n_users=n_users, n_items=n_items, seed=seed,
                          mean_events=mean_events, cold_frac=cold_frac)
    stats = CorpusStats(config)
    start = time.perf_counter()
    dataset, peak_buffered = windowed_snapshot(
        config, window_events, chunk_users=chunk_users, stats=stats)
    gen_seconds = time.perf_counter() - start
    gen_events_per_sec = stats.n_events / gen_seconds if gen_seconds else 0.0

    with contextlib.ExitStack() as stack:
        if artifact_path is None:
            tmpdir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-scenario-"))
            artifact_path = os.path.join(tmpdir, "million-user.npz")
        start = time.perf_counter()
        model = build_model(model_name, dataset, k=k, seed=seed)
        real_path = save_artifact(model, dataset, artifact_path, model_name,
                                  hyperparams={"k": k, "seed": seed})
        build_seconds = time.perf_counter() - start
        artifact_mb = os.path.getsize(real_path) / (1024.0 * 1024.0)

        service = RecommendationService.from_artifact(
            real_path, top_k=top_k, cache_size=0)
        rng = np.random.default_rng(np.random.SeedSequence((seed, 11)))
        sample = rng.integers(0, n_users, size=sample_users)
        start = time.perf_counter()
        recommendations = service.recommend_batch(sample)
        serve_seconds = time.perf_counter() - start
    serve_users_per_sec = (sample_users / serve_seconds
                           if serve_seconds else 0.0)
    complete = all(rec.items.size == top_k for rec in recommendations)

    record = {
        "benchmark": "scenario_capacity",
        "scenario": "million-user",
        "model": model_name,
        **stats.summary(),
        "window_events": window_events,
        "peak_buffered_events": peak_buffered,
        "gen_seconds": gen_seconds,
        "gen_events_per_sec": gen_events_per_sec,
        "build_seconds": build_seconds,
        "artifact_mb": artifact_mb,
        "serve_seconds": serve_seconds,
        "sample_users": sample_users,
        "serve_users_per_sec": serve_users_per_sec,
        "peak_rss_mb": peak_rss_mb(),
    }
    # The windowed adapter may briefly hold the window plus in-flight
    # chunks before trimming.  At scale (chunks tiny next to a 500k
    # window) the bound is 2x the window — ~20x under the full
    # 10^7-event corpus; the window + 2-chunk term keeps the gate
    # meaningful when a smoke run shrinks the window below chunk size.
    buffer_bound = max(2 * window_events,
                       window_events + 2 * stats.max_chunk_events)
    return _finish(record, [
        (f"all lists length {top_k}", complete),
        (f"generation >= {min_gen_events_per_sec:g} events/s",
         gen_events_per_sec >= min_gen_events_per_sec),
        (f"serving >= {min_serve_users_per_sec:g} users/s",
         serve_users_per_sec >= min_serve_users_per_sec),
        (f"peak RSS <= {max_peak_rss_mb:g} MB",
         peak_rss_mb() <= max_peak_rss_mb),
        ("interaction set never materialized "
         f"(buffered <= {buffer_bound} events)",
         peak_buffered <= buffer_bound),
    ])


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario: a runner plus its console summary."""

    name: str
    summary: str
    runner: Callable[..., dict]


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (
        ScenarioSpec(
            "cold-start-surge",
            "MAMO serves a surge of history-free users (launch traffic)",
            run_cold_start_surge),
        ScenarioSpec(
            "session-traffic",
            "TransFM serves sequential sessions with online fold-in",
            run_session_traffic),
        ScenarioSpec(
            "catalog-churn",
            "ANN retrieval under item-side fold-in / codebook rebuilds",
            run_catalog_churn),
        ScenarioSpec(
            "flash-crowd",
            "mid-run stampede onto a tiny hot user set (cache pressure)",
            run_flash_crowd),
        ScenarioSpec(
            "diurnal",
            "day-night request volume over even time windows",
            run_diurnal),
        ScenarioSpec(
            "million-user",
            "10^6-user corpus streamed through artifact build + serving",
            run_million_user),
    )
}


def list_scenarios() -> list[ScenarioSpec]:
    """Specs in registration order (stable for consoles and tests)."""
    return list(SCENARIOS.values())


def run_scenario(name: str, **overrides) -> dict:
    """Run one scenario by name; overrides feed the runner's keywords."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}")
    return SCENARIOS[name].runner(**overrides)
