"""Seeded arrival schedules: the traffic shapes serving gets hit with.

A schedule is the request mix of one load run: ``users[i]`` is the user
queried by request ``i``, and ``boundaries`` split the request stream
into logical windows for per-window latency/error stats
(:meth:`repro.scenarios.loadgen.LoadResult.window_stats`).  Every
builder is a pure function of its arguments plus an explicit ``seed``
— reruns replay the identical stream, which is what makes the scenario
capacity records reproducible.

:func:`zipf_users` is the canonical hot-head mix the load tests have
always used; it moved here verbatim from ``tests/serving/loadgen.py``
(which now re-exports it) and its output is pinned byte-for-byte by a
regression test.  The adversarial shapes compose around it:

- :func:`flash_crowd` — a mid-run burst concentrates traffic on a tiny
  hot set (cache stampede / celebrity event);
- :func:`diurnal` — window sizes follow a day-night cosine, so the
  same request budget arrives unevenly (peak-hour pressure);
- :func:`cold_start_surge` — after launch, a share of traffic shifts
  to users with no interactions at all (the MAMO serving path);
- :func:`sessions` — consecutive runs of same-user requests
  (sequential consumption, the TransFM traffic shape).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sub-stream tags so a composed schedule never replays the base
#: Zipf stream's draws.
_TAG_FLASH = 1
_TAG_COLD = 2


@dataclass(frozen=True)
class Schedule:
    """A request mix plus its logical window boundaries."""

    name: str
    users: np.ndarray       # int64 [n_requests]
    boundaries: np.ndarray  # int64 [n_windows + 1], 0 .. n_requests

    @property
    def n_requests(self) -> int:
        return int(self.users.size)

    @property
    def n_windows(self) -> int:
        return int(self.boundaries.size - 1)


def even_windows(n_requests: int, n_windows: int) -> np.ndarray:
    """Boundaries of ``n_windows`` near-equal windows over the stream."""
    if n_requests < 1 or n_windows < 1:
        raise ValueError("n_requests and n_windows must be positive")
    n_windows = min(n_windows, n_requests)
    return np.linspace(0, n_requests, n_windows + 1).astype(np.int64)


def zipf_users(n_users: int, n_requests: int, seed: int = 0,
               alpha: float = 1.3) -> np.ndarray:
    """``int64 [n_requests]`` seeded Zipf-skewed user ids.

    ``alpha`` is the Zipf exponent (heavier head for larger values);
    draws beyond ``n_users`` are redrawn by modular fold so every id
    stays valid without truncating the distribution's support order.
    """
    if n_users < 1 or n_requests < 1:
        raise ValueError("n_users and n_requests must be positive")
    rng = np.random.default_rng(seed)
    ranks = (rng.zipf(alpha, size=n_requests) - 1) % n_users
    # Decouple "hot" from "low id": rank r serves the r-th user of a
    # seeded permutation, so shard routing sees scattered hot users.
    permutation = rng.permutation(n_users)
    return permutation[ranks].astype(np.int64)


def uniform_users(n_users: int, n_requests: int, seed: int = 0) -> np.ndarray:
    """Uniform request mix — the no-skew control schedule."""
    if n_users < 1 or n_requests < 1:
        raise ValueError("n_users and n_requests must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_users, size=n_requests, dtype=np.int64)


def flash_crowd(
    n_users: int,
    n_requests: int,
    seed: int = 0,
    alpha: float = 1.3,
    hot_users: int = 8,
    burst_start: float = 0.5,
    burst_frac: float = 0.25,
    burst_share: float = 0.9,
    n_windows: int = 8,
) -> Schedule:
    """Zipf background with a mid-run stampede onto a tiny hot set.

    Requests in the burst window (``burst_frac`` of the stream starting
    at position ``burst_start``) hit one of ``hot_users`` seeded users
    with probability ``burst_share``; everything else keeps the Zipf
    mix.  Window boundaries are even, so the burst spans whole windows
    and shows up as a hit-rate/latency step in the per-window stats.
    """
    if not 0.0 <= burst_start <= 1.0 or not 0.0 < burst_frac <= 1.0:
        raise ValueError("burst_start in [0,1] and burst_frac in (0,1] required")
    if not 0.0 <= burst_share <= 1.0:
        raise ValueError("burst_share must be in [0, 1]")
    hot_users = max(1, min(hot_users, n_users))
    users = zipf_users(n_users, n_requests, seed=seed, alpha=alpha)
    rng = np.random.default_rng(np.random.SeedSequence((seed, _TAG_FLASH)))
    hot = rng.choice(n_users, size=hot_users, replace=False)
    lo = int(burst_start * n_requests)
    hi = min(n_requests, lo + max(1, int(burst_frac * n_requests)))
    stampede = rng.random(hi - lo) < burst_share
    users[lo:hi] = np.where(
        stampede, hot[rng.integers(0, hot_users, size=hi - lo)], users[lo:hi])
    return Schedule(name="flash-crowd", users=users,
                    boundaries=even_windows(n_requests, n_windows))


def diurnal(
    n_users: int,
    n_requests: int,
    seed: int = 0,
    alpha: float = 1.3,
    n_windows: int = 8,
    trough: float = 0.25,
) -> Schedule:
    """Day-night load shape: even time windows, cosine request volume.

    The request *mix* stays Zipf; what varies is how many of the
    ``n_requests`` land in each of the ``n_windows`` equal time slices
    — window ``j`` receives a share proportional to
    ``trough + (1 - trough) * (1 - cos(2πj/n)) / 2``, so the quietest
    window carries ``trough`` times the peak's traffic.
    """
    if not 0.0 < trough <= 1.0:
        raise ValueError("trough must be in (0, 1]")
    n_windows = max(1, min(n_windows, n_requests))
    phase = 2.0 * np.pi * np.arange(n_windows) / n_windows
    weights = trough + (1.0 - trough) * (1.0 - np.cos(phase)) / 2.0
    quota = np.floor(weights / weights.sum() * n_requests).astype(np.int64)
    quota = np.maximum(quota, 1)
    # Hand the rounding remainder to the busiest window (deterministic).
    quota[int(np.argmax(weights))] += n_requests - int(quota.sum())
    boundaries = np.concatenate(([0], np.cumsum(quota))).astype(np.int64)
    users = zipf_users(n_users, n_requests, seed=seed, alpha=alpha)
    return Schedule(name="diurnal", users=users, boundaries=boundaries)


def cold_start_surge(
    n_users: int,
    cold_users: np.ndarray,
    n_requests: int,
    seed: int = 0,
    alpha: float = 1.3,
    surge_start: float = 0.5,
    surge_share: float = 0.8,
    n_windows: int = 8,
    exclude: "np.ndarray | None" = None,
) -> Schedule:
    """Launch-day traffic: warm Zipf mix, then a cold-user surge.

    Before ``surge_start`` every request comes from the warm Zipf mix
    (cold ids are remapped away); after it, each request queries a
    uniform cold user with probability ``surge_share``.  This is the
    schedule that pushes a cold-start model's no-history path through
    serving at volume.  ``exclude`` drops ids from the warm pool
    entirely — e.g. users so saturated a full-length unseen list is
    infeasible.
    """
    cold_users = np.asarray(cold_users, dtype=np.int64)
    if cold_users.size == 0:
        raise ValueError("cold_users must be non-empty")
    if not 0.0 <= surge_start <= 1.0 or not 0.0 <= surge_share <= 1.0:
        raise ValueError("surge_start and surge_share must be in [0, 1]")
    cold_set = np.zeros(n_users, dtype=bool)
    cold_set[cold_users] = True
    drop = cold_set.copy()
    if exclude is not None:
        drop[np.asarray(exclude, dtype=np.int64)] = True
    warm = np.flatnonzero(~drop).astype(np.int64)
    if warm.size == 0:
        raise ValueError("at least one warm user is required")
    base = zipf_users(warm.size, n_requests, seed=seed, alpha=alpha)
    users = warm[base]
    rng = np.random.default_rng(np.random.SeedSequence((seed, _TAG_COLD)))
    lo = int(surge_start * n_requests)
    surging = rng.random(n_requests - lo) < surge_share
    users[lo:] = np.where(
        surging,
        cold_users[rng.integers(0, cold_users.size, size=n_requests - lo)],
        users[lo:])
    return Schedule(name="cold-start-surge", users=users,
                    boundaries=even_windows(n_requests, n_windows))


def sessions(
    n_users: int,
    n_sessions: int,
    session_len: int,
    seed: int = 0,
    alpha: float = 1.3,
) -> Schedule:
    """Sequential consumption: runs of ``session_len`` same-user requests.

    Session owners are drawn from the Zipf mix; each window boundary is
    one session, so per-window stats read as per-session stats.
    """
    if n_sessions < 1 or session_len < 1:
        raise ValueError("n_sessions and session_len must be positive")
    owners = zipf_users(n_users, n_sessions, seed=seed, alpha=alpha)
    users = np.repeat(owners, session_len)
    boundaries = np.arange(n_sessions + 1, dtype=np.int64) * session_len
    return Schedule(name="sessions", users=users, boundaries=boundaries)
