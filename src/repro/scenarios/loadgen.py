"""Seeded load generation against a live recommendation HTTP server.

Grown out of ``tests/serving/loadgen.py`` (which now re-exports this
module, so the existing load tests and cluster benchmarks are
byte-identical): same multi-threaded closed-loop driver, same latency
accounting, plus two generalizations the scenario engine needs —

- :func:`drive` accepts either a bare user-id array or a
  :class:`~repro.scenarios.schedules.Schedule` (any object with a
  ``users`` array attribute), so adversarial arrival shapes plug in
  without touching the driver;
- :meth:`LoadResult.window_stats` folds the per-request latencies and
  errors into per-window summaries along a schedule's boundaries, so a
  flash crowd or diurnal peak is visible as numbers, not vibes.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from repro.scenarios.schedules import zipf_users  # noqa: F401  (re-export)


def resolve_schedule(schedule) -> np.ndarray:
    """User-id array of a schedule: accepts arrays and Schedule-likes."""
    users = getattr(schedule, "users", schedule)
    users = np.asarray(users, dtype=np.int64)
    if users.ndim != 1 or users.size == 0:
        raise ValueError("schedule must resolve to a non-empty 1-d id array")
    return users


@dataclass
class LoadResult:
    """Outcome of one multi-threaded drive against a server."""

    latencies: np.ndarray               # seconds, request order per thread
    responses: list                     # parsed JSON bodies, schedule order
    errors: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_requests(self) -> int:
        return int(self.latencies.size)

    @property
    def requests_per_sec(self) -> float:
        return self.n_requests / self.wall_seconds if self.wall_seconds else 0.0

    def percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.latencies, q) * 1000.0)

    def summary(self) -> dict:
        return {
            "requests": self.n_requests,
            "errors": len(self.errors),
            "req_per_sec": self.requests_per_sec,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
        }

    def window_stats(self, boundaries: np.ndarray) -> list[dict]:
        """Per-window request/error/latency summaries.

        ``boundaries`` is a ``[n_windows + 1]`` monotone array of
        request positions (a :class:`Schedule`'s ``boundaries``); the
        last boundary must not exceed the request count.  Empty windows
        report zero requests and ``NaN`` percentiles.
        """
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise ValueError("boundaries must hold at least two positions")
        if (np.any(np.diff(boundaries) < 0) or boundaries[0] < 0
                or boundaries[-1] > self.n_requests):
            raise ValueError("boundaries must be monotone within the stream")
        error_positions = np.array([pos for pos, _user, _exc in self.errors],
                                   dtype=np.int64)
        stats = []
        for window, (lo, hi) in enumerate(
                zip(boundaries[:-1].tolist(), boundaries[1:].tolist())):
            lats = self.latencies[lo:hi]
            n_errors = int(((error_positions >= lo)
                            & (error_positions < hi)).sum())
            stats.append({
                "window": window,
                "start": lo,
                "requests": int(lats.size),
                "errors": n_errors,
                "p50_ms": float(np.percentile(lats, 50) * 1000.0)
                if lats.size else float("nan"),
                "p99_ms": float(np.percentile(lats, 99) * 1000.0)
                if lats.size else float("nan"),
            })
        return stats


def drive(base_url: str, users, n_threads: int = 4,
          k: int = 5, timeout: float = 30.0) -> LoadResult:
    """Drive ``GET /recommend`` for every scheduled user, concurrently.

    ``users`` is a user-id array or any schedule object exposing one
    (``schedules.Schedule``).  The stream is split round-robin across
    ``n_threads`` client threads (deterministic partition, so reruns
    issue identical per-thread streams).  Responses land back in
    schedule order; failures are collected, never raised — the caller
    asserts on ``errors`` so a load test reports *all* failures, not
    the first.
    """
    users = resolve_schedule(users)
    slots: list = [None] * users.size
    latencies = np.zeros(users.size)
    errors: list = []
    error_lock = threading.Lock()

    def client(thread_id: int) -> None:
        for pos in range(thread_id, users.size, n_threads):
            url = f"{base_url}/recommend?user={users[pos]}&k={k}"
            start = time.perf_counter()
            try:
                with urllib.request.urlopen(url, timeout=timeout) as resp:
                    body = json.loads(resp.read())
                latencies[pos] = time.perf_counter() - start
                slots[pos] = body
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                latencies[pos] = time.perf_counter() - start
                with error_lock:
                    errors.append((pos, int(users[pos]), repr(exc)))

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(n_threads)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return LoadResult(latencies=latencies, responses=slots, errors=errors,
                      wall_seconds=wall)
