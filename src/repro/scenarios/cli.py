"""``repro scenario`` — run the adversarial workload scenarios.

Usage::

    python -m repro scenario list
    python -m repro scenario run flash-crowd
    python -m repro scenario run million-user --json
    python -m repro scenario run diurnal --set n_requests=64 --set n_users=80

``run`` exits 0 iff the scenario's capacity gate passed, so a CI step
can invoke one scenario directly.  ``--json`` prints the full record as
one JSON document on stdout (the million-user capacity benchmark runs
the CLI in a fresh subprocess exactly for this: the record's
``peak_rss_mb`` is then the *scenario's* peak, not the test session's).
``--set key=value`` overrides any runner keyword (ints/floats/strings
are coerced by literal shape).
"""

from __future__ import annotations

import json


def add_scenario_parser(sub) -> None:
    """Attach the ``scenario`` subcommand to the root CLI parser."""
    scenario = sub.add_parser(
        "scenario",
        help="run adversarial workload scenarios (repro.scenarios)")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)
    scenario_sub.add_parser("list", help="list scenario names + summaries")
    run = scenario_sub.add_parser(
        "run", help="run one scenario and print its capacity record")
    run.add_argument("name", help="scenario name (see `repro scenario list`)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the full record as JSON (machine path)")
    run.add_argument("--set", action="append", default=[], dest="overrides",
                     metavar="KEY=VALUE",
                     help="override a scenario parameter, e.g. "
                          "--set n_requests=64 (repeatable)")


def _coerce(text: str):
    """int → float → string, by literal shape."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {pair!r}")
        overrides[key] = _coerce(value)
    return overrides


def scenario_main(args) -> int:
    """Back the ``repro scenario`` subcommand; returns the exit code."""
    from repro.scenarios.engine import list_scenarios, run_scenario

    if args.scenario_command == "list":
        for spec in list_scenarios():
            print(f"{spec.name:18s} {spec.summary}")
        return 0

    overrides = _parse_overrides(args.overrides)
    overrides.setdefault("seed", args.seed)
    try:
        record = run_scenario(args.name, **overrides)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    except TypeError as exc:
        raise SystemExit(f"bad override for scenario {args.name!r}: {exc}")

    if args.as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(f"scenario {args.name}: "
              f"{'PASS' if record['gate_passed'] else 'FAIL'}")
        for key in sorted(record):
            if key in ("checks", "windows", "gate_passed"):
                continue
            print(f"  {key}: {record[key]}")
        for name, ok in record["checks"].items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return 0 if record["gate_passed"] else 1
