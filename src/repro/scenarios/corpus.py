"""Chunked, seeded corpus streaming for million-user scenarios.

``data.synthetic`` materializes whole corpora in memory, which caps it
at benchmark scale.  This module generates the same *kind* of corpus —
Zipf-popular items, clustered tastes, bursty per-user sessions — as a
**stream of chunks**, so a 10⁶-user / 10⁵-item interaction set flows
through artifact builds and serving without ever existing as one array.

Determinism contract (the whole point of this module):

- Events are derived per fixed-size **user block** of :data:`BLOCK_USERS`
  users from ``SeedSequence((seed, _BLOCK_TAG, block))``.  The consumer's
  chunk size only *slices* that stream — it never touches an RNG — so
  any chunk size (1, 7, 64, everything) yields the byte-identical
  corpus.  ``tests/scenarios/test_corpus_stream.py`` asserts this
  byte-exactly with Hypothesis.
- The item catalogue (cluster assignment + popularity weights) is a
  pure function of ``(seed, n_items, n_clusters, zipf_alpha)`` and
  costs O(n_items) memory; per-block state costs O(block events).

The adapters at the bottom feed the streamed chunks into the existing
online data plane: :func:`stream_to_log` fills an
:class:`~repro.data.streaming.InteractionLog` (small corpora),
:func:`windowed_snapshot` keeps only the newest ``window_events`` in
memory (capacity corpora), and :func:`build_stream_artifact` turns a
windowed snapshot into a serving bundle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.data.streaming import InteractionLog

#: Users per internal RNG block.  This is part of the corpus *format*:
#: changing it changes every generated corpus, exactly like changing
#: the seed.  Small enough that a block (~12k events) is cheap to
#: regenerate when a consumer asks for 1-user chunks, large enough
#: that per-block vectorization dominates.
BLOCK_USERS = 1024

#: Sub-stream tags under the corpus seed (catalogue vs. event blocks).
_CATALOG_TAG = 0
_BLOCK_TAG = 1

#: Log-normal shape of the per-user event counts (heavy-ish tail, like
#: the real activity distributions the paper's datasets show).
_COUNT_SIGMA = 0.6


@dataclass(frozen=True)
class StreamConfig:
    """Pure-value recipe for one streamed corpus.

    Two configs are the same corpus iff they are equal — every event is
    a deterministic function of these fields and nothing else.

    ``mean_events`` is the nominal per-user activity scale (the median
    of the log-normal count distribution); ``cold_frac`` reserves the
    trailing fraction of the user space as *cold* users that generate
    no interactions at all (the cold-start scenarios query them).
    """

    n_users: int
    n_items: int
    seed: int = 0
    mean_events: float = 10.0
    min_events: int = 1
    n_clusters: int = 64
    affinity: float = 0.7
    zipf_alpha: float = 1.0
    cold_frac: float = 0.0
    horizon: int = 1_000_000

    def __post_init__(self):
        if self.n_users < 1 or self.n_items < 1:
            raise ValueError("n_users and n_items must be positive")
        if self.mean_events <= 0:
            raise ValueError("mean_events must be positive")
        if self.min_events < 0:
            raise ValueError("min_events must be >= 0")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if not 0.0 <= self.affinity <= 1.0:
            raise ValueError("affinity must be in [0, 1]")
        if not 0.0 <= self.cold_frac < 1.0:
            raise ValueError("cold_frac must be in [0, 1)")
        if self.horizon < 1:
            raise ValueError("horizon must be positive")

    @property
    def n_cold(self) -> int:
        """Trailing users that generate no events."""
        return min(int(round(self.cold_frac * self.n_users)),
                   self.n_users - 1)

    @property
    def warm_users(self) -> int:
        """Users ``[0, warm_users)`` generate events."""
        return self.n_users - self.n_cold

    @property
    def cold_user_ids(self) -> np.ndarray:
        """``int64`` ids of the interaction-free cold users."""
        return np.arange(self.warm_users, self.n_users, dtype=np.int64)


@dataclass(frozen=True)
class CorpusChunk:
    """All events of users ``[user_lo, user_hi)``, in user order."""

    user_lo: int
    user_hi: int
    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray

    @property
    def n_events(self) -> int:
        return int(self.users.size)


@dataclass
class _Catalog:
    """O(n_items) item-side state shared by every block."""

    n_clusters: int
    order: np.ndarray      # item ids grouped by cluster
    starts: np.ndarray     # [n_clusters] group start in ``order``
    stops: np.ndarray      # [n_clusters] group stop in ``order``
    cum: np.ndarray        # cumulative popularity over ``order``


@dataclass
class _Block:
    """One generated user block (users ``[lo, hi)``)."""

    lo: int
    hi: int
    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray
    bounds: np.ndarray     # [hi-lo+1] per-user event offsets


def _catalog(config: StreamConfig) -> _Catalog:
    """Cluster assignment + popularity CDF, seeded under the config."""
    rng = np.random.default_rng(
        np.random.SeedSequence((config.seed, _CATALOG_TAG)))
    n_clusters = min(config.n_clusters, config.n_items)
    # A shuffled round-robin keeps every cluster non-empty (an empty
    # cluster would make the inverse-CDF draw below degenerate).
    clusters = rng.permutation(config.n_items) % n_clusters
    # Zipf popularity over a seeded rank permutation, so "popular" is
    # decoupled from "low item id" (mirrors data.synthetic).
    ranks = rng.permutation(config.n_items).astype(np.float64)
    weights = (ranks + 1.0) ** -config.zipf_alpha
    order = np.argsort(clusters, kind="stable").astype(np.int64)
    sorted_clusters = clusters[order]
    starts = np.searchsorted(sorted_clusters, np.arange(n_clusters), "left")
    stops = np.searchsorted(sorted_clusters, np.arange(n_clusters), "right")
    return _Catalog(n_clusters=n_clusters, order=order, starts=starts,
                    stops=stops, cum=np.cumsum(weights[order]))


def _block_events(config: StreamConfig, catalog: _Catalog,
                  block: int) -> _Block:
    """Generate one fixed user block; pure in ``(config, block)``."""
    lo = block * BLOCK_USERS
    hi = min(lo + BLOCK_USERS, config.warm_users)
    rng = np.random.default_rng(
        np.random.SeedSequence((config.seed, _BLOCK_TAG, block)))
    n = hi - lo
    raw = rng.lognormal(mean=np.log(config.mean_events),
                        sigma=_COUNT_SIGMA, size=n)
    counts = np.maximum(config.min_events, np.rint(raw)).astype(np.int64)
    home = rng.integers(0, catalog.n_clusters, size=n)
    session_start = rng.integers(0, config.horizon, size=n)

    total = int(counts.sum())
    users = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
    ev_cluster = np.repeat(home, counts)
    stray = rng.random(total) >= config.affinity
    n_stray = int(stray.sum())
    if n_stray:
        ev_cluster[stray] = rng.integers(0, catalog.n_clusters, size=n_stray)

    # Popularity-weighted item draw per cluster: inverse CDF over the
    # cluster's slice of the global cumulative weights.  The loop runs
    # over <= n_clusters groups, never over events.
    pick = rng.random(total)
    items = np.empty(total, dtype=np.int64)
    for c in range(catalog.n_clusters):
        mask = ev_cluster == c
        if not mask.any():
            continue
        start, stop = int(catalog.starts[c]), int(catalog.stops[c])
        base = catalog.cum[start - 1] if start else 0.0
        span = catalog.cum[stop - 1] - base
        pos = np.searchsorted(catalog.cum[start:stop],
                              base + pick[mask] * span, "left")
        items[mask] = catalog.order[start
                                    + np.minimum(pos, stop - start - 1)]

    bounds = np.concatenate(
        ([0], np.cumsum(counts))).astype(np.int64)
    # Each user's events tick monotonically from their session start.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(bounds[:-1], counts)
    timestamps = np.repeat(session_start, counts) + offsets
    return _Block(lo=lo, hi=hi, users=users, items=items,
                  timestamps=timestamps, bounds=bounds)


def stream_corpus(config: StreamConfig,
                  chunk_users: Optional[int] = None) -> Iterator[CorpusChunk]:
    """Yield the corpus as user-aligned chunks of ``chunk_users`` users.

    A chunk carries every event of its user range (possibly zero, for
    cold ranges).  Concatenating the chunks of *any* ``chunk_users``
    yields byte-identical ``users``/``items``/``timestamps`` streams:
    generation happens per fixed internal block and chunking only
    slices.  Peak memory is O(block + chunk) events.
    """
    chunk_users = BLOCK_USERS if chunk_users is None else int(chunk_users)
    if chunk_users < 1:
        raise ValueError("chunk_users must be positive")
    catalog = _catalog(config)
    current: Optional[_Block] = None
    empty = np.empty(0, dtype=np.int64)
    for lo in range(0, config.n_users, chunk_users):
        hi = min(lo + chunk_users, config.n_users)
        warm_hi = min(hi, config.warm_users)
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        user = lo
        while user < warm_hi:
            block = user // BLOCK_USERS
            if current is None or current.lo != block * BLOCK_USERS:
                current = _block_events(config, catalog, block)
            seg_hi = min(warm_hi, current.hi)
            s = int(current.bounds[user - current.lo])
            e = int(current.bounds[seg_hi - current.lo])
            parts.append((current.users[s:e], current.items[s:e],
                          current.timestamps[s:e]))
            user = seg_hi
        if not parts:
            users = items = timestamps = empty
        elif len(parts) == 1:
            users, items, timestamps = parts[0]
        else:
            users = np.concatenate([p[0] for p in parts])
            items = np.concatenate([p[1] for p in parts])
            timestamps = np.concatenate([p[2] for p in parts])
        yield CorpusChunk(user_lo=lo, user_hi=hi, users=users,
                          items=items, timestamps=timestamps)


def materialize(config: StreamConfig,
                chunk_users: Optional[int] = None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whole corpus as three arrays — test oracle for small configs."""
    chunks = list(stream_corpus(config, chunk_users=chunk_users))
    return (np.concatenate([c.users for c in chunks]),
            np.concatenate([c.items for c in chunks]),
            np.concatenate([c.timestamps for c in chunks]))


# ----------------------------------------------------------------------
# Streaming aggregates (the set-oracle side of the property tests, and
# the stats block of capacity records).
# ----------------------------------------------------------------------
@dataclass
class CorpusStats:
    """O(n_items + max degree) aggregates accumulated while streaming."""

    config: StreamConfig
    n_events: int = 0
    n_active_users: int = 0
    max_chunk_events: int = 0
    item_degrees: np.ndarray = field(default=None)  # type: ignore[assignment]
    user_degree_hist: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64))
    min_timestamp: int = np.iinfo(np.int64).max
    max_timestamp: int = np.iinfo(np.int64).min

    def __post_init__(self):
        if self.item_degrees is None:
            self.item_degrees = np.zeros(self.config.n_items, dtype=np.int64)

    def update(self, chunk: CorpusChunk) -> None:
        span = chunk.user_hi - chunk.user_lo
        self.max_chunk_events = max(self.max_chunk_events, chunk.n_events)
        if chunk.n_events == 0:
            self.user_degree_hist[0] += span
            return
        self.n_events += chunk.n_events
        self.item_degrees += np.bincount(chunk.items,
                                         minlength=self.config.n_items)
        # chunk.users is sorted (user-order by construction), so the
        # per-user degrees fall out of one unique pass.
        uniques, counts = np.unique(chunk.users, return_counts=True)
        self.n_active_users += int(uniques.size)
        top = int(counts.max())
        if top >= self.user_degree_hist.size:
            grown = np.zeros(top + 1, dtype=np.int64)
            grown[:self.user_degree_hist.size] = self.user_degree_hist
            self.user_degree_hist = grown
        self.user_degree_hist += np.bincount(
            counts, minlength=self.user_degree_hist.size)
        self.user_degree_hist[0] += span - int(uniques.size)
        self.min_timestamp = min(self.min_timestamp,
                                 int(chunk.timestamps.min()))
        self.max_timestamp = max(self.max_timestamp,
                                 int(chunk.timestamps.max()))

    def summary(self) -> dict:
        return {
            "n_users": self.config.n_users,
            "n_items": self.config.n_items,
            "n_events": self.n_events,
            "n_active_users": self.n_active_users,
            "n_cold_users": self.config.n_cold,
            "max_item_degree": int(self.item_degrees.max()),
            "max_user_degree": int(self.user_degree_hist.size - 1),
        }


# ----------------------------------------------------------------------
# Adapters into the online data plane
# ----------------------------------------------------------------------
def stream_to_log(config: StreamConfig,
                  chunk_users: Optional[int] = None,
                  max_events: Optional[int] = None) -> InteractionLog:
    """Fill an :class:`InteractionLog` from the stream.

    This *does* materialize (the log holds every ingested event), so it
    is the small-corpus adapter; ``max_events`` truncates the stream at
    a chunk boundary for bounded smoke runs.  Capacity corpora go
    through :func:`windowed_snapshot` instead.
    """
    log = InteractionLog(config.n_users, config.n_items, capacity=1024)
    for chunk in stream_corpus(config, chunk_users=chunk_users):
        if chunk.n_events:
            log.extend(chunk.users, chunk.items, chunk.timestamps)
        if max_events is not None and len(log) >= max_events:
            break
    return log


def windowed_snapshot(
    config: StreamConfig,
    window_events: int,
    chunk_users: Optional[int] = None,
    name: str = "scenario-stream",
    stats: Optional[CorpusStats] = None,
) -> tuple[RecDataset, int]:
    """Stream the corpus, keeping only the newest ``window_events``.

    Returns ``(dataset, peak_buffered_events)``: the dataset holds the
    final window over the *full* entity space (``n_users`` × ``n_items``
    straight from the config, so models and serving address every user),
    and the peak counts how many events were ever buffered at once —
    the million-user capacity gate asserts it stays O(window + chunk),
    i.e. the full interaction set was never materialized.

    Pass a :class:`CorpusStats` to also accumulate whole-corpus
    aggregates in the same single pass.
    """
    if window_events < 1:
        raise ValueError("window_events must be positive")
    buffer: deque[tuple[np.ndarray, np.ndarray, np.ndarray]] = deque()
    buffered = 0
    peak_buffered = 0
    for chunk in stream_corpus(config, chunk_users=chunk_users):
        if stats is not None:
            stats.update(chunk)
        if chunk.n_events == 0:
            continue
        buffer.append((chunk.users, chunk.items, chunk.timestamps))
        buffered += chunk.n_events
        peak_buffered = max(peak_buffered, buffered)
        while buffer and buffered - buffer[0][0].size >= window_events:
            buffered -= buffer.popleft()[0].size
    if buffer:
        users = np.concatenate([part[0] for part in buffer])
        items = np.concatenate([part[1] for part in buffer])
        timestamps = np.concatenate([part[2] for part in buffer])
        if users.size > window_events:
            users = users[-window_events:]
            items = items[-window_events:]
            timestamps = timestamps[-window_events:]
    else:  # pragma: no cover - requires an all-cold corpus
        users = items = timestamps = np.empty(0, dtype=np.int64)
    dataset = RecDataset(
        name=f"{name}@{users.size}",
        n_users=config.n_users,
        n_items=config.n_items,
        users=users,
        items=items,
        timestamps=timestamps,
    )
    return dataset, peak_buffered


def build_stream_artifact(
    config: StreamConfig,
    path: str,
    model_name: str = "BPR-MF",
    k: int = 8,
    window_events: int = 262_144,
    chunk_users: Optional[int] = None,
    seed: int = 0,
    stats: Optional[CorpusStats] = None,
) -> tuple[str, RecDataset, int]:
    """Stream → windowed snapshot → registry model → serving bundle.

    Returns ``(artifact_path, snapshot_dataset, peak_buffered_events)``.
    The model is *initialized*, not trained — capacity scenarios gate
    throughput and memory, not quality, and an init-state model scores
    through exactly the same serving path as a trained one.
    """
    from repro.experiments.registry import build_model
    from repro.serving.artifact import save_artifact

    dataset, peak_buffered = windowed_snapshot(
        config, window_events, chunk_users=chunk_users, stats=stats)
    model = build_model(model_name, dataset, k=k, seed=seed)
    real_path = save_artifact(model, dataset, path, model_name,
                              hyperparams={"k": k, "seed": seed})
    return real_path, dataset, peak_buffered
