"""The shared AST-walking engine behind ``repro lint``.

Responsibilities: file discovery, parsing, running the registered rules
(:mod:`repro.lint.rules`), inline suppressions, and rendering a
:class:`LintReport` as human text or JSON.

Suppressions
------------
A finding is silenced by an inline comment on the *same physical line*::

    rng = np.random.default_rng()  # repro: allow(det-unseeded-rng): caller opted out of seeding

The comment names exactly the rule ids it silences (comma-separated for
several) and everything after the closing ``):`` is the justification.
Suppression hygiene is itself linted:

- an unknown rule id in an allow comment is a ``lint-unknown-rule``
  finding (typos must not silently disable nothing);
- under ``--strict``, an allow comment with no justification text is a
  ``lint-no-justification`` finding — every suppression must say *why*
  the contract does not apply.

Meta findings (``lint-*``) cannot themselves be suppressed, and
project-rule findings (live registry cross-checks) have no source line
to carry a comment, so they cannot be suppressed either.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.lint.rules import RULES, Rule, load_rules, register

#: Matches ``repro: allow(rule-a, rule-b): why`` inside comment tokens.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([^)]*?)\s*\)\s*(?::\s*(.*\S))?\s*$")


@dataclass(frozen=True)
class Suppression:
    """One allow comment: which rules it silences on its line, and why."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored at ``path:line``."""

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line,
                "rule": self.rule_id, "message": self.message}


class SourceModule:
    """A parsed source file plus the per-file facts rules share.

    ``scoped_path`` is the path relative to the scan root that
    discovered the file (``serving/cache.py`` when scanning the
    package dir) — rule scoping matches against it, so fixture trees
    can reproduce any scope by mirroring the directory name.
    """

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.display_path = _display(path)
        try:
            self.scoped_path = path.relative_to(root).as_posix()
        except ValueError:
            self.scoped_path = path.name
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.suppressions: dict[int, Suppression] = _parse_suppressions(
            self.source)
        self._parents: Optional[dict[ast.AST, ast.AST]] = None

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent map over the module AST (computed once)."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        return Finding(self.display_path, getattr(node, "lineno", 0),
                       rule.id, message)


def _display(path: Path) -> str:
    """Repo-relative path when possible, else the absolute path."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    """Allow comments by line, read from real comment tokens.

    Tokenizing (rather than regex over raw lines) keeps string literals
    that merely *mention* the allow syntax — like the examples in this
    docstring — from acting as suppressions.
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(",")
                    if part.strip())
        out[token.start[0]] = Suppression(
            line=token.start[0], rule_ids=ids,
            justification=(match.group(2) or "").strip())
    return out


# ----------------------------------------------------------------------
# Meta rules: suppression hygiene, emitted by the engine itself
# ----------------------------------------------------------------------
@register
class UnknownRuleInAllow(Rule):
    id = "lint-unknown-rule"
    summary = ("an allow comment names a rule id that does not exist "
               "(typo: it silences nothing)")
    meta = True


@register
class AllowWithoutJustification(Rule):
    id = "lint-no-justification"
    summary = ("strict mode: an allow comment carries no justification "
               "text after the rule list")
    meta = True


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int
    strict: bool = False
    rule_ids: tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "strict": self.strict,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "rules": list(self.rule_ids),
            "findings": [finding.to_dict() for finding in self.findings],
        }, indent=2, sort_keys=False)

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        state = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(
            f"repro lint: {state} — {self.files_checked} file(s) checked, "
            f"{self.suppressed} finding(s) suppressed"
            f"{' [strict]' if self.strict else ''}")
        return "\n".join(lines)


def default_target() -> Path:
    """The installed ``repro`` package directory (the default scan)."""
    return Path(__file__).resolve().parents[1]


def discover(paths: Optional[Sequence[Union[str, Path]]] = None,
             ) -> list[tuple[Path, Path]]:
    """Resolve arguments to ``(file, scan_root)`` pairs.

    Directories scan recursively with themselves as the scope root;
    bare files use their parent directory.
    """
    targets = [Path(p) for p in paths] if paths else [default_target()]
    out: list[tuple[Path, Path]] = []
    for target in targets:
        if target.is_dir():
            out.extend((file, target)
                       for file in sorted(target.rglob("*.py"))
                       if "__pycache__" not in file.parts)
        elif target.is_file():
            out.append((target, target.parent))
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
    return out


def run_lint(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    strict: bool = False,
    project_rules: bool = True,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` (default: the ``repro`` package) with all rules.

    ``rule_ids`` restricts the run to a subset (unknown ids raise);
    ``project_rules=False`` skips the live-registry cross-checks, which
    import and instantiate the model registry.
    """
    catalog = load_rules()
    if rule_ids is not None:
        unknown = sorted(set(rule_ids) - set(catalog))
        if unknown:
            raise ValueError(f"unknown rule ids: {unknown}")
        selected = {rid: catalog[rid] for rid in rule_ids}
    else:
        selected = dict(catalog)

    findings: list[Finding] = []
    suppressed = 0
    files = discover(paths)
    for path, root in files:
        module = SourceModule(path, root)
        raw: list[Finding] = []
        for rule in selected.values():
            if rule.meta or rule.project or not rule.applies_to(module):
                continue
            raw.extend(rule.check_module(module))
        for finding in raw:
            sup = module.suppressions.get(finding.line)
            if sup is not None and finding.rule_id in sup.rule_ids:
                suppressed += 1
            else:
                findings.append(finding)
        findings.extend(_suppression_hygiene(module, catalog, strict))
    if project_rules:
        for rule in selected.values():
            if rule.project:
                findings.extend(rule.check_project())
    return LintReport(findings=sorted(findings), files_checked=len(files),
                      suppressed=suppressed, strict=strict,
                      rule_ids=tuple(sorted(selected)))


def _suppression_hygiene(module: SourceModule, catalog: dict[str, Rule],
                         strict: bool) -> Iterable[Finding]:
    """Meta findings over the module's allow comments (unsuppressable)."""
    for sup in module.suppressions.values():
        for rid in sup.rule_ids:
            if rid not in catalog:
                yield Finding(
                    module.display_path, sup.line, "lint-unknown-rule",
                    f"allow comment names unknown rule {rid!r}; it "
                    f"silences nothing (known ids: see `repro lint "
                    f"--format json`)")
        if strict and not sup.justification:
            yield Finding(
                module.display_path, sup.line, "lint-no-justification",
                "allow comment has no justification; write "
                "`# repro: allow(<rule>): <why this is safe>`")
