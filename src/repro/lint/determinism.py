"""Determinism rules: the byte-identical-results contract, statically.

Every past determinism regression in this repo entered through one of
four doors: an unseeded RNG stream, a ``PYTHONHASHSEED``-salted
``hash()`` (the PR 1 synthetic-corpus bug), a wall-clock read on a
scoring path, or set-iteration order leaking into ordered output.
These rules close each door at commit time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.engine import Finding, SourceModule
from repro.lint.rules import Rule, register

#: Modules whose responses/records must be wall-clock free (monotonic
#: measurement clocks excepted): the serving plane, the evaluation
#: scorers, the experiment runners that write paper tables, and the
#: scenario engine whose capacity records must replay identically.
SCORING_SCOPE = ("serving/", "experiments/", "scenarios/",
                 "training/evaluation.py")

#: Legacy numpy module-level RNG entry points (global hidden state).
_NUMPY_GLOBAL_FNS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "binomial",
    "poisson", "beta", "gamma", "exponential", "standard_normal",
})

#: Stdlib ``random`` module functions that draw from the global stream.
_STDLIB_RANDOM_FNS = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "betavariate", "randbytes",
    "getrandbits",
})

#: Order-insensitive consumers: a set-typed iterable feeding one of
#: these cannot leak iteration order into output.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRng(Rule):
    id = "det-unseeded-rng"
    summary = ("RNG with no seed: np.random.default_rng()/RandomState() "
               "without arguments, numpy's module-level global stream, or "
               "the stdlib random module")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            tail = parts[-1]
            if tail in ("default_rng", "RandomState"):
                if not node.args and not node.keywords:
                    yield module.finding(
                        self, node,
                        f"{tail}() with no seed draws from OS entropy; "
                        f"pass a seed (or a Generator) so the stream is "
                        f"reproducible")
                continue
            if (len(parts) >= 3 and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                    and tail in _NUMPY_GLOBAL_FNS):
                yield module.finding(
                    self, node,
                    f"np.random.{tail} uses numpy's hidden global RNG "
                    f"state; use an explicit np.random.default_rng(seed)")
            elif (len(parts) == 2 and parts[0] == "random"
                    and tail in _STDLIB_RANDOM_FNS):
                yield module.finding(
                    self, node,
                    f"random.{tail} draws from the stdlib global RNG; use "
                    f"an explicit np.random.default_rng(seed)")


@register
class HashBuiltin(Rule):
    id = "det-hash-builtin"
    summary = ("builtin hash() is salted per process (PYTHONHASHSEED) for "
               "str/bytes and anything containing them")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                yield module.finding(
                    self, node,
                    "builtin hash() is PYTHONHASHSEED-salted for strings "
                    "and tuples of strings — results change across "
                    "processes; derive keys with zlib.crc32 or a stable "
                    "encoding instead (the PR 1 hash(category) seed bug)")


@register
class WallClock(Rule):
    id = "det-wallclock"
    summary = ("wall-clock / entropy read in a scoring or response module "
               "(serving/, experiments/, scenarios/, "
               "training/evaluation.py); only monotonic measurement clocks "
               "are allowed there")
    scope = SCORING_SCOPE

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            tail = parts[-1]
            base = parts[0]
            # Carve-out: monotonic measurement clocks never enter
            # response payloads' *values*; benchmarking with them is
            # the sanctioned pattern (time.monotonic/perf_counter).
            if base == "time" and tail in ("time", "time_ns"):
                offender = f"time.{tail}"
            elif "datetime" in parts[:-1] and tail in ("now", "utcnow",
                                                       "today"):
                offender = name
            elif base == "os" and tail == "urandom":
                offender = "os.urandom"
            elif base == "uuid" and len(parts) == 2:
                offender = name
            else:
                continue
            yield module.finding(
                self, node,
                f"{offender} in a scoring/response module breaks "
                f"replayability; use time.monotonic()/time.perf_counter() "
                f"for measurement, and carry request-supplied timestamps "
                f"for payloads")


def _is_set_expr(node: ast.AST) -> bool:
    """Does this expression produce a set (unordered iteration)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        # Set algebra: the result of &, |, ^, - over sets is a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIteration(Rule):
    id = "det-set-iteration"
    summary = ("iterating a set feeds hash-order into downstream output; "
               "sort before iterating (order-insensitive reducers like "
               "sorted()/sum() are exempt)")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        parents = module.parents()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self._finding(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                if not any(_is_set_expr(gen.iter)
                           for gen in node.generators):
                    continue
                if self._order_insensitive_consumer(node, parents):
                    continue
                yield self._finding(module, node)

    def _order_insensitive_consumer(self, node: ast.AST,
                                    parents: dict) -> bool:
        """``sorted(x for x in some_set)`` and friends are fine."""
        if isinstance(node, ast.SetComp):
            return True     # produces a set again; order never existed
        parent = parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE
                and node in parent.args)

    def _finding(self, module: SourceModule, node: ast.AST) -> Finding:
        return module.finding(
            self, node,
            "set iteration order depends on element hashes "
            "(PYTHONHASHSEED for strings); wrap the set in sorted() "
            "before iterating, or feed an order-insensitive reducer")
