"""``repro lint`` — run the static contract checker from the CLI.

Exit status is the gate: 0 when clean, 1 when any finding survives
(suppression hygiene included).  ``--format json`` emits a
machine-readable report (findings + the rule catalog) for CI
annotation; ``--strict`` additionally requires every suppression to
carry a justification.
"""

from __future__ import annotations

from repro.lint.engine import run_lint
from repro.lint.rules import load_rules


def add_lint_parser(sub) -> None:
    """Attach the ``lint`` subcommand to the main CLI's subparsers."""
    lint = sub.add_parser(
        "lint",
        help="static contract checker: determinism, lock discipline, "
             "registry hooks (repro.lint)")
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check (default: the installed "
             "repro package source)")
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      dest="output_format",
                      help="human-readable lines or a JSON report")
    lint.add_argument("--strict", action="store_true",
                      help="suppressions without a justification comment "
                           "become findings")
    lint.add_argument("--no-registry", action="store_true",
                      dest="no_registry",
                      help="skip the live model-registry cross-checks "
                           "(pure AST rules only; faster, no imports)")
    lint.add_argument("--rules", nargs="+", default=None,
                      help="restrict the run to these rule ids")


def lint_main(args) -> int:
    report = run_lint(
        paths=args.paths or None,
        strict=args.strict,
        project_rules=not args.no_registry,
        rule_ids=args.rules,
    )
    if args.output_format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def rule_catalog() -> dict[str, str]:
    """``{rule id: summary}`` for docs and the JSON report."""
    return {rule_id: rule.summary
            for rule_id, rule in sorted(load_rules().items())}
