"""Mmap-write rule: serving code must not mutate parameter arrays.

Serving processes may hold their model parameters as memory-mapped
**read-only** views (``load_artifact(..., mmap=True)``): one page cache
shared by every shard/replica on the host.  An in-place write into such
an array either crashes (``writeable=False`` → numpy's opaque
``ValueError: assignment destination is read-only``) or — were the map
writable — would silently privatize pages and corrupt the artifact on
disk.  The serving plane therefore treats parameter storage
(``tensor.data``) as immutable: code that needs to change a table
*rebinds* a private copy (``param.data = param.data.copy()``, the
copy-on-first-write pattern in :mod:`repro.training.online`) or routes
the mutation through the training-side fold-in path, which owns that
policy.

Flagged inside ``serving/``:

- subscript stores into a ``.data`` array — ``p.data[rows] = v``,
  ``p.data[rows] -= v``;
- augmented assignment onto ``.data`` itself — ``p.data += v``
  (numpy ``+=`` mutates in place; ``p.data = p.data + v`` rebinds and
  is fine);
- in-place ndarray method calls — ``p.data.fill(0)``, ``.sort()``, …;
- numpy in-place helpers aimed at a ``.data`` array —
  ``np.copyto(p.data, v)``, ``np.put``, ``np.putmask``, ``np.place``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.determinism import dotted_name
from repro.lint.engine import Finding, SourceModule
from repro.lint.rules import Rule, register

#: The serving plane: the only place models are rebuilt over read-only
#: mmapped views, so the only place the immutability contract binds.
MMAP_SCOPE = ("serving/",)

#: ndarray methods that mutate the array they are called on.
_INPLACE_METHODS = frozenset({
    "fill", "sort", "partition", "put", "itemset", "setfield", "resize",
})

#: ``np.<helper>(dst, ...)`` functions whose first argument is written.
_INPLACE_NP_FUNCS = frozenset({
    "copyto", "put", "putmask", "place", "put_along_axis",
})


def _is_param_storage(node: ast.AST) -> bool:
    """Whether an expression reads ``<something>.data`` (tensor storage)."""
    return isinstance(node, ast.Attribute) and node.attr == "data"


@register
class MmapWrite(Rule):
    id = "mmap-write"
    summary = ("in-place mutation of parameter storage (tensor .data) in "
               "serving/ crashes on read-only mmapped artifacts; rebind a "
               "private copy or go through the training fold-in path")
    scope = MMAP_SCOPE

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from self._check_target(module, node, target)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_target(self, module: SourceModule, stmt: ast.stmt,
                      target: ast.expr) -> Iterable[Finding]:
        # p.data[rows] = v / p.data[rows] -= v: a store through a
        # subscript of parameter storage.
        if (isinstance(target, ast.Subscript)
                and _is_param_storage(target.value)):
            yield module.finding(
                self, stmt,
                "subscript store into parameter storage (`.data[...]`) "
                "mutates a possibly mmapped read-only array; rebind a "
                "private copy first (`param.data = param.data.copy()`) or "
                "move the mutation to the training fold-in path")
        # p.data += v: numpy augmented assignment mutates in place
        # (plain rebinding `p.data = ...` is the sanctioned pattern).
        elif isinstance(stmt, ast.AugAssign) and _is_param_storage(target):
            yield module.finding(
                self, stmt,
                "augmented assignment onto parameter storage (`.data`) "
                "mutates the array in place; use a rebinding form "
                "(`param.data = param.data + ...`) on a private copy")

    def _check_call(self, module: SourceModule,
                    call: ast.Call) -> Iterable[Finding]:
        func = call.func
        # p.data.fill(0) and friends: ndarray methods that write self.
        if (isinstance(func, ast.Attribute)
                and func.attr in _INPLACE_METHODS
                and _is_param_storage(func.value)):
            yield module.finding(
                self, call,
                f"`.data.{func.attr}(...)` mutates parameter storage in "
                f"place; operate on a rebound private copy instead")
            return
        # np.copyto(p.data, v) and friends: the first argument is the
        # destination being written.
        name = dotted_name(func) if isinstance(func, ast.Attribute) else None
        if name is None or not call.args:
            return
        parts = name.split(".")
        if (len(parts) == 2 and parts[0] in ("np", "numpy")
                and parts[1] in _INPLACE_NP_FUNCS):
            dst = call.args[0]
            if isinstance(dst, ast.Subscript):
                dst = dst.value
            if _is_param_storage(dst):
                yield module.finding(
                    self, call,
                    f"{name}(...) writes into parameter storage "
                    f"(`.data`) in place; operate on a rebound private "
                    f"copy instead")
