"""Static contract checking for the repro codebase (``repro lint``).

This package is a *linter*, not a paper-analysis tool — the paper's
t-SNE / cold-start studies live in :mod:`repro.analysis`; nothing here
touches model outputs.  ``repro.lint`` walks the source tree's ASTs and
machine-checks the contracts the rest of the repo only promises in
docstrings:

- **Determinism** (:mod:`repro.lint.determinism`): no unseeded RNG
  streams, no ``PYTHONHASHSEED``-dependent ``hash()``, no wall-clock
  reads in scoring paths, no iteration over unordered sets feeding
  ordered output.
- **Lock discipline** (:mod:`repro.lint.locks`): attributes a class
  guards with ``with self._lock:`` in one method must be guarded in
  every method, and no blocking call may run while a lock is held.
- **Registry contracts** (:mod:`repro.lint.contracts`): every model in
  the live :mod:`repro.experiments.registry` implements the
  grid-factor hooks in pairs and supports fold-in; counter properties
  stay ints; obs metric names follow the snake_case unit-suffix
  convention.

Findings carry ``file:line`` plus a rule id and can be silenced inline
with ``# repro: allow(<rule-id>): <justification>`` — see
:mod:`repro.lint.engine`.  The tier-1 gate
(``tests/lint/test_codebase_clean.py``) keeps ``src/repro`` free of
unsuppressed findings on every commit.
"""

from repro.lint.engine import Finding, LintReport, run_lint
from repro.lint.rules import RULES, Rule

__all__ = ["Finding", "LintReport", "Rule", "RULES", "run_lint"]
