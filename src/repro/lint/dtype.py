"""Dtype-discipline rule: keep model/training code backend-polymorphic.

The training engine's precision is owned by one seam —
:mod:`repro.autograd.backend` — and every tensor created under a
backend context inherits its dtype (``active_dtype()``).  A hard-coded
``np.float64`` / ``np.float32`` (or the legacy ``DTYPE`` constant from
``repro.autograd.tensor``) inside ``models/`` or ``training/`` pins an
array to one precision regardless of the selected backend, which either
silently upcasts a float32 training run back to float64 (losing the
fused backend's bandwidth win) or desyncs parameter dtypes from the
optimizer's state buffers.

The fix is almost always one of:

- derive the dtype from data that already has one
  (``param.data.dtype``, ``scores.data.dtype``);
- call :func:`repro.autograd.backend.active_dtype` for fresh arrays;
- or, where a float64 policy is deliberate (metric accumulation,
  degree normalization), keep the literal and suppress with a
  justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.determinism import dotted_name
from repro.lint.engine import Finding, SourceModule
from repro.lint.rules import Rule, register

#: Where backend polymorphism is mandatory: the model zoo and the
#: training stack.  The backend seam itself (``autograd/``) and
#: precision-pinned planes (serving responses, analysis) are exempt.
DTYPE_SCOPE = ("models/", "training/")

_FLOAT_LITERALS = frozenset({"float64", "float32"})


@register
class HardcodedDtype(Rule):
    id = "dtype-hardcoded"
    summary = ("hard-coded np.float64/np.float32 (or the legacy DTYPE "
               "constant) in models/ or training/ pins arrays to one "
               "precision behind the backend seam's back; use "
               "active_dtype() or an existing array's .dtype")
    scope = DTYPE_SCOPE

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                parts = name.split(".")
                if (len(parts) == 2 and parts[0] in ("np", "numpy")
                        and parts[1] in _FLOAT_LITERALS):
                    yield module.finding(
                        self, node,
                        f"{name} hard-codes the array precision; derive it "
                        f"from repro.autograd.backend.active_dtype() or an "
                        f"existing array's .dtype so both backends train "
                        f"in their own dtype")
            elif isinstance(node, ast.Name) and node.id == "DTYPE":
                if isinstance(node.ctx, ast.Load):
                    yield module.finding(
                        self, node,
                        "DTYPE is the legacy reference-backend constant "
                        "(float64); model/training code must follow the "
                        "active backend via active_dtype() or an existing "
                        "array's .dtype")
