"""Lock-discipline rules: a lightweight static race detector.

The contract (serving/obs planes): if a class creates a
``threading.Lock``/``RLock`` in ``__init__`` and guards writes to some
attribute with ``with self._lock:`` in *one* method, then *every*
method writing that attribute must hold the lock — a guarded-sometimes
attribute is exactly the shape of the public-``LRUCache`` race fixed in
PR 5.  Separately, blocking calls (sleep, subprocess, socket) must not
run while a lock is held: they turn a mutex into a convoy.

False-positive guard (asserted in the fixture tests): a private method
whose every intra-class call site already holds the lock is treated as
lock-held itself (``stats()`` taking the lock then delegating to
``_stats_locked()`` is the sanctioned pattern), propagated to a
fixpoint so locked helpers calling locked helpers stay clean.  Known
blind spots, on purpose: writes through ``other.attr`` (cross-object),
mutation via method calls (``self._data.clear()`` — tracked only for
subscript stores), and closures defined under a lock but run later
(scanned as unlocked-neutral: neither guarded nor violating).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.determinism import dotted_name
from repro.lint.engine import Finding, SourceModule
from repro.lint.rules import Rule, register

#: Calls that block the holder of a lock (module-qualified prefixes
#: checked against the dotted call name).
_BLOCKING_PREFIXES = ("subprocess.", "socket.")
_BLOCKING_EXACT = frozenset({"time.sleep", "sleep", "os.system",
                             "os.wait", "os.waitpid"})


def _is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in ("Lock", "RLock")


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` for an ``self.X`` expression, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _write_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _written_attr(target: ast.expr) -> Optional[str]:
    """Attribute of ``self`` this target stores into (incl. ``self.x[k]``)."""
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    return _self_attr(target)


@dataclass
class _Event:
    """One fact recorded inside a method body."""

    line: int
    locked: bool
    attr: str = ""       # writes
    callee: str = ""     # intra-class self.<m>() calls
    blocking: str = ""   # blocking call description


@dataclass
class _MethodFacts:
    name: str
    writes: list[_Event] = field(default_factory=list)
    calls: list[_Event] = field(default_factory=list)
    blocking: list[_Event] = field(default_factory=list)


class _ClassAnalysis:
    """Per-class lock facts: lock attrs, per-method events, fixpoint."""

    def __init__(self, classdef: ast.ClassDef):
        self.classdef = classdef
        self.methods: dict[str, _MethodFacts] = {}
        self.lock_attrs = self._find_lock_attrs()
        if self.lock_attrs:
            for item in classdef.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    facts = _MethodFacts(item.name)
                    for stmt in item.body:
                        self._scan(stmt, False, facts)
                    self.methods[item.name] = facts
        self.assumed_locked = self._fixpoint()

    def _find_lock_attrs(self) -> frozenset[str]:
        for item in self.classdef.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                return frozenset(
                    attr for stmt in ast.walk(item)
                    for target in _write_targets(stmt)
                    if (attr := _self_attr(target)) is not None
                    and _is_lock_ctor(getattr(stmt, "value", None)))
        return frozenset()

    def _holds_lock(self, with_node: ast.With) -> bool:
        return any(_self_attr(item.context_expr) in self.lock_attrs
                   for item in with_node.items)

    def _scan(self, node: ast.AST, locked: bool, facts: _MethodFacts) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return  # closures/nested defs run in an unknown lock context
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or self._holds_lock(node)
            for item in node.items:
                self._scan(item.context_expr, locked, facts)
            for stmt in node.body:
                self._scan(stmt, inner, facts)
            return
        for target in _write_targets(node) if isinstance(node, ast.stmt) else ():
            attr = _written_attr(target)
            if attr is not None:
                facts.writes.append(_Event(node.lineno, locked, attr=attr))
        if isinstance(node, ast.Call):
            callee = _self_attr(node.func)
            if callee is not None:
                facts.calls.append(_Event(node.lineno, locked, callee=callee))
            name = dotted_name(node.func)
            if name is not None and (
                    name in _BLOCKING_EXACT
                    or name.startswith(_BLOCKING_PREFIXES)):
                facts.blocking.append(
                    _Event(node.lineno, locked, blocking=name))
        for child in ast.iter_child_nodes(node):
            self._scan(child, locked, facts)

    def _fixpoint(self) -> frozenset[str]:
        """Private methods whose every call site holds the lock."""
        sites: dict[str, list[tuple[str, bool]]] = {}
        for caller, facts in self.methods.items():
            for event in facts.calls:
                sites.setdefault(event.callee, []).append(
                    (caller, event.locked))
        assumed: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in self.methods:
                if (name in assumed or not name.startswith("_")
                        or name == "__init__"):
                    continue
                callers = sites.get(name)
                if callers and all(locked or caller in assumed
                                   for caller, locked in callers):
                    assumed.add(name)
                    changed = True
        return frozenset(assumed)

    def effective_locked(self, method: str, event: _Event) -> bool:
        return event.locked or method in self.assumed_locked

    def guarded_attrs(self) -> frozenset[str]:
        return frozenset(
            event.attr for name, facts in self.methods.items()
            if name != "__init__"
            for event in facts.writes
            if self.effective_locked(name, event))


def _classes(module: SourceModule) -> Iterable[ast.ClassDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            yield node


@register
class UnguardedWrite(Rule):
    id = "lock-unguarded-write"
    summary = ("an attribute guarded by `with self._lock:` in one method "
               "is written without the lock in another")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for classdef in _classes(module):
            analysis = _ClassAnalysis(classdef)
            if not analysis.lock_attrs:
                continue
            guarded = analysis.guarded_attrs()
            if not guarded:
                continue
            locks = "/".join(sorted(analysis.lock_attrs))
            for name, facts in analysis.methods.items():
                if name == "__init__":
                    continue
                for event in facts.writes:
                    if (event.attr in guarded
                            and not analysis.effective_locked(name, event)):
                        yield Finding(
                            module.display_path, event.line, self.id,
                            f"{classdef.name}.{name} writes "
                            f"'self.{event.attr}' without holding "
                            f"self.{locks}, but other methods guard that "
                            f"attribute with the lock — hold it here too "
                            f"(or route through a locked helper)")


@register
class BlockingUnderLock(Rule):
    id = "lock-blocking-call"
    summary = ("a blocking call (sleep/subprocess/socket) runs while a "
               "threading lock is held")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for classdef in _classes(module):
            analysis = _ClassAnalysis(classdef)
            if not analysis.lock_attrs:
                continue
            for name, facts in analysis.methods.items():
                for event in facts.blocking:
                    if analysis.effective_locked(name, event):
                        yield Finding(
                            module.display_path, event.line, self.id,
                            f"{classdef.name}.{name} calls "
                            f"{event.blocking} while holding a lock; "
                            f"every other thread convoys behind this "
                            f"call — move it outside the locked region")
