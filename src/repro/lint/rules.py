"""Rule protocol and registry for :mod:`repro.lint`.

A rule is a small object with a stable ``id`` (the token used in
``# repro: allow(<id>)`` suppressions), a one-line ``summary`` for the
rule catalog, and one of two check surfaces:

- :meth:`Rule.check_module` — called once per parsed source file with a
  :class:`~repro.lint.engine.SourceModule`; the common, pure-AST case.
- :meth:`Rule.check_project` — called once per lint run, independent of
  which files were scanned; used by the registry-contract rules that
  import the live model registry and cross-check it.

``scope`` restricts a module rule to path prefixes *relative to the
scan root* (``"serving/"``, ``"training/evaluation.py"``), which is how
the wall-clock rule applies only to scoring/response modules while the
RNG rules cover everything.

Rules self-register at import time via :func:`register`; the engine
calls :func:`load_rules` so importing :mod:`repro.lint` is enough to
see the full catalog in :data:`RULES`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, SourceModule


class Rule:
    """One checkable contract; subclass and :func:`register`."""

    #: Stable identifier, e.g. ``det-unseeded-rng``.
    id: str = ""
    #: One-line description for ``--format json`` and the docs catalog.
    summary: str = ""
    #: Path prefixes (scan-root relative, posix) the rule applies to;
    #: ``None`` applies everywhere.
    scope: Optional[tuple[str, ...]] = None
    #: Meta rules are emitted by the engine itself (suppression
    #: hygiene) and can never be suppressed.
    meta: bool = False
    #: Project rules run once per lint run via :meth:`check_project`.
    project: bool = False

    def applies_to(self, module: "SourceModule") -> bool:
        if self.scope is None:
            return True
        return module.scoped_path.startswith(self.scope)

    def check_module(self, module: "SourceModule") -> Iterable["Finding"]:
        return ()

    def check_project(self) -> Iterable["Finding"]:
        return ()


#: All registered rules keyed by id; populated by :func:`load_rules`.
RULES: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and index the rule by id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_cls


def load_rules() -> dict[str, Rule]:
    """Import every rule module (idempotent) and return the catalog."""
    from repro.lint import (contracts, determinism, dtype,  # noqa: F401
                            locks, mmapwrite)

    return RULES
