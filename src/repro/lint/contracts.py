"""Registry-contract rules: cross-check the live model registry.

Unlike the AST families, the two ``reg-*`` rules import
:mod:`repro.experiments.registry`, instantiate every registered model
on a tiny synthetic dataset, and verify class-level contracts the
serving plane depends on:

- ``reg-grid-pair`` — :meth:`grid_factor_items` and
  :meth:`grid_factor_users` are overridden *in pairs*: overriding only
  one leaves ANN retrieval with factors it cannot query (or queries it
  cannot factor), which fails at serving time, not import time.
- ``reg-fold-in`` — every registered model overrides
  :meth:`fold_in_targets` (the base returns ``[]`` = "no fold-in"), so
  ``repro serve --online`` and ``repro replay`` cover the whole
  registry.

Two further contracts are checkable purely from source and run as
module rules over the whole tree:

- ``reg-counter-int`` — a property reading a registry counter
  (``self._m_*.value``) must wrap it in ``int()``: metric values are
  floats, and the PR 6 refresh-sampling bug came from exactly one
  counter property leaking a float into a seed expression.
- ``obs-metric-name`` — metric names handed to a registry follow the
  Prometheus convention: snake_case, counters end ``_total``,
  histograms end with a unit suffix.
"""

from __future__ import annotations

import ast
import functools
import inspect
import re
from typing import Iterable, Optional

from repro.lint.engine import Finding, SourceModule
from repro.lint.rules import Rule, register

_HISTOGRAM_SUFFIXES = ("_seconds", "_bytes", "_total", "_ratio", "_ns")


@functools.lru_cache(maxsize=1)
def registry_model_classes() -> dict[str, type]:
    """``{paper name: class}`` for every registered model (deduplicated).

    Instantiates each model once on a tiny synthetic dataset — the
    registry's factory is the only source of truth for what is
    actually servable, so the check builds what serving would build.
    """
    from repro.data.synthetic import make_dataset
    from repro.experiments.registry import (RATING_MODELS,
                                            SERVING_ONLY_MODELS, TOPN_MODELS,
                                            build_model)

    dataset = make_dataset("movielens", seed=0, scale=0.05)
    names = list(dict.fromkeys(RATING_MODELS + TOPN_MODELS
                               + SERVING_ONLY_MODELS))
    return {name: type(build_model(name, dataset, k=4, seed=0))
            for name in names}


def _class_anchor(cls: type) -> tuple[str, int]:
    """``(path, line)`` of a class definition for finding anchors."""
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):  # pragma: no cover - C extensions only
        path, line = "<unknown>", 0
    return path, line


def _overrides(cls: type, base: type, method: str) -> bool:
    return getattr(cls, method) is not getattr(base, method)


def check_model_contracts(models: dict[str, type]) -> list[Finding]:
    """Grid-pair and fold-in findings for a name → class mapping.

    Parameterized so the fixture tests can feed deliberately broken
    classes; the registered rules call it with the live registry.
    """
    from repro.models.base import RecommenderModel

    findings: list[Finding] = []
    for name, cls in sorted(models.items()):
        path, line = _class_anchor(cls)
        items = _overrides(cls, RecommenderModel, "grid_factor_items")
        users = _overrides(cls, RecommenderModel, "grid_factor_users")
        if items != users:
            present, missing = (("grid_factor_items", "grid_factor_users")
                                if items else
                                ("grid_factor_users", "grid_factor_items"))
            findings.append(Finding(
                path, line, "reg-grid-pair",
                f"model {name!r} ({cls.__name__}) overrides {present} but "
                f"not {missing}; the bilinear decomposition hooks must be "
                f"overridden in pairs or ANN retrieval fails at serving "
                f"time"))
        fold_in = getattr(cls, "fold_in_targets", None)
        if fold_in is None or not callable(fold_in) or not _overrides(
                cls, RecommenderModel, "fold_in_targets"):
            findings.append(Finding(
                path, line, "reg-fold-in",
                f"model {name!r} ({cls.__name__}) does not override "
                f"fold_in_targets; every registered model must support "
                f"incremental fold-in (repro serve --online, repro "
                f"replay)"))
    return findings


@register
class GridFactorPair(Rule):
    id = "reg-grid-pair"
    summary = ("registry models must override grid_factor_items/"
               "grid_factor_users in pairs (ANN decomposition hooks)")
    project = True

    def check_project(self) -> Iterable[Finding]:
        return [finding for finding in
                check_model_contracts(registry_model_classes())
                if finding.rule_id == self.id]


@register
class FoldInSupported(Rule):
    id = "reg-fold-in"
    summary = ("every registered model must override fold_in_targets "
               "(incremental updates cover the whole registry)")
    project = True

    def check_project(self) -> Iterable[Finding]:
        return [finding for finding in
                check_model_contracts(registry_model_classes())
                if finding.rule_id == self.id]


# ----------------------------------------------------------------------
# Source-level contracts (module rules)
# ----------------------------------------------------------------------
@register
class CounterPropertyInt(Rule):
    id = "reg-counter-int"
    summary = ("a property reading a metric handle (self._m_*.value) must "
               "return int(...) — metric values are floats")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        parents = module.parents()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not any(isinstance(dec, ast.Name) and dec.id == "property"
                       for dec in node.decorator_list):
                continue
            for read in ast.walk(node):
                if not self._is_metric_value_read(read):
                    continue
                if not self._int_wrapped(read, node, parents):
                    yield Finding(
                        module.display_path, read.lineno, self.id,
                        f"property {node.name!r} returns a metric value "
                        f"without int(): Counter/Gauge values are floats, "
                        f"and a float leaking into seed arithmetic caused "
                        f"the PR 6 refresh-sampling bug — wrap in int()")

    @staticmethod
    def _is_metric_value_read(node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == "value"
                and isinstance(node.value, ast.Attribute)
                and node.value.attr.startswith("_m_")
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self")

    @staticmethod
    def _int_wrapped(node: ast.AST, stop: ast.AST, parents: dict) -> bool:
        current = parents.get(node)
        while current is not None and current is not stop:
            if (isinstance(current, ast.Call)
                    and isinstance(current.func, ast.Name)
                    and current.func.id == "int"):
                return True
            current = parents.get(current)
        return False


@register
class MetricNameConvention(Rule):
    id = "obs-metric-name"
    summary = ("metric names must be snake_case; counters end _total, "
               "histograms end with a unit suffix (_seconds/_bytes/...)")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            kind = node.func.attr
            if kind not in ("counter", "gauge", "histogram"):
                continue
            # Only calls through an object that is recognizably a
            # metrics registry; keeps collections.Counter and friends
            # out of scope.
            receiver = ast.unparse(node.func.value).lower()
            if "registry" not in receiver:
                continue
            name_arg = self._name_arg(node)
            if name_arg is None:
                continue
            constant, trailing = self._literal_parts(name_arg)
            if constant is None:
                continue
            for message in self._violations(kind, constant, trailing):
                yield Finding(module.display_path, node.lineno, self.id,
                              message)

    @staticmethod
    def _name_arg(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "name":
                return keyword.value
        return None

    @staticmethod
    def _literal_parts(arg: ast.expr) -> tuple[Optional[str], Optional[str]]:
        """``(all constant text, trailing constant)`` of the name arg.

        Plain strings return themselves twice; f-strings return their
        constant segments joined (charset check) and the last segment
        (suffix check), skipping interpolated holes.  Non-literal names
        return ``(None, None)`` — not statically checkable.
        """
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value, arg.value
        if isinstance(arg, ast.JoinedStr):
            constants = [part.value for part in arg.values
                         if isinstance(part, ast.Constant)
                         and isinstance(part.value, str)]
            if not constants:
                return None, None
            trailing = (arg.values[-1].value
                        if isinstance(arg.values[-1], ast.Constant)
                        else None)
            return "".join(constants), trailing
        return None, None

    @staticmethod
    def _violations(kind: str, constant: str,
                    trailing: Optional[str]) -> Iterable[str]:
        if not re.fullmatch(r"[a-z0-9_]+", constant) or "__" in constant:
            yield (f"metric name {constant!r} is not snake_case "
                   f"(lowercase letters, digits, single underscores)")
        if kind == "counter" and (trailing is None
                                  or not trailing.endswith("_total")):
            yield (f"counter name {constant!r} must end with '_total' "
                   f"(Prometheus counter convention)")
        if kind == "histogram" and (
                trailing is None
                or not trailing.endswith(_HISTOGRAM_SUFFIXES)):
            yield (f"histogram name {constant!r} must end with a unit "
                   f"suffix ({', '.join(_HISTOGRAM_SUFFIXES)})")
