"""Self-describing model bundles for serving processes.

``training.persistence`` stores bare parameter arrays and leaves the
architecture to the caller; that is fine inside one script but useless
for a serving process that only receives a file.  An *artifact* bundles
everything a fresh process needs into a single ``.npz`` archive:

- the model's registry name and hyperparameters,
- the dataset encoding metadata (entity counts, attribute tables and
  their field order, so the rebuilt :class:`FeatureSpace` assigns the
  exact same global feature indices),
- the interaction log (drives seen-item masking) plus the training
  interactions graph models built their propagation graph from, and
- the parameter arrays themselves.

``load_artifact`` reconstructs model + dataset without touching any
training code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel
from repro.training.persistence import normalize_npz_path

#: Bumped when the archive layout changes incompatibly.
ARTIFACT_VERSION = 1

_META_KEY = "__meta__"
_PARAM_PREFIX = "param::"
_ATTR_TEMPLATE = "attr::{side}::{name}::{part}"


@dataclass
class LoadedArtifact:
    """Everything :func:`load_artifact` reconstructs from one archive."""

    model: RecommenderModel
    dataset: RecDataset
    model_name: str
    hyperparams: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)


def _known_model_names() -> set[str]:
    from repro.experiments.registry import (RATING_MODELS,
                                            SERVING_ONLY_MODELS, TOPN_MODELS)

    return set(RATING_MODELS) | set(TOPN_MODELS) | set(SERVING_ONLY_MODELS)


def save_artifact(
    model: RecommenderModel,
    dataset: RecDataset,
    path: str,
    model_name: str,
    hyperparams: Optional[dict] = None,
    train_interactions: Optional[tuple[np.ndarray, np.ndarray]] = None,
) -> str:
    """Write a self-describing serving bundle; returns the real path.

    The rebuild recipe is validated *at save time*: a skeleton model is
    constructed from ``(model_name, hyperparams)`` and its parameter
    shapes checked against ``model``, so a bundle that cannot be loaded
    fails here — while the training run still exists — rather than in
    the serving process.

    Parameters
    ----------
    model:
        The trained model whose parameters are bundled.
    dataset:
        Supplies the encoding metadata and the interaction log.
    path:
        Target file; ``.npz`` is appended when missing.
    model_name:
        The model's :mod:`repro.experiments.registry` name (e.g.
        ``"GML-FMmd"``) — the recipe ``load_artifact`` uses to rebuild
        the architecture.
    hyperparams:
        Keyword arguments forwarded to ``registry.build_model`` at load
        time (``k``, ``seed``); defaults to the model's own ``k`` and
        seed 0.
    train_interactions:
        ``(users, items)`` the model's propagation graph was built from
        — only meaningful for graph models (NGCF).  Defaults to the
        dataset's full interaction log; pass the actual training split
        so the rebuilt model scores identically to the evaluated one.
    """
    known = _known_model_names()
    if model_name not in known:
        raise KeyError(f"unknown model {model_name!r}; options: {sorted(known)}")
    if hyperparams is None:
        hyperparams = {}
    hyperparams = {"k": getattr(model, "k", 16), "seed": 0, **hyperparams}
    if train_interactions is None:
        graph_users, graph_items = dataset.users, dataset.items
    else:
        graph_users = np.asarray(train_interactions[0], dtype=np.int64)
        graph_items = np.asarray(train_interactions[1], dtype=np.int64)

    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")

    # Dry-run the load-time rebuild: unknown hyperparams raise here
    # (TypeError from build_model) and architecture drift is reported
    # as a shape diff instead of a load_state_dict failure later.
    from repro.experiments.registry import build_model

    skeleton = build_model(model_name, dataset,
                           train_users=graph_users, train_items=graph_items,
                           **hyperparams)
    skeleton_state = skeleton.state_dict()
    mismatches = sorted(
        set(state) ^ set(skeleton_state)
    ) + sorted(
        name for name in set(state) & set(skeleton_state)
        if state[name].shape != skeleton_state[name].shape
    )
    if mismatches:
        raise ValueError(
            f"{model_name!r} with hyperparams {hyperparams} does not rebuild "
            f"this model's architecture; mismatched parameters: {mismatches}")

    meta = {
        "format": "repro-artifact",
        "version": ARTIFACT_VERSION,
        "model": model_name,
        "hyperparams": hyperparams,
        "dataset": {
            "name": dataset.name,
            "n_users": dataset.n_users,
            "n_items": dataset.n_items,
            "user_attrs": list(dataset.user_attrs),
            "item_attrs": list(dataset.item_attrs),
        },
        "parameters": sorted(state),
    }

    arrays: dict[str, np.ndarray] = {
        _META_KEY: np.array(json.dumps(meta)),
        "interactions::users": dataset.users,
        "interactions::items": dataset.items,
        "interactions::timestamps": dataset.timestamps,
        "graph::users": graph_users,
        "graph::items": graph_items,
    }
    for side, attrs in (("user", dataset.user_attrs), ("item", dataset.item_attrs)):
        for name, (idx, val) in attrs.items():
            arrays[_ATTR_TEMPLATE.format(side=side, name=name, part="indices")] = idx
            arrays[_ATTR_TEMPLATE.format(side=side, name=name, part="values")] = val
    for name, value in state.items():
        arrays[_PARAM_PREFIX + name] = value

    path = normalize_npz_path(path)
    np.savez(path, **arrays)
    return path


def _read_attrs(archive, side: str, names: list[str]) -> dict:
    attrs = {}
    for name in names:
        idx = archive[_ATTR_TEMPLATE.format(side=side, name=name, part="indices")]
        val = archive[_ATTR_TEMPLATE.format(side=side, name=name, part="values")]
        attrs[name] = (idx, val)
    return attrs


def load_artifact(path: str) -> LoadedArtifact:
    """Rebuild model + dataset from a :func:`save_artifact` bundle."""
    with np.load(normalize_npz_path(path)) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(f"{path!r} is not a repro artifact (no metadata); "
                             "bare parameter dumps load with training.load_model")
        meta = json.loads(str(archive[_META_KEY]))
        if meta.get("version", 0) > ARTIFACT_VERSION:
            raise ValueError(f"artifact version {meta['version']} is newer than "
                             f"supported version {ARTIFACT_VERSION}")
        ds_meta = meta["dataset"]
        dataset = RecDataset(
            name=ds_meta["name"],
            n_users=ds_meta["n_users"],
            n_items=ds_meta["n_items"],
            users=archive["interactions::users"],
            items=archive["interactions::items"],
            timestamps=archive["interactions::timestamps"],
            user_attrs=_read_attrs(archive, "user", ds_meta["user_attrs"]),
            item_attrs=_read_attrs(archive, "item", ds_meta["item_attrs"]),
        )
        state = {name[len(_PARAM_PREFIX):]: archive[name]
                 for name in archive.files if name.startswith(_PARAM_PREFIX)}
        if "graph::users" in archive.files:
            graph_users = archive["graph::users"]
            graph_items = archive["graph::items"]
        else:
            graph_users, graph_items = dataset.users, dataset.items

    # Deferred import: the registry pulls in every model family.
    from repro.experiments.registry import build_model

    model = build_model(
        meta["model"], dataset,
        train_users=graph_users, train_items=graph_items,
        **meta["hyperparams"],
    )
    model.load_state_dict(state)
    return LoadedArtifact(
        model=model,
        dataset=dataset,
        model_name=meta["model"],
        hyperparams=meta["hyperparams"],
        meta=meta,
    )
