"""Self-describing model bundles for serving processes.

``training.persistence`` stores bare parameter arrays and leaves the
architecture to the caller; that is fine inside one script but useless
for a serving process that only receives a file.  An *artifact* bundles
everything a fresh process needs:

- the model's registry name and hyperparameters,
- the dataset encoding metadata (entity counts, attribute tables and
  their field order, so the rebuilt :class:`FeatureSpace` assigns the
  exact same global feature indices),
- the interaction log (drives seen-item masking) plus the training
  interactions graph models built their propagation graph from, and
- the parameter arrays themselves.

Two on-disk layouts share one loader:

``npz`` (legacy)
    A single ``.npz`` archive.  Written deterministically (fixed zip
    member timestamps, sorted members — see
    :func:`repro.training.persistence.write_npz_deterministic`) so
    byte-identical models produce byte-identical files.  Cannot be
    memory-mapped: ``np.load`` materializes every array into the
    loading process.

``dir`` (manifest)
    A directory of per-array ``.npy`` files plus a ``manifest.json``
    carrying the metadata and the key→file table.  Also written
    deterministically (sorted keys, canonical JSON).  Because each
    array is a bare ``.npy`` file, ``load_artifact(path, mmap=True)``
    rebuilds the model over **memory-mapped, read-only**
    (``writeable=False``) views: page-cache-backed, demand-paged, and
    shared copy-on-write by every process on the host that maps the
    same bundle — the substrate that lets an N-replica serving fleet
    hold ~one copy of the model instead of N.

``load_artifact`` reconstructs model + dataset without touching any
training code.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel
from repro.training.persistence import (normalize_npz_path,
                                        write_npz_deterministic)

#: Bumped when the archive layout changes incompatibly.  Version 2
#: added the manifest/dir layout; version-1 ``.npz`` bundles (and
#: version-2 ones, which are array-compatible) keep loading.
ARTIFACT_VERSION = 2

_LAYOUTS = ("npz", "dir")
MANIFEST_NAME = "manifest.json"
ARRAY_DIR = "arrays"

_META_KEY = "__meta__"
_PARAM_PREFIX = "param::"
_ATTR_TEMPLATE = "attr::{side}::{name}::{part}"


@dataclass
class LoadedArtifact:
    """Everything :func:`load_artifact` reconstructs from one bundle."""

    model: RecommenderModel
    dataset: RecDataset
    model_name: str
    hyperparams: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    #: Which on-disk layout the bundle used (``"npz"`` or ``"dir"``).
    layout: str = "npz"
    #: Whether the parameters are memory-mapped read-only views.
    mmap: bool = False
    #: The training interactions graph models built their propagation
    #: graph from — kept so :func:`convert_artifact` can re-save the
    #: bundle without collapsing the split back to the full log.
    train_interactions: Optional[tuple[np.ndarray, np.ndarray]] = None


def _known_model_names() -> set[str]:
    from repro.experiments.registry import (RATING_MODELS,
                                            SERVING_ONLY_MODELS, TOPN_MODELS)

    return set(RATING_MODELS) | set(TOPN_MODELS) | set(SERVING_ONLY_MODELS)


def _array_filename(key: str, taken: set[str]) -> str:
    """Deterministic filesystem-safe ``.npy`` name for an array key."""
    stem = re.sub(r"[^A-Za-z0-9._-]", "_", key) or "array"
    name, n = f"{stem}.npy", 0
    while name in taken:
        n += 1
        name = f"{stem}-{n}.npy"
    taken.add(name)
    return name


def save_artifact(
    model: RecommenderModel,
    dataset: RecDataset,
    path: str,
    model_name: str,
    hyperparams: Optional[dict] = None,
    train_interactions: Optional[tuple[np.ndarray, np.ndarray]] = None,
    layout: str = "npz",
) -> str:
    """Write a self-describing serving bundle; returns the real path.

    The rebuild recipe is validated *at save time*: a skeleton model is
    constructed from ``(model_name, hyperparams)`` and its parameter
    shapes checked against ``model``, so a bundle that cannot be loaded
    fails here — while the training run still exists — rather than in
    the serving process.

    Parameters
    ----------
    model:
        The trained model whose parameters are bundled.
    dataset:
        Supplies the encoding metadata and the interaction log.
    path:
        Target file; with ``layout="npz"`` the ``.npz`` suffix is
        appended when missing, with ``layout="dir"`` the path names a
        directory that is created (it must not already hold foreign
        files).
    model_name:
        The model's :mod:`repro.experiments.registry` name (e.g.
        ``"GML-FMmd"``) — the recipe ``load_artifact`` uses to rebuild
        the architecture.
    hyperparams:
        Keyword arguments forwarded to ``registry.build_model`` at load
        time (``k``, ``seed``); defaults to the model's own ``k`` and
        seed 0.
    train_interactions:
        ``(users, items)`` the model's propagation graph was built from
        — only meaningful for graph models (NGCF).  Defaults to the
        dataset's full interaction log; pass the actual training split
        so the rebuilt model scores identically to the evaluated one.
    layout:
        ``"npz"`` (default, the legacy single-archive format) or
        ``"dir"`` (per-array ``.npy`` files + JSON manifest — the only
        layout :func:`load_artifact` can memory-map).
    """
    if layout not in _LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; options: {_LAYOUTS}")
    known = _known_model_names()
    if model_name not in known:
        raise KeyError(f"unknown model {model_name!r}; options: {sorted(known)}")
    if hyperparams is None:
        hyperparams = {}
    hyperparams = {"k": getattr(model, "k", 16), "seed": 0, **hyperparams}
    if train_interactions is None:
        graph_users, graph_items = dataset.users, dataset.items
    else:
        graph_users = np.asarray(train_interactions[0], dtype=np.int64)
        graph_items = np.asarray(train_interactions[1], dtype=np.int64)

    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")

    # Dry-run the load-time rebuild: unknown hyperparams raise here
    # (TypeError from build_model) and architecture drift is reported
    # as a shape diff instead of a load_state_dict failure later.
    from repro.experiments.registry import build_model

    skeleton = build_model(model_name, dataset,
                           train_users=graph_users, train_items=graph_items,
                           **hyperparams)
    skeleton_state = skeleton.state_dict()
    mismatches = sorted(
        set(state) ^ set(skeleton_state)
    ) + sorted(
        name for name in set(state) & set(skeleton_state)
        if state[name].shape != skeleton_state[name].shape
    )
    if mismatches:
        raise ValueError(
            f"{model_name!r} with hyperparams {hyperparams} does not rebuild "
            f"this model's architecture; mismatched parameters: {mismatches}")

    meta = {
        "format": "repro-artifact",
        "version": ARTIFACT_VERSION,
        "model": model_name,
        "hyperparams": hyperparams,
        "dataset": {
            "name": dataset.name,
            "n_users": dataset.n_users,
            "n_items": dataset.n_items,
            "user_attrs": list(dataset.user_attrs),
            "item_attrs": list(dataset.item_attrs),
        },
        "parameters": sorted(state),
    }

    arrays: dict[str, np.ndarray] = {
        "interactions::users": dataset.users,
        "interactions::items": dataset.items,
        "interactions::timestamps": dataset.timestamps,
        "graph::users": graph_users,
        "graph::items": graph_items,
    }
    for side, attrs in (("user", dataset.user_attrs), ("item", dataset.item_attrs)):
        for name, (idx, val) in attrs.items():
            arrays[_ATTR_TEMPLATE.format(side=side, name=name, part="indices")] = idx
            arrays[_ATTR_TEMPLATE.format(side=side, name=name, part="values")] = val
    for name, value in state.items():
        arrays[_PARAM_PREFIX + name] = value

    if layout == "npz":
        path = normalize_npz_path(path)
        write_npz_deterministic(
            path, {_META_KEY: np.array(json.dumps(meta)), **arrays})
        return path
    return _write_dir(Path(path), meta, arrays)


def _write_dir(root: Path, meta: dict, arrays: dict) -> str:
    """Write the manifest layout; refuses to clobber foreign content."""
    if root.exists():
        if not root.is_dir():
            raise ValueError(f"{root} exists and is not a directory")
        if any(root.iterdir()) and not (root / MANIFEST_NAME).exists():
            raise ValueError(
                f"{root} is a non-empty directory without a {MANIFEST_NAME}; "
                f"refusing to overwrite foreign files")
    array_dir = root / ARRAY_DIR
    array_dir.mkdir(parents=True, exist_ok=True)
    taken: set[str] = set()
    table = {}
    for key in sorted(arrays):
        value = np.asarray(arrays[key])
        filename = _array_filename(key, taken)
        np.save(array_dir / filename, value, allow_pickle=False)
        table[key] = {
            "file": f"{ARRAY_DIR}/{filename}",
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
    # Drop stale arrays a previous (differently shaped) save left over,
    # so the directory's bytes are a pure function of this bundle.
    for leftover in sorted(array_dir.iterdir()):
        if leftover.name not in taken:
            leftover.unlink()
    manifest = dict(meta)
    manifest["layout"] = "dir"
    manifest["arrays"] = table
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return str(root)


def _read_attrs(get, side: str, names: list[str]) -> dict:
    attrs = {}
    for name in names:
        idx = get(_ATTR_TEMPLATE.format(side=side, name=name, part="indices"))
        val = get(_ATTR_TEMPLATE.format(side=side, name=name, part="values"))
        attrs[name] = (idx, val)
    return attrs


def detect_layout(path: str) -> str:
    """``"dir"`` when ``path`` is a manifest bundle, else ``"npz"``."""
    p = Path(path)
    if p.is_dir():
        if (p / MANIFEST_NAME).exists():
            return "dir"
        raise ValueError(f"{path!r} is a directory without a {MANIFEST_NAME}; "
                         f"not a repro artifact")
    return "npz"


def load_artifact(path: str, mmap: bool = False) -> LoadedArtifact:
    """Rebuild model + dataset from a :func:`save_artifact` bundle.

    Parameters
    ----------
    path:
        A legacy ``.npz`` archive or a manifest directory; the layout
        is auto-detected.
    mmap:
        Load every array as a memory-mapped **read-only** view
        (``writeable=False``) instead of materializing copies.  The
        model's parameters are rebound to the views zero-copy
        (``load_state_dict(assign=True)``), so all processes mapping
        the same bundle share one page cache.  Requires the ``dir``
        layout; a read-only model serves normally but rejects in-place
        updates — fold-in needs ``mmap=False`` or
        ``OnlineConfig(on_readonly="copy")`` (see
        :mod:`repro.training.online`).
    """
    layout = detect_layout(path)
    if layout == "dir":
        return _load_dir(Path(path), mmap=mmap)
    if mmap:
        raise ValueError(
            f"legacy .npz bundles cannot be memory-mapped ({path!r}); "
            f"re-save with save_artifact(..., layout='dir') or "
            f"convert_artifact(src, dst) and load the directory bundle")
    with np.load(normalize_npz_path(path)) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(f"{path!r} is not a repro artifact (no metadata); "
                             "bare parameter dumps load with training.load_model")
        meta = json.loads(str(archive[_META_KEY]))
        arrays = {name: archive[name] for name in archive.files
                  if name != _META_KEY}
    return _rebuild(meta, arrays.__getitem__, set(arrays),
                    layout="npz", mmap=False)


def _load_dir(root: Path, mmap: bool) -> LoadedArtifact:
    meta = json.loads((root / MANIFEST_NAME).read_text(encoding="utf-8"))
    if meta.get("format") != "repro-artifact":
        raise ValueError(f"{root} is not a repro artifact manifest")
    table = meta.get("arrays", {})

    def get(key: str) -> np.ndarray:
        entry = table[key]
        file = root / entry["file"]
        return np.load(file, mmap_mode="r" if mmap else None,
                       allow_pickle=False)

    return _rebuild(meta, get, set(table), layout="dir", mmap=mmap)


def _rebuild(meta: dict, get, keys: set[str], layout: str,
             mmap: bool) -> LoadedArtifact:
    """Shared rebuild over any ``key -> array`` accessor."""
    if meta.get("version", 0) > ARTIFACT_VERSION:
        raise ValueError(f"artifact version {meta['version']} is newer than "
                         f"supported version {ARTIFACT_VERSION}")
    ds_meta = meta["dataset"]
    dataset = RecDataset(
        name=ds_meta["name"],
        n_users=ds_meta["n_users"],
        n_items=ds_meta["n_items"],
        users=get("interactions::users"),
        items=get("interactions::items"),
        timestamps=get("interactions::timestamps"),
        user_attrs=_read_attrs(get, "user", ds_meta["user_attrs"]),
        item_attrs=_read_attrs(get, "item", ds_meta["item_attrs"]),
    )
    state = {key[len(_PARAM_PREFIX):]: get(key)
             for key in keys if key.startswith(_PARAM_PREFIX)}
    if "graph::users" in keys:
        graph_users = get("graph::users")
        graph_items = get("graph::items")
    else:
        graph_users, graph_items = dataset.users, dataset.items

    # Deferred import: the registry pulls in every model family.
    from repro.experiments.registry import build_model

    model = build_model(
        meta["model"], dataset,
        train_users=graph_users, train_items=graph_items,
        **meta["hyperparams"],
    )
    # Zero-copy under mmap: the freshly initialized parameter arrays
    # are dropped and the tensors rebound to the read-only mapped
    # views; the copying path preserves the skeleton's dtype (the
    # historical .npz behavior).
    model.load_state_dict(state, assign=mmap)
    return LoadedArtifact(
        model=model,
        dataset=dataset,
        model_name=meta["model"],
        hyperparams=meta["hyperparams"],
        meta=meta,
        layout=layout,
        mmap=mmap,
        train_interactions=(np.asarray(graph_users, dtype=np.int64),
                            np.asarray(graph_items, dtype=np.int64)),
    )


def convert_artifact(src: str, dst: str, layout: str = "dir") -> str:
    """Re-save a bundle under another layout; returns the real path.

    The canonical migration of a legacy ``.npz`` bundle to the
    memory-mappable manifest layout.  The propagation-graph split is
    carried over (not collapsed to the full log), so graph models
    rebuild identically from the converted bundle.
    """
    if os.path.realpath(src) == os.path.realpath(dst):
        raise ValueError("convert_artifact needs distinct src and dst paths")
    loaded = load_artifact(src)
    return save_artifact(
        loaded.model, loaded.dataset, dst, loaded.model_name,
        hyperparams=loaded.hyperparams,
        train_interactions=loaded.train_interactions,
        layout=layout)
