"""Sharded multi-process serving: a RecommendationService fleet.

One :class:`~repro.serving.service.RecommendationService` is a single
process; this module scales it horizontally.  A
:class:`ServingCluster` owns ``n_shards × replicas`` worker processes,
each running a full service replica, and exposes *the same call
surface* as the single service (``recommend`` / ``recommend_batch`` /
``update_interactions`` / ``stats``), so the stdlib HTTP front-end
(:mod:`repro.serving.server`) serves a cluster and a single process
through identical handler code.

Design invariants:

- **User sharding, deterministic routing.**  Every user id maps to
  exactly one shard via a seeded mix hash (:meth:`ServingCluster.route`)
  — stable across processes and restarts, so caches stay hot and
  interaction updates always land where the user is served.
- **Byte-identical responses.**  Each worker holds a complete replica
  of the model + dataset (forked copy-on-write from the parent), and
  updates for a user are broadcast to every replica of that user's
  shard.  On the default serving path (seen-item masking, no fold-in)
  a request stream therefore produces byte-for-byte the same JSON
  bodies for any shard count — including ``--shards 1``, which skips
  this module entirely and runs the original single-process path.
  With ``--online`` *fold-in*, each shard's trainer draws negatives
  from its own seeded RNG stream over its own event sub-stream, so
  responses are deterministic per fleet shape but not byte-equal
  across different shard counts; replica *failover* stays
  byte-identical in every mode, because replicas of one shard apply
  the identical sub-stream.
- **Replica failover.**  Per-shard replicas are tried in deterministic
  order; a dead worker (broken pipe, EOF, timeout, failed heartbeat)
  is marked down and the call retries transparently on the next
  replica.  Because replicas apply the same update stream, failover
  does not change a single byte of any response.
- **Aggregated observability.**  ``stats()`` merges the serving
  replicas' counters into one cluster-wide view (plus per-shard
  detail), so ``/stats`` keeps working unchanged.

The worker protocol is a tuple RPC over a ``multiprocessing.Pipe``:
``(op, *args)`` in, ``("ok", payload) | ("error", type, msg)`` out.
``ValueError``/``OverflowError`` raised by the remote service re-raise
locally under the same type, so HTTP 400 mapping is preserved.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.obs.logs import default_logger
from repro.obs.metrics import MetricsRegistry, merge_snapshots, render_snapshot
from repro.obs.tracing import Tracer
from repro.serving.service import Recommendation, RecommendationService

#: Exception types a worker reports that re-raise as client errors.
_CLIENT_ERRORS = {"ValueError": ValueError, "OverflowError": OverflowError}


class NoLiveReplicaError(RuntimeError):
    """Every replica of a shard is down."""


class _ReplicaDown(Exception):
    """Internal: this replica failed mid-call; try the next one."""


def _dispatch(service: RecommendationService, msg: tuple):
    """Execute one worker op against the replica's service."""
    op = msg[0]
    if op == "ping":
        return "pong"
    if op == "recommend_batch":
        _, users, k, exclude_seen = msg
        return [rec.to_dict() for rec in service.recommend_batch(
            users, k=k, exclude_seen=exclude_seen)]
    if op == "update":
        _, users, items = msg
        return service.update_interactions(users, items)
    if op == "stats":
        return service.stats()
    if op == "metrics":
        return service.metrics_snapshot()
    raise ValueError(f"unknown worker op {op!r}")


def _worker_loop(factory: Callable[[], RecommendationService], conn) -> None:
    """Worker process body: serve tuple-RPC requests forever.

    Runs in the child.  The service is produced by ``factory`` *after*
    the fork, so with the default fork start method each worker gets
    its own copy-on-write clone of any model/dataset the closure
    captured — no serialization, no shared mutable state.

    ``("traced", trace_id, inner_msg)`` wraps any op: the replica runs
    it under a *forced* trace carrying the router's id (active even
    though the worker's tracer is disabled by default — the service's
    internal ``start`` then nests as a child span) and replies
    ``("ok", (payload, spans))`` so the router can absorb the spans
    into the request's trace.  Tracing never touches the payload, so
    responses stay byte-identical with it on or off.
    """
    service = factory()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        op = msg[0]
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            if op == "traced":
                _, trace_id, inner = msg
                with service.tracer.start(inner[0], trace_id=trace_id) as t:
                    payload = _dispatch(service, inner)
                out = (payload, t.export_spans())
            else:
                out = _dispatch(service, msg)
            conn.send(("ok", out))
        except Exception as exc:  # noqa: BLE001 - forwarded to router
            conn.send(("error", type(exc).__name__, str(exc)))


class _Replica:
    """One worker process plus the parent-side call plumbing."""

    def __init__(self, shard: int, index: int, process, conn,
                 call_timeout: float):
        self.shard = shard
        self.index = index
        self.process = process
        self.conn = conn
        self.call_timeout = call_timeout
        self.alive = True
        # Serializes the request/response pairs of concurrent HTTP
        # handler threads over the single duplex pipe.
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"shard{self.shard}/replica{self.index}"

    def call(self, op: str, *args):
        """One RPC round-trip; raises ``_ReplicaDown`` on transport death."""
        with self._lock:
            if not self.alive:
                raise _ReplicaDown(self.name)
            try:
                self.conn.send((op, *args))
                if not self.conn.poll(self.call_timeout):
                    raise _ReplicaDown(f"{self.name}: no reply in "
                                       f"{self.call_timeout}s")
                status, *payload = self.conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                self.alive = False
                raise _ReplicaDown(f"{self.name}: {exc}") from exc
            except _ReplicaDown:
                self.alive = False
                raise
        if status == "ok":
            return payload[0]
        err_type, message = payload
        raise _CLIENT_ERRORS.get(err_type, RuntimeError)(message)

    def mark_down(self) -> None:
        """Mark the replica dead, under the same lock ``call`` writes
        ``alive`` with — the heartbeat thread and ``stop()`` race
        against in-flight RPCs, so the flag flip must serialize with
        them (found by ``repro lint``'s lock-unguarded-write rule)."""
        with self._lock:
            self.alive = False

    def stop(self, grace: float = 5.0) -> None:
        try:
            if self.alive:
                self.call("stop")
        except (_ReplicaDown, RuntimeError):
            pass
        self.mark_down()
        self.process.join(timeout=grace)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=grace)
        self.conn.close()


class ServingCluster:
    """User-sharded fleet of service replicas behind one call surface.

    Parameters
    ----------
    service_factory:
        Zero-argument callable producing the
        :class:`RecommendationService` each worker runs.  Evaluated in
        the child after fork, so it may close over a fully built
        model/dataset (the cheap path: copy-on-write memory) or build
        from scratch.
    n_shards:
        User-space partitions (one worker pool each).
    replicas:
        Workers per shard; ``> 1`` enables failover.
    seed:
        Seeds the user→shard hash.  Any value yields a valid
        partition; the seed exists so a rolling fleet can re-balance
        deterministically.
    call_timeout:
        Seconds a router call waits for a worker reply before declaring
        the replica dead and failing over.
    heartbeat_interval:
        Background liveness-probe period (seconds); ``0`` disables the
        prober (failover still happens lazily on call errors).
    start:
        Build and launch the workers immediately (else :meth:`start`).
    """

    def __init__(
        self,
        service_factory: Callable[[], RecommendationService],
        n_shards: int,
        replicas: int = 1,
        seed: int = 0,
        call_timeout: float = 60.0,
        heartbeat_interval: float = 0.0,
        start: bool = True,
        tracing: bool = False,
        log=None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.service_factory = service_factory
        self.n_shards = n_shards
        self.replicas = replicas
        self.seed = seed
        self.call_timeout = call_timeout
        self.heartbeat_interval = heartbeat_interval
        self.shards: list[list[_Replica]] = []
        # Router-local metrics + the request tracer.  Lifecycle events
        # (spawn, heartbeat miss, failover, dead shard) go to the
        # structured JSON log, tagged with the active trace id when a
        # request is in flight.  The default logger only emits
        # warnings and errors; inject a JsonLogger to capture more.
        self.registry = MetricsRegistry()
        self._m_routed = self.registry.counter(
            "repro_cluster_requests_routed_total",
            "users routed through the cluster front-end")
        self._m_failovers = self.registry.counter(
            "repro_cluster_failovers_total",
            "calls retried on the next replica after one died")
        self.tracer = Tracer(enabled=tracing)
        self.log = (log if log is not None else default_logger()).bind(
            component="cluster")
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._closing = threading.Event()
        self._ctx = mp.get_context("fork")
        self._started = False
        if start:
            self.start()

    @property
    def requests_routed(self) -> int:
        return int(self._m_routed.value)

    @property
    def failovers(self) -> int:
        return int(self._m_failovers.value)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        # A cluster may be restarted after close(); the shutdown flag
        # must not leak into the new heartbeat thread's wait loop.
        self._closing.clear()
        for shard in range(self.n_shards):
            pool = []
            for index in range(self.replicas):
                parent, child = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_worker_loop, args=(self.service_factory, child),
                    daemon=True, name=f"repro-serve-s{shard}r{index}")
                process.start()
                child.close()
                pool.append(_Replica(shard, index, process, parent,
                                     self.call_timeout))
                self.log.info("replica_spawn", shard=shard, replica=index,
                              pid=process.pid)
            self.shards.append(pool)
        self._started = True
        # First contact doubles as a readiness barrier: every replica
        # must build its service and answer before traffic flows.
        for pool in self.shards:
            for replica in pool:
                replica.call("ping")
        self.log.info("cluster_ready", shards=self.n_shards,
                      replicas=self.replicas)
        if self.heartbeat_interval > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True,
                name="repro-serve-heartbeat")
            self._heartbeat_thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._closing.wait(self.heartbeat_interval):
            for pool in self.shards:
                for replica in pool:
                    if not replica.alive:
                        continue
                    if not replica.process.is_alive():
                        replica.mark_down()
                        self.log.warning("heartbeat_miss", shard=replica.shard,
                                         replica=replica.index,
                                         reason="process dead")
                        continue
                    try:
                        replica.call("ping")
                    except (_ReplicaDown, RuntimeError) as exc:
                        self.log.warning("heartbeat_miss", shard=replica.shard,
                                         replica=replica.index,
                                         reason=str(exc))

    # ------------------------------------------------------------------
    def route(self, user: int) -> int:
        """Deterministic seeded shard of a user id (valid for any int).

        A splitmix64-style finalizer: unlike CRC (affine in its seed —
        two seeds can XOR every hash by a low-bits-zero constant and
        collapse to the same routing), the multiply/xor-shift rounds
        diffuse the seed through every output bit, so reseeding really
        re-balances the fleet.
        """
        mask = (1 << 64) - 1
        x = (int(user) + self.seed * 0x9E3779B97F4A7C15) & mask
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
        return x % self.n_shards

    def alive_counts(self) -> list[int]:
        return [sum(r.alive and r.process.is_alive() for r in pool)
                for pool in self.shards]

    def _traced_call(self, replica: _Replica, shard: int, op: str, *args):
        """One replica call, propagating the active trace if any.

        With a trace in flight the message is wrapped as
        ``("traced", id, (op, *args))``; the replica's spans come back
        in the reply and are absorbed into the trace prefixed with the
        replica's identity, so one trace id spans client → router →
        replica.
        """
        trace = self.tracer.current()
        if trace is None:
            return replica.call(op, *args)
        payload, spans = replica.call("traced", trace.trace_id, (op, *args))
        trace.absorb(spans, prefix=f"s{shard}r{replica.index}:",
                     shard=shard, replica=replica.index)
        return payload

    def _note_failover(self, shard: int, replica: _Replica, op: str,
                       exc: Exception) -> None:
        self._m_failovers.inc()
        self.log.warning("replica_failover", shard=shard,
                         replica=replica.index, op=op, error=str(exc),
                         trace_id=self.tracer.current_id())

    def _no_live_replica(self, shard: int, op: str,
                         last_error: Optional[Exception]) -> NoLiveReplicaError:
        self.log.error("no_live_replica", shard=shard, op=op,
                       error=str(last_error) if last_error else None,
                       trace_id=self.tracer.current_id())
        return NoLiveReplicaError(
            f"shard {shard} has no live replicas"
            + (f" (last error: {last_error})" if last_error else ""))

    def _call_shard(self, shard: int, op: str, *args):
        """Call the shard's first live replica, failing over in order."""
        last_error: Optional[Exception] = None
        for replica in self.shards[shard]:
            if not replica.alive:
                continue
            try:
                return self._traced_call(replica, shard, op, *args)
            except _ReplicaDown as exc:
                last_error = exc
                self._note_failover(shard, replica, op, exc)
        raise self._no_live_replica(shard, op, last_error)

    def _broadcast_shard(self, shard: int, op: str, *args) -> list:
        """Run an op on every live replica of a shard (state mutation).

        Returns the successful replies (first reply first).  Raises if
        *no* replica succeeded; replicas that die mid-broadcast are
        marked down exactly like on the read path.
        """
        replies = []
        last_error: Optional[Exception] = None
        for replica in self.shards[shard]:
            if not replica.alive:
                continue
            try:
                replies.append(self._traced_call(replica, shard, op, *args))
            except _ReplicaDown as exc:
                last_error = exc
                self._note_failover(shard, replica, op, exc)
        if not replies:
            raise self._no_live_replica(shard, op, last_error)
        return replies

    # -- service call surface ------------------------------------------
    def recommend(self, user: int, k: Optional[int] = None,
                  exclude_seen: Optional[bool] = None) -> Recommendation:
        """Route one user's request to its shard; same API as the service."""
        return self.recommend_batch([user], k=k, exclude_seen=exclude_seen)[0]

    def recommend_batch(
        self,
        users: Sequence[int],
        k: Optional[int] = None,
        exclude_seen: Optional[bool] = None,
    ) -> list[Recommendation]:
        """Scatter a multi-user query by shard, gather in request order."""
        users = [int(u) for u in users]
        self._m_routed.inc(len(users))
        with self.tracer.start("recommend_batch"):
            by_shard: dict[int, list[int]] = {}
            for user in users:
                by_shard.setdefault(self.route(user), []).append(user)
            merged: dict[int, Recommendation] = {}
            for shard, shard_users in by_shard.items():
                replies = self._call_shard(shard, "recommend_batch",
                                           shard_users, k, exclude_seen)
                for payload in replies:
                    merged[payload["user"]] = Recommendation(
                        user=payload["user"],
                        items=np.asarray(payload["items"], dtype=np.int64),
                        scores=np.asarray(payload["scores"], dtype=np.float64))
            return [merged[user] for user in users]

    def update_interactions(
        self, users: Sequence[int], items: Sequence[int]
    ) -> dict:
        """Ingest events, each routed to (all replicas of) its shard.

        Validation *and* target-shard liveness run up front, so a
        malformed batch — or one addressing a shard with no live
        replicas — is rejected before any shard mutates, matching the
        single service's whole-batch rejection.  Per shard, the slice
        is broadcast to every live replica (keeping failover
        byte-identical).  The remaining non-atomic window is a replica
        fleet dying *mid-batch*: shards already written stay written
        (there is no cross-process rollback), the error propagates,
        and the caller must treat a 5xx on ``/update`` as
        indeterminate rather than retrying blindly.

        The merged report sums the primary replica's counters over
        shards; ``loss`` is the event-weighted mean of the per-shard
        batch losses (each shard reports a per-event mean), i.e. the
        mean over all events of the batch.
        """
        users_arr = np.asarray(users, dtype=np.int64)
        items_arr = np.asarray(items, dtype=np.int64)
        if users_arr.shape != items_arr.shape or users_arr.ndim != 1:
            raise ValueError("users and items must be parallel 1-d sequences")
        if users_arr.size == 0:
            raise ValueError("no events supplied")
        bounds = self._bounds()
        if users_arr.min() < 0 or users_arr.max() >= bounds["n_users"]:
            raise ValueError("user id out of range")
        if items_arr.min() < 0 or items_arr.max() >= bounds["n_items"]:
            raise ValueError("item id out of range")

        shard_of = np.fromiter((self.route(u) for u in users_arr.tolist()),
                               dtype=np.int64, count=users_arr.size)
        targets = sorted(set(shard_of.tolist()))
        # Liveness precheck: refuse the whole batch while nothing has
        # mutated if any target shard is already dark.
        for shard in targets:
            if not any(r.alive and r.process.is_alive()
                       for r in self.shards[shard]):
                raise NoLiveReplicaError(
                    f"shard {shard} has no live replicas; batch rejected "
                    f"before ingest")
        report = {"events": 0, "novel": 0, "folded_in": False,
                  "invalidated": 0}
        loss_sum = loss_events = 0.0
        with self.tracer.start("update_interactions"):
            for shard in targets:
                mask = shard_of == shard
                replies = self._broadcast_shard(
                    shard, "update",
                    users_arr[mask].tolist(), items_arr[mask].tolist())
                primary = replies[0]
                report["events"] += primary["events"]
                report["novel"] += primary["novel"]
                report["invalidated"] += primary["invalidated"]
                report["folded_in"] = report["folded_in"] or primary["folded_in"]
                if "loss" in primary:
                    loss_sum += primary["loss"] * primary["events"]
                    loss_events += primary["events"]
        if loss_events:
            report["loss"] = loss_sum / loss_events
        return report

    def stats(self) -> dict:
        """Cluster-wide counters: summed across shards + per-shard detail.

        Counter sums come from each shard's *serving* replica (the one
        requests currently route to) — update broadcasts would double
        count if summed across replicas.
        """
        per_shard = []
        for shard in range(self.n_shards):
            try:
                per_shard.append(self._call_shard(shard, "stats"))
            except NoLiveReplicaError:
                per_shard.append(None)
        live = [entry for entry in per_shard if entry is not None]
        if not live:
            raise NoLiveReplicaError("no live replicas in any shard")
        merged = {
            "model": live[0]["model"],
            "dataset": live[0]["dataset"],
            "n_users": live[0]["n_users"],
            "n_items": live[0]["n_items"],
            "top_k_default": live[0]["top_k_default"],
            "fast_path": live[0]["fast_path"],
            "ann": live[0]["ann"],
            "online_updates": live[0]["online_updates"],
        }
        for counter in ("requests", "users_scored", "interactions_added",
                        "updates_folded_in", "ann_fallbacks"):
            merged[counter] = sum(entry[counter] for entry in live)
        cache = {key: sum(entry["cache"][key] for entry in live)
                 for key in ("size", "capacity", "hits", "misses",
                             "evictions", "invalidations")}
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        merged["cache"] = cache
        merged["cluster"] = {
            "shards": self.n_shards,
            "replicas": self.replicas,
            "seed": self.seed,
            "alive": self.alive_counts(),
            "requests_routed": self.requests_routed,
            "failovers": self.failovers,
        }
        merged["per_shard"] = per_shard
        return merged

    # -- observability surfaces ----------------------------------------
    def metrics_snapshot(self) -> list[dict]:
        """Cluster metrics: router counters + fleet aggregate + detail.

        One snapshot is pulled from each shard's serving replica; the
        aggregate is their :func:`~repro.obs.metrics.merge_snapshots`
        sum (matching how ``stats()`` sums counters), and the same
        per-shard entries are re-emitted labeled ``shard="i"`` so a
        scrape can tell a hot shard from a uniform load.
        """
        per_shard: list[tuple[int, list[dict]]] = []
        for shard in range(self.n_shards):
            try:
                per_shard.append((shard, self._call_shard(shard, "metrics")))
            except NoLiveReplicaError:
                continue
        if not per_shard:
            raise NoLiveReplicaError("no live replicas in any shard")
        entries = list(self.registry.snapshot())
        entries.extend(merge_snapshots([snap for _, snap in per_shard]))
        for shard, snap in per_shard:
            for entry in snap:
                entry["labels"] = {**entry["labels"], "shard": str(shard)}
                entries.append(entry)
        return entries

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        return render_snapshot(self.metrics_snapshot())

    def traces(self, n: Optional[int] = None) -> list[dict]:
        """Recent router traces (replica spans absorbed), newest first."""
        return self.tracer.traces(n)

    def _bounds(self) -> dict:
        """Catalogue bounds for router-side validation (cached).

        Answered by whichever shard is alive — every replica holds the
        same catalogue, so any one can describe it.
        """
        if not hasattr(self, "_cached_bounds"):
            last_error: Optional[Exception] = None
            for shard in range(self.n_shards):
                try:
                    stats = self._call_shard(shard, "stats")
                except NoLiveReplicaError as exc:
                    last_error = exc
                    continue
                self._cached_bounds = {"n_users": stats["n_users"],
                                       "n_items": stats["n_items"]}
                break
            else:
                raise NoLiveReplicaError(
                    "no live replicas in any shard") from last_error
        return self._cached_bounds

    # ------------------------------------------------------------------
    def kill_replica(self, shard: int, index: int = 0) -> None:
        """Hard-kill one worker (failure injection for tests/drills)."""
        replica = self.shards[shard][index]
        self.log.warning("replica_kill", shard=shard, replica=index)
        replica.process.terminate()
        replica.process.join(timeout=10)
        deadline = time.monotonic() + 5
        # The pipe may deliver EOF slightly after join; the next call
        # through this replica raises and marks it down either way.
        while replica.process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)

    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        self._closing.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=10)
            self._heartbeat_thread = None
        for pool in self.shards:
            for replica in pool:
                replica.stop()
        if self.shards:
            self.log.info("cluster_close", shards=self.n_shards)
        self.shards = []
        self._started = False

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
