"""Online recommendation serving: the deployment path of the repo.

The research side trains and evaluates; this package turns a trained
model into a service.  Module map::

    artifact.py   self-describing model bundles: legacy .npz archives
                  and the mmap-able manifest/dir layout (zero-copy,
                  read-only, page-cache-shared across processes)
    scorer.py     vectorized [users, catalogue] grid scoring (+ ANN)
    ann.py        seeded IVF candidate index (k-means codebook, probes)
    index.py      CSR seen-item masking + argpartition top-k ranking
    cache.py      thread-safe LRU result cache with hit/miss counters
    service.py    RecommendationService facade (micro-batching, stats)
    cluster.py    user-sharded multi-process fleet (replicas, failover)
    server.py     stdlib-http JSON endpoint + `repro serve` backing
    frontend.py   selector event loop coalescing /recommend requests
                  into recommend_batch micro-batches

Typical flow::

    from repro.serving import save_artifact, RecommendationService

    save_artifact(model, dataset, "bundle.npz", "GML-FMmd", {"k": 32})
    service = RecommendationService.from_artifact("bundle.npz")
    service.recommend(user=0, k=10)

or from the shell: ``python -m repro serve --artifact bundle.npz``.
"""

from repro.serving.ann import ANNConfig, IVFIndex, kmeans
from repro.serving.artifact import (
    ARTIFACT_VERSION,
    LoadedArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.artifact import convert_artifact
from repro.serving.cache import LRUCache
from repro.serving.cluster import NoLiveReplicaError, ServingCluster
from repro.serving.frontend import AsyncFrontend
from repro.serving.index import TopKIndex
from repro.serving.scorer import BatchScorer
from repro.serving.server import RecommendationServer, build_server, selfcheck
from repro.serving.service import Recommendation, RecommendationService

__all__ = [
    "ARTIFACT_VERSION",
    "LoadedArtifact",
    "save_artifact",
    "load_artifact",
    "convert_artifact",
    "AsyncFrontend",
    "ANNConfig",
    "IVFIndex",
    "kmeans",
    "BatchScorer",
    "TopKIndex",
    "LRUCache",
    "Recommendation",
    "RecommendationService",
    "ServingCluster",
    "NoLiveReplicaError",
    "RecommendationServer",
    "build_server",
    "selfcheck",
]
