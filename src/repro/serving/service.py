"""The online serving facade: scorer + index + cache behind one object.

A :class:`RecommendationService` owns the full query path

    cache lookup → micro-batched grid scoring → seen masking →
    top-k ranking → cache fill

and keeps request counters so operators can watch hit rates.  It is
transport-agnostic: the HTTP layer (:mod:`repro.serving.server`) and
any in-process caller share the same entry points.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel
from repro.serving.cache import LRUCache
from repro.serving.index import TopKIndex
from repro.serving.scorer import BatchScorer


@dataclass(frozen=True)
class Recommendation:
    """One ranked list: parallel item ids and scores, best first."""

    user: int
    items: np.ndarray
    scores: np.ndarray

    def to_dict(self) -> dict:
        return {
            "user": self.user,
            "items": [int(i) for i in self.items],
            "scores": [float(s) for s in self.scores],
        }


class RecommendationService:
    """Serves ranked item lists for users of one trained model.

    Parameters
    ----------
    model, dataset:
        The scoring model and the catalogue/interaction source.
    top_k:
        Default list length when a query does not specify one.
    exclude_seen:
        Default seen-item filtering behavior.
    cache_size:
        LRU entries kept (0 disables caching).
    user_batch:
        Users scored per grid block inside a multi-user query.
    scorer_mode:
        Forwarded to :class:`BatchScorer` (``"auto"``/``"exact"``).
    """

    def __init__(
        self,
        model: RecommenderModel,
        dataset: RecDataset,
        top_k: int = 10,
        exclude_seen: bool = True,
        cache_size: int = 1024,
        user_batch: int = 32,
        scorer_mode: str = "auto",
    ):
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.model = model
        self.dataset = dataset
        self.top_k = top_k
        self.exclude_seen = exclude_seen
        self.user_batch = user_batch
        self.scorer = BatchScorer(model, dataset, mode=scorer_mode,
                                  user_batch=user_batch)
        # Private (not the shared per-dataset instance): add_interaction
        # mutates the overlay, which must stay local to this service.
        self.index = TopKIndex.from_dataset(dataset)
        self.cache = LRUCache(cache_size)
        # One coarse lock covers cache + index + counters: the HTTP
        # front-end is a ThreadingHTTPServer, and the OrderedDict/
        # overlay mutations are not thread-safe on their own.
        self._lock = threading.RLock()
        self.requests = 0
        self.users_scored = 0
        self.interactions_added = 0

    @classmethod
    def from_artifact(cls, path: str, **kwargs) -> "RecommendationService":
        """Boot a service straight from a saved artifact bundle."""
        from repro.serving.artifact import load_artifact

        loaded = load_artifact(path)
        service = cls(loaded.model, loaded.dataset, **kwargs)
        service.model_name = loaded.model_name
        return service

    # ------------------------------------------------------------------
    def _validate_k(self, k: int, exclude_seen: bool,
                    users: np.ndarray) -> None:
        n_items = self.dataset.n_items
        if k <= 0:
            raise ValueError("top_k must be positive")
        if exclude_seen:
            # Per queried user, not the global max: one heavy user must
            # not make every other user's request infeasible.
            for user in users.tolist():
                if k > n_items - self.index.seen_count(user):
                    raise ValueError(
                        f"top_k exceeds the number of unseen items for "
                        f"user {user}")
        elif k > n_items:
            raise ValueError("top_k exceeds the number of items")

    def recommend(self, user: int, k: Optional[int] = None,
                  exclude_seen: Optional[bool] = None) -> Recommendation:
        """Ranked top-k for one user (cached)."""
        return self.recommend_batch([user], k=k, exclude_seen=exclude_seen)[0]

    def recommend_batch(
        self,
        users: Sequence[int],
        k: Optional[int] = None,
        exclude_seen: Optional[bool] = None,
    ) -> list[Recommendation]:
        """Ranked top-k lists for many users in one micro-batched pass.

        Cache hits are answered immediately; the remaining users are
        scored together through the batch scorer, so a cold multi-user
        query costs one grid evaluation rather than one per user.
        """
        users_arr = np.asarray(users, dtype=np.int64)
        if users_arr.ndim != 1:
            raise ValueError("users must be a 1-d sequence")
        if users_arr.size and (users_arr.min() < 0
                               or users_arr.max() >= self.dataset.n_users):
            raise ValueError("user id out of range")
        k = self.top_k if k is None else int(k)
        exclude_seen = self.exclude_seen if exclude_seen is None else exclude_seen
        with self._lock:
            self._validate_k(k, exclude_seen, users_arr)
            self.requests += users_arr.size

            results: dict[int, Recommendation] = {}
            missing: list[int] = []
            pending: set[int] = set()
            for user in users_arr.tolist():
                if user in results or user in pending:
                    continue
                cached = self.cache.get((user, k, exclude_seen))
                if cached is not None:
                    results[user] = cached
                else:
                    missing.append(user)
                    pending.add(user)

            # Blocks of ``user_batch`` bound peak memory: each block's
            # [user_batch, n_items] score matrix is ranked and freed
            # before the next is scored.
            for start in range(0, len(missing), self.user_batch):
                block_users = missing[start:start + self.user_batch]
                block = np.asarray(block_users, dtype=np.int64)
                scores = self.scorer.score(block)
                if exclude_seen:
                    self.index.mask_seen(scores, block)
                ranked = self.index.topk(scores, k)
                ranked_scores = np.take_along_axis(scores, ranked, axis=1)
                self.users_scored += block.size
                for row, user in enumerate(block_users):
                    rec = Recommendation(user=user, items=ranked[row],
                                         scores=ranked_scores[row])
                    self.cache.put((user, k, exclude_seen), rec)
                    results[user] = rec

        return [results[user] for user in users_arr.tolist()]

    # ------------------------------------------------------------------
    def add_interaction(self, user: int, item: int) -> bool:
        """Record that ``user`` interacted with ``item``.

        Updates the seen-item mask and invalidates the user's cached
        lists; model parameters are unchanged (retraining is an offline
        concern).  Returns False when the pair was already known.
        """
        with self._lock:
            novel = self.index.add(user, item)
            if novel:
                self.interactions_added += 1
                self.cache.invalidate(lambda key: key[0] == int(user))
            return novel

    def stats(self) -> dict:
        """Operational counters for the ``/stats`` endpoint."""
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        return {
            "model": getattr(self, "model_name", type(self.model).__name__),
            "dataset": self.dataset.name,
            "n_users": self.dataset.n_users,
            "n_items": self.dataset.n_items,
            "top_k_default": self.top_k,
            "requests": self.requests,
            "users_scored": self.users_scored,
            "interactions_added": self.interactions_added,
            "fast_path": self.scorer.uses_fast_path,
            "cache": self.cache.stats(),
        }
