"""The online serving facade: scorer + index + cache behind one object.

A :class:`RecommendationService` owns the full query path

    cache lookup → micro-batched grid scoring → seen masking →
    top-k ranking → cache fill

and keeps request counters so operators can watch hit rates.  It is
transport-agnostic: the HTTP layer (:mod:`repro.serving.server`) and
any in-process caller share the same entry points.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, render_snapshot
from repro.obs.tracing import Tracer
from repro.serving.ann import ANNConfig
from repro.serving.cache import LRUCache
from repro.serving.index import TopKIndex
from repro.serving.scorer import BatchScorer
from repro.training.online import IncrementalTrainer, OnlineConfig


@dataclass(frozen=True)
class Recommendation:
    """One ranked list: parallel item ids and scores, best first."""

    user: int
    items: np.ndarray
    scores: np.ndarray

    def to_dict(self) -> dict:
        return {
            "user": self.user,
            "items": [int(i) for i in self.items],
            "scores": [float(s) for s in self.scores],
        }


class RecommendationService:
    """Serves ranked item lists for users of one trained model.

    Parameters
    ----------
    model, dataset:
        The scoring model and the catalogue/interaction source.
    top_k:
        Default list length when a query does not specify one.
    exclude_seen:
        Default seen-item filtering behavior.
    cache_size:
        LRU entries kept (0 disables caching).
    user_batch:
        Users scored per grid block inside a multi-user query.
    scorer_mode:
        Forwarded to :class:`BatchScorer` (``"auto"``/``"exact"``).
    online:
        Optional :class:`~repro.training.online.IncrementalTrainer`
        (or ``online_config`` to build one): arriving interactions then
        fold into the model instead of only masking, see
        :meth:`update_interactions`.
    ann:
        ``True`` or an :class:`~repro.serving.ann.ANNConfig` opts into
        IVF candidate retrieval: each query scores only the items in
        the probed clusters (exact re-rank, recall traded per the
        probe count).  Models without the bilinear grid decomposition,
        and catalogues under ``min_items``, silently keep the exact
        full-grid path.  Users whose unseen candidate pool comes back
        smaller than ``k`` fall back to exact scoring, so responses
        are always complete and never contain seen items.
    """

    def __init__(
        self,
        model: RecommenderModel,
        dataset: RecDataset,
        top_k: int = 10,
        exclude_seen: bool = True,
        cache_size: int = 1024,
        user_batch: int = 32,
        scorer_mode: str = "auto",
        online: Optional[IncrementalTrainer] = None,
        online_config: Optional[OnlineConfig] = None,
        ann: Optional[ANNConfig] = None,
        metrics: bool = True,
        tracing: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if ann is True:
            ann = ANNConfig()
        self.model = model
        self.dataset = dataset
        self.top_k = top_k
        self.exclude_seen = exclude_seen
        self.user_batch = user_batch
        # Metrics are on by default (gated ≤3% overhead in
        # benchmarks/test_obs_overhead.py); ``metrics=False`` swaps in
        # no-op handles with the same API.  Tracing is opt-in and
        # purely observational: responses are byte-identical either
        # way.  One registry is shared with the cache, the scorer and
        # any service-built online trainer, so /stats and /metrics read
        # the same counters and can never disagree.
        self.registry = registry if registry is not None else (
            MetricsRegistry() if metrics else NULL_REGISTRY)
        self.tracer = Tracer(enabled=tracing)
        self._m_requests = self.registry.counter(
            "repro_requests_total", "users requested across recommend calls")
        self._m_users_scored = self.registry.counter(
            "repro_users_scored_total", "users scored past the cache")
        self._m_interactions = self.registry.counter(
            "repro_interactions_added_total", "novel interactions recorded")
        self._m_folded = self.registry.counter(
            "repro_updates_folded_in_total",
            "events folded into the model online")
        self._m_ann_fallbacks = self.registry.counter(
            "repro_ann_fallbacks_total",
            "ANN rows that fell back to exact scoring")
        self._m_request_seconds = self.registry.histogram(
            "repro_request_seconds", "recommend_batch wall time (seconds)")
        self._m_update_seconds = self.registry.histogram(
            "repro_update_seconds", "update_interactions wall time (seconds)")
        self.scorer = BatchScorer(model, dataset, mode=scorer_mode,
                                  user_batch=user_batch, ann=ann,
                                  registry=self.registry)
        # Private (not the shared per-dataset instance): add_interaction
        # mutates the overlay, which must stay local to this service.
        self.index = TopKIndex.from_dataset(dataset)
        self.cache = LRUCache(cache_size, registry=self.registry)
        # One coarse lock covers cache + index + counters: the HTTP
        # front-end is a ThreadingHTTPServer, and the OrderedDict/
        # overlay mutations are not thread-safe on their own.
        self._lock = threading.RLock()
        if online is not None and online_config is not None:
            raise ValueError("pass online or online_config, not both")
        if online is None and online_config is not None:
            online = IncrementalTrainer(model, dataset, online_config,
                                        registry=self.registry)
        self.online = online

    # -- registry-backed counters, readable as plain attributes --------
    @property
    def requests(self) -> int:
        return int(self._m_requests.value)

    @property
    def users_scored(self) -> int:
        return int(self._m_users_scored.value)

    @property
    def interactions_added(self) -> int:
        return int(self._m_interactions.value)

    @property
    def updates_folded_in(self) -> int:
        return int(self._m_folded.value)

    @property
    def ann_fallbacks(self) -> int:
        return int(self._m_ann_fallbacks.value)

    @classmethod
    def from_artifact(cls, path: str, mmap: bool = False,
                      **kwargs) -> "RecommendationService":
        """Boot a service straight from a saved artifact bundle.

        ``mmap=True`` (manifest-layout bundles only) maps the parameter
        arrays read-only instead of copying them into the process:
        every service booted from the same bundle — including forked
        cluster replicas — shares one page cache.  Read-only models
        serve normally; fold-in needs ``mmap=False`` or an
        ``OnlineConfig(on_readonly="copy")`` trainer.
        """
        from repro.serving.artifact import load_artifact

        loaded = load_artifact(path, mmap=mmap)
        service = cls(loaded.model, loaded.dataset, **kwargs)
        service.model_name = loaded.model_name
        return service

    # ------------------------------------------------------------------
    def _validate_k(self, k: int, exclude_seen: bool,
                    users: np.ndarray) -> None:
        n_items = self.dataset.n_items
        if k <= 0:
            raise ValueError("top_k must be positive")
        if exclude_seen:
            # Per queried user, not the global max: one heavy user must
            # not make every other user's request infeasible.
            for user in users.tolist():
                if k > n_items - self.index.seen_count(user):
                    raise ValueError(
                        f"top_k exceeds the number of unseen items for "
                        f"user {user}")
        elif k > n_items:
            raise ValueError("top_k exceeds the number of items")

    def recommend(self, user: int, k: Optional[int] = None,
                  exclude_seen: Optional[bool] = None) -> Recommendation:
        """Ranked top-k for one user (cached)."""
        return self.recommend_batch([user], k=k, exclude_seen=exclude_seen)[0]

    def recommend_batch(
        self,
        users: Sequence[int],
        k: Optional[int] = None,
        exclude_seen: Optional[bool] = None,
    ) -> list[Recommendation]:
        """Ranked top-k lists for many users in one micro-batched pass.

        Cache hits are answered immediately; the remaining users are
        scored together through the batch scorer, so a cold multi-user
        query costs one grid evaluation rather than one per user.
        """
        users_arr = np.asarray(users, dtype=np.int64)
        if users_arr.ndim != 1:
            raise ValueError("users must be a 1-d sequence")
        if users_arr.size and (users_arr.min() < 0
                               or users_arr.max() >= self.dataset.n_users):
            raise ValueError("user id out of range")
        k = self.top_k if k is None else int(k)
        exclude_seen = self.exclude_seen if exclude_seen is None else exclude_seen
        with self._m_request_seconds.time(), \
                self.tracer.start("recommend_batch"), self._lock:
            self._validate_k(k, exclude_seen, users_arr)
            self._m_requests.inc(int(users_arr.size))

            results: dict[int, Recommendation] = {}
            missing: list[int] = []
            with self.tracer.span("cache_lookup", users=int(users_arr.size)):
                unique_users = list(dict.fromkeys(users_arr.tolist()))
                cached_values = self.cache.get_many(
                    [(user, k, exclude_seen) for user in unique_users])
                for user, cached in zip(unique_users, cached_values):
                    if cached is not None:
                        results[user] = cached
                    else:
                        missing.append(user)

            # Blocks of ``user_batch`` bound peak memory: each block's
            # [user_batch, n_items] score matrix is ranked and freed
            # before the next is scored.
            for start in range(0, len(missing), self.user_batch):
                block_users = missing[start:start + self.user_batch]
                block = np.asarray(block_users, dtype=np.int64)
                if self.scorer.ann_active:
                    ranked, ranked_scores = self._rank_block_ann(
                        block, k, exclude_seen)
                else:
                    ranked, ranked_scores = self._rank_block_exact(
                        block, k, exclude_seen)
                self._m_users_scored.inc(int(block.size))
                block_entries = []
                for row, user in enumerate(block_users):
                    rec = Recommendation(user=user, items=ranked[row],
                                         scores=ranked_scores[row])
                    block_entries.append(((user, k, exclude_seen), rec))
                    results[user] = rec
                self.cache.put_many(block_entries)

            return [results[user] for user in users_arr.tolist()]

    def _rank_block_exact(self, block: np.ndarray, k: int,
                          exclude_seen: bool) -> tuple[np.ndarray, np.ndarray]:
        """Full-grid scoring + masking + ranking for one user block."""
        with self.tracer.span("rerank", path="exact", users=int(block.size)):
            scores = self.scorer.score(block)
            if exclude_seen:
                with self.tracer.span("mask_seen"):
                    self.index.mask_seen(scores, block)
            ranked = self.index.topk(scores, k)
        return ranked, np.take_along_axis(scores, ranked, axis=1)

    def _rank_block_ann(self, block: np.ndarray, k: int,
                        exclude_seen: bool) -> tuple[np.ndarray, np.ndarray]:
        """IVF candidates + exact re-rank, with per-row exact fallback.

        A row falls back to the full grid when its candidate slate —
        after seen-item masking — cannot fill ``k`` positions
        (``_validate_k`` already guaranteed the full catalogue can).
        """
        with self.tracer.span("ann_candidates", users=int(block.size)):
            cand = self.scorer.ann_candidates(block)
        with self.tracer.span("rerank", path="ann", users=int(block.size)):
            scores = self.scorer.score_listed(block, cand)
            if exclude_seen:
                with self.tracer.span("mask_seen"):
                    scores[self.index.pair_seen(block, cand)] = -np.inf
            usable = np.isfinite(scores).sum(axis=1)
            if cand.shape[1] >= k:
                cols = self.index.topk(scores, k)
                items = np.take_along_axis(cand, cols, axis=1)
                item_scores = np.take_along_axis(scores, cols, axis=1)
                short_rows = np.flatnonzero(usable < k)
            else:
                items = np.zeros((block.size, k), dtype=np.int64)
                item_scores = np.zeros((block.size, k))
                short_rows = np.arange(block.size)
        if short_rows.size:
            self._m_ann_fallbacks.inc(int(short_rows.size))
            exact_items, exact_scores = self._rank_block_exact(
                block[short_rows], k, exclude_seen)
            items[short_rows] = exact_items
            item_scores[short_rows] = exact_scores
        return items, item_scores

    # ------------------------------------------------------------------
    def add_interaction(self, user: int, item: int) -> bool:
        """Record that ``user`` interacted with ``item``.

        Single-event convenience over :meth:`update_interactions`.
        Returns False when the pair was already known.
        """
        return self.update_interactions([user], [item])["novel"] > 0

    def update_interactions(
        self, users: Sequence[int], items: Sequence[int]
    ) -> dict:
        """Ingest a batch of observed interactions.

        Always updates the seen-item overlay of the :class:`TopKIndex`
        (novel pairs only) so future lists stop recommending what the
        user just consumed.  When an online trainer is attached, the
        batch additionally *folds into the model*
        (:meth:`~repro.training.online.IncrementalTrainer.update`) and
        the scorer's item-side state is refreshed so the next grid
        evaluation scores with the updated parameters.

        Cache invalidation is as narrow as correctness allows: without
        fold-in (or with user-side-only fold-in) only the touched
        users' cached lists drop; item-side fold-in moves every user's
        scores, so then the whole cache is flushed.

        Malformed batches (ragged, out-of-range ids) are rejected up
        front with nothing ingested.  If the *fold-in step itself*
        fails (e.g. :class:`~repro.training.online.FoldInDivergedError`),
        the events stay recorded in the seen-item overlay and the
        touched users' cache entries are already dropped — index,
        cache and model remain mutually consistent — and the error
        propagates to the caller.

        Returns a report dict (``events``, ``novel``, ``folded_in``,
        ``invalidated``, and ``loss`` when fold-in ran).
        """
        users_arr = np.asarray(users, dtype=np.int64)
        items_arr = np.asarray(items, dtype=np.int64)
        if users_arr.shape != items_arr.shape or users_arr.ndim != 1:
            raise ValueError("users and items must be parallel 1-d sequences")
        if users_arr.size == 0:
            raise ValueError("no events supplied")
        # Whole-batch validation up front: a rejected request must not
        # leave a partially ingested batch behind.
        if users_arr.min() < 0 or users_arr.max() >= self.dataset.n_users:
            raise ValueError("user id out of range")
        if items_arr.min() < 0 or items_arr.max() >= self.dataset.n_items:
            raise ValueError("item id out of range")
        with self._m_update_seconds.time(), \
                self.tracer.start("update_interactions"), self._lock:
            novel = 0
            for user, item in zip(users_arr.tolist(), items_arr.tolist()):
                novel += bool(self.index.add(user, item))
            self._m_interactions.inc(novel)
            report = {
                "events": int(users_arr.size),
                "novel": novel,
                "folded_in": False,
                "invalidated": 0,
            }
            touched = set(users_arr.tolist())
            # Touched users' entries drop *before* fold-in runs: their
            # seen sets just changed, and doing it now keeps index and
            # cache consistent even if the fold-in step below raises.
            if novel or self.online is not None:
                report["invalidated"] = self.cache.invalidate(
                    lambda key: key[0] in touched)
            if self.online is not None:
                with self.tracer.span("fold_in", events=int(users_arr.size)):
                    update = self.online.update(users_arr, items_arr)
                self._m_folded.inc(update.events)
                report["folded_in"] = True
                report["loss"] = update.loss
                if (update.item_side_updated
                        or not getattr(self.model, "fold_in_is_local", True)):
                    # Item representations moved (or the model is
                    # non-local, e.g. graph propagation): the item-side
                    # precompute and every cached list are potentially
                    # stale.  User-side-only fold-in on a local model
                    # skips both — item_state provably didn't change.
                    self.scorer.refresh()
                    report["invalidated"] += self.cache.invalidate()
            return report

    def stats(self) -> dict:
        """Operational counters for the ``/stats`` endpoint."""
        with self._lock:
            return self._stats_locked()

    # -- observability surfaces ----------------------------------------
    def metrics_snapshot(self) -> list[dict]:
        """Plain-JSON metric entries (mergeable across processes)."""
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        return render_snapshot(self.metrics_snapshot())

    def traces(self, n: Optional[int] = None) -> list[dict]:
        """Recent finished traces, newest first (``GET /trace``)."""
        return self.tracer.traces(n)

    def _stats_locked(self) -> dict:
        return {
            "model": getattr(self, "model_name", type(self.model).__name__),
            "dataset": self.dataset.name,
            "n_users": self.dataset.n_users,
            "n_items": self.dataset.n_items,
            "top_k_default": self.top_k,
            "requests": self.requests,
            "users_scored": self.users_scored,
            "interactions_added": self.interactions_added,
            "online_updates": self.online is not None,
            "updates_folded_in": self.updates_folded_in,
            "fast_path": self.scorer.uses_fast_path,
            "ann": self.scorer.ann_active,
            "ann_fallbacks": self.ann_fallbacks,
            "cache": self.cache.stats(),
        }
