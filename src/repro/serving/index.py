"""Top-K retrieval over scored catalogues with seen-item masking.

Holds the user→seen-items relation as a shared
:class:`repro.data.membership.UserPositives` CSR (deduplicated, sorted)
so masking a whole batch of score rows is a single fancy-indexed
assignment, and ranks the masked rows with ``argpartition`` —
O(n + k log k) per row instead of a full sort.  Interaction updates
land in a per-user overlay so serving can mask newly observed items
without rebuilding the base structure.
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.data.membership import UserPositives

#: Shared read-only index per dataset (see :meth:`TopKIndex.for_dataset`).
_SHARED_INDEXES: "weakref.WeakKeyDictionary[RecDataset, TopKIndex]" = (
    weakref.WeakKeyDictionary())


class TopKIndex:
    """Seen-item masking + top-k ranking for score matrices."""

    def __init__(self, n_users: int, n_items: int,
                 users: Optional[np.ndarray] = None,
                 items: Optional[np.ndarray] = None,
                 membership: Optional[UserPositives] = None):
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        if membership is None:
            membership = UserPositives(
                self.n_users, self.n_items,
                np.asarray(users if users is not None else [], dtype=np.int64),
                np.asarray(items if items is not None else [], dtype=np.int64))
        self._membership = membership
        self._indices = membership.indices
        self._indptr = membership.indptr
        # Interactions observed after construction, per user.
        self._extra: dict[int, set[int]] = {}
        # Running max seen count, maintained by add() so per-request
        # feasibility checks stay O(1).
        self._max_seen = membership.max_degree()

    @classmethod
    def from_dataset(cls, dataset: RecDataset) -> "TopKIndex":
        """A fresh index over the dataset's log.

        The immutable base CSR is the dataset's shared
        :meth:`~repro.data.dataset.RecDataset.membership` structure
        (never mutated — updates go to this index's private overlay).
        """
        return cls(dataset.n_users, dataset.n_items,
                   membership=dataset.membership())

    @classmethod
    def for_dataset(cls, dataset: RecDataset) -> "TopKIndex":
        """The shared per-dataset index (built once, weakly cached).

        For read-only use (``mask_seen``/``topk``/``max_seen``) such as
        repeated :func:`repro.training.recommend.recommend` calls; do
        not :meth:`add` to it — owners of a mutable overlay (e.g. the
        serving service) build a private copy with :meth:`from_dataset`.
        """
        index = _SHARED_INDEXES.get(dataset)
        if index is None:
            index = cls.from_dataset(dataset)
            _SHARED_INDEXES[dataset] = index
        return index

    # ------------------------------------------------------------------
    def seen(self, user: int) -> np.ndarray:
        """Item ids the user has interacted with (base + overlay)."""
        base = self._indices[self._indptr[user]:self._indptr[user + 1]]
        extra = self._extra.get(int(user))
        if not extra:
            return base
        return np.union1d(base, np.fromiter(extra, dtype=np.int64))

    def seen_count(self, user: int) -> int:
        """O(1): base CSR degree plus overlay size (kept disjoint)."""
        user = int(user)
        base = int(self._indptr[user + 1] - self._indptr[user])
        extra = self._extra.get(user)
        return base + (len(extra) if extra else 0)

    def max_seen(self) -> int:
        """Largest per-user seen count (bounds the feasible top-k)."""
        return self._max_seen

    def add(self, user: int, item: int) -> bool:
        """Record a new interaction; returns False if already seen."""
        user, item = int(user), int(item)
        if not 0 <= user < self.n_users:
            raise ValueError("user id out of range")
        if not 0 <= item < self.n_items:
            raise ValueError("item id out of range")
        base = self._indices[self._indptr[user]:self._indptr[user + 1]]
        pos = np.searchsorted(base, item)
        if pos < base.size and base[pos] == item:
            return False
        extra = self._extra.setdefault(user, set())
        if item in extra:
            return False
        extra.add(item)
        self._max_seen = max(self._max_seen, self.seen_count(user))
        return True

    # ------------------------------------------------------------------
    def mask_seen(self, scores: np.ndarray, users: np.ndarray) -> np.ndarray:
        """Set each row's seen-item entries to ``-inf`` (in place)."""
        users = np.asarray(users, dtype=np.int64)
        cols = [self.seen(u) for u in users]
        lengths = [c.size for c in cols]
        if sum(lengths) == 0:
            return scores
        rows = np.repeat(np.arange(users.size), lengths)
        scores[rows, np.concatenate(cols)] = -np.inf
        return scores

    def pair_seen(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """``bool [len(users), m]``: which listed items each user saw.

        ``items`` is a per-user candidate matrix (``-1`` padding allowed
        and reported as unseen — the scorer already masks pads).  Base
        CSR membership resolves in one vectorized ``contains`` call;
        the mutable overlay is consulted only for rows whose user has
        overlay entries.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 2 or items.shape[0] != users.size:
            raise ValueError("items must be [len(users), m]")
        pad = items < 0
        safe = np.where(pad, 0, items)
        flat_users = np.repeat(users, items.shape[1])
        seen = self._membership.contains(
            flat_users, safe.ravel()).reshape(items.shape)
        for row, user in enumerate(users.tolist()):
            extra = self._extra.get(user)
            if extra:
                seen[row] |= np.isin(safe[row],
                                     np.fromiter(extra, dtype=np.int64))
        seen &= ~pad
        return seen

    def topk(self, scores: np.ndarray, k: int) -> np.ndarray:
        """``int64 [rows, k]`` item ids per row, highest score first."""
        if not 0 < k <= scores.shape[1]:
            raise ValueError("k must be in (0, n_items]")
        neg = -scores
        part = np.argpartition(neg, k - 1, axis=1)[:, :k]
        order = np.argsort(np.take_along_axis(neg, part, axis=1), axis=1)
        return np.take_along_axis(part, order, axis=1).astype(np.int64)
