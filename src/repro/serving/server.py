"""Stdlib HTTP front-end and the ``repro serve`` entry point.

Endpoints (JSON over ``http.server``; no third-party dependencies):

- ``GET /recommend?user=<id>&k=<n>[&exclude_seen=0|1]`` — ranked list
- ``POST /update`` — ingest observed interactions; body is either one
  event ``{"user": u, "item": i}`` or a batch
  ``{"events": [[u, i], ...]}`` (at most ``max_update_batch`` events).
  With ``--online``, events also fold into the model incrementally.
- ``GET /healthz`` — liveness probe
- ``GET /stats`` — service counters (requests, cache hit rate, …)
- ``GET /metrics`` — Prometheus text exposition (``?format=json`` for
  the raw snapshot entries); clusters aggregate across shards and add
  per-shard detail
- ``GET /trace?n=<count>`` — recent request traces (requires
  ``--trace``; empty list otherwise)

``serve_main`` backs the CLI subcommand: it boots a service from an
artifact bundle or a freshly built (optionally quick-trained) model and
blocks in ``serve_forever``.  ``--selfcheck`` instead boots on a small
synthetic dataset, issues one query over real HTTP and exits 0 — a CI
smoke gate.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.serving.service import RecommendationService

#: Status lines http.server knows; the async frontend reuses them so
#: both frontends emit identical reason phrases.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4"
JSON_CONTENT_TYPE = "application/json"

#: Default per-connection socket timeout (seconds).  A client that
#: stalls mid-request used to pin a handler thread (and, behind a
#: cluster, a replica RPC slot) forever; now the read trips, the
#: connection gets a 408 (or a plain close when not even the request
#: line arrived) and the thread is reclaimed.
DEFAULT_REQUEST_TIMEOUT = 30.0


# ----------------------------------------------------------------------
# Request semantics shared by the threaded and async frontends.
#
# Both frontends answer every endpoint through these helpers, so the
# response bodies are byte-identical by construction — the frontends
# differ only in transport (thread-per-request blocking I/O vs one
# selector loop) and in how /recommend calls are batched.
# ----------------------------------------------------------------------
def json_response(status: int, payload: dict) -> tuple[int, str, bytes]:
    return status, JSON_CONTENT_TYPE, json.dumps(payload).encode("utf-8")


def error_response(exc: BaseException) -> tuple[int, str, bytes]:
    """The shared exception → HTTP status mapping.

    ``ValueError``/``OverflowError`` are client-input invalidity (ids
    that overflow the int64 arrays included) → 400; anything else is a
    server fault → 500.
    """
    if isinstance(exc, (ValueError, OverflowError)):
        return json_response(400, {"error": str(exc)})
    return json_response(500, {"error": f"{type(exc).__name__}: {exc}"})


def parse_recommend_query(query: dict) -> tuple[int, Optional[int],
                                                Optional[bool]]:
    """``(user, k, exclude_seen)`` from a parsed query string.

    ``None`` means "service default" for ``k``/``exclude_seen``.
    """
    if "user" not in query:
        raise ValueError("missing required query parameter 'user'")
    try:
        user = int(query["user"][0])
        k = int(query["k"][0]) if "k" in query else None
    except ValueError:
        raise ValueError("'user' and 'k' must be integers") from None
    exclude_seen = None
    if "exclude_seen" in query:
        exclude_seen = (query["exclude_seen"][0].strip().lower()
                        not in ("0", "false", "no"))
    return user, k, exclude_seen


def parse_update_payload(payload: dict,
                         max_update_batch: int) -> tuple[list, list]:
    """Validate an /update body into parallel ``(users, items)`` lists."""
    if "events" in payload:
        events = payload["events"]
        if not isinstance(events, list) or not events:
            raise ValueError("'events' must be a non-empty list")
        if len(events) > max_update_batch:
            raise ValueError(
                f"batch of {len(events)} events exceeds the limit of "
                f"{max_update_batch} per request")
    elif "user" in payload and "item" in payload:
        # A single event is just a batch of one: share the
        # validation below.
        events = [payload]
    else:
        raise ValueError(
            "body must carry 'user' + 'item' or an 'events' list")
    users, items = [], []
    for event in events:
        if isinstance(event, dict):
            pair = (event.get("user"), event.get("item"))
        elif isinstance(event, (list, tuple)) and len(event) == 2:
            pair = tuple(event)
        else:
            raise ValueError(
                "each event must be {'user': u, 'item': i} or [u, i]")
        if not all(isinstance(v, int) and not isinstance(v, bool)
                   for v in pair):
            raise ValueError("'user' and 'item' must be integers")
        users.append(pair[0])
        items.append(pair[1])
    return users, items


def decode_json_body(body: bytes) -> dict:
    """Parse a request body as a JSON object (ValueError on anything else)."""
    if not body:
        raise ValueError("empty request body (expected JSON)")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed JSON body: {exc.msg}") from None
    if not isinstance(payload, dict):
        raise ValueError("JSON body must be an object")
    return payload


def oversized_body_error(length: int, limit: int) -> ValueError:
    return ValueError(f"request body of {length} bytes exceeds the limit of "
                      f"{limit} bytes")


def respond_get(service, target: str) -> tuple[int, str, bytes]:
    """Answer any GET endpoint; raises for the error mapping to catch."""
    url = urlsplit(target)
    query = parse_qs(url.query)
    if url.path == "/healthz":
        return json_response(200, {"status": "ok"})
    if url.path == "/stats":
        return json_response(200, service.stats())
    if url.path == "/metrics":
        fmt = query.get("format", ["text"])[0].strip().lower()
        if fmt == "json":
            return json_response(200, {"metrics": service.metrics_snapshot()})
        if fmt == "text":
            return (200, METRICS_CONTENT_TYPE,
                    service.metrics_text().encode("utf-8"))
        raise ValueError(f"unknown metrics format {fmt!r} "
                         f"(options: text, json)")
    if url.path == "/trace":
        try:
            n = int(query["n"][0]) if "n" in query else 20
        except ValueError:
            raise ValueError("'n' must be an integer") from None
        if n < 0:
            raise ValueError("'n' must be non-negative")
        return json_response(200, {"traces": service.traces(n)})
    if url.path == "/recommend":
        user, k, exclude_seen = parse_recommend_query(query)
        rec = service.recommend(user, k=k, exclude_seen=exclude_seen)
        return json_response(200, rec.to_dict())
    return json_response(404, {"error": f"unknown path {url.path!r}"})


def respond_post(service, target: str, body: bytes,
                 max_update_batch: int) -> tuple[int, str, bytes]:
    """Answer any POST endpoint; raises for the error mapping to catch."""
    url = urlsplit(target)
    if url.path == "/update":
        users, items = parse_update_payload(decode_json_body(body),
                                            max_update_batch)
        return json_response(200, service.update_interactions(users, items))
    return json_response(404, {"error": f"unknown path {url.path!r}"})


class RecommendHandler(BaseHTTPRequestHandler):
    """Routes GET requests onto the server's attached service."""

    server: "RecommendationServer"

    def setup(self) -> None:
        # Applied before any read: StreamRequestHandler.setup calls
        # settimeout with this value, so even the request line cannot
        # stall the thread past the budget.
        self.timeout = self.server.request_timeout
        super().setup()

    def _send(self, response: tuple[int, str, bytes]) -> None:
        status, content_type, body = response
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: dict) -> None:
        self._send(json_response(status, payload))

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._send(respond_get(self.server.service, self.path))
        except TimeoutError:
            self._timed_out()
        except Exception as exc:
            self._send(error_response(exc))

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._send(respond_post(self.server.service, self.path,
                                    self._read_body(),
                                    self.server.max_update_batch))
        except TimeoutError:
            self._timed_out()
        except Exception as exc:
            self._send(error_response(exc))

    def _timed_out(self) -> None:
        """The client stalled mid-body: answer 408 and drop the socket.

        (A stall before the headers completed never reaches a handler
        method — ``handle_one_request`` hits the same socket timeout on
        its first read and closes the connection without a response.)
        """
        self._reply(408, {"error": "request timed out"})
        self.close_connection = True

    def _read_body(self) -> bytes:
        """Read the request body (raises the shared oversize ValueError)."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ValueError("invalid Content-Length header") from None
        limit = self.server.max_body_bytes
        if length > limit:
            # Checked before buffering: the cap must bound memory, not
            # just event counts.  The rejected body is still *drained*
            # (chunked, never held) — answering without reading leaves
            # the client blocked mid-send on a full socket buffer, and
            # it sees a connection reset instead of this 400.  Truly
            # abusive declarations fall past the drain ceiling and get
            # the reset they deserve.
            self._discard_body(length)
            raise oversized_body_error(length, limit)
        return self.rfile.read(length) if length > 0 else b""

    def _discard_body(self, length: int, ceiling: int = 16 << 20) -> None:
        """Read and drop an oversized request body in bounded chunks."""
        remaining = min(length, ceiling)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class RecommendationServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers.

    ``service`` is anything with the service call surface —
    a :class:`RecommendationService` or a
    :class:`~repro.serving.cluster.ServingCluster`; the handlers only
    use ``recommend`` / ``update_interactions`` / ``stats``.
    """

    daemon_threads = True

    def __init__(self, service: "RecommendationService",
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False, max_update_batch: int = 1024,
                 max_body_bytes: int = 1 << 20,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT):
        if max_update_batch <= 0:
            raise ValueError("max_update_batch must be positive")
        if max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        super().__init__((host, port), RecommendHandler)
        self.service = service
        self.verbose = verbose
        self.max_update_batch = max_update_batch
        self.max_body_bytes = max_body_bytes
        self.request_timeout = request_timeout

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


FRONTENDS = ("threaded", "async")


def build_server(service: RecommendationService, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 max_update_batch: int = 1024,
                 max_body_bytes: int = 1 << 20,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
                 frontend: str = "threaded", **frontend_kwargs):
    """Bind (port 0 = ephemeral) without starting the accept loop.

    ``frontend`` picks the transport: ``"threaded"`` is the stdlib
    thread-per-request server, ``"async"`` the selector-based
    micro-batching event loop (:class:`repro.serving.frontend.AsyncFrontend`).
    Both return an object with the same operational surface
    (``url`` / ``serve_forever`` / ``shutdown`` / ``server_close``) and
    byte-identical response bodies.
    """
    if frontend == "threaded":
        if frontend_kwargs:
            raise TypeError(f"threaded frontend does not accept "
                            f"{sorted(frontend_kwargs)}")
        return RecommendationServer(service, host=host, port=port,
                                    verbose=verbose,
                                    max_update_batch=max_update_batch,
                                    max_body_bytes=max_body_bytes,
                                    request_timeout=request_timeout)
    if frontend == "async":
        from repro.serving.frontend import AsyncFrontend

        return AsyncFrontend(service, host=host, port=port, verbose=verbose,
                             max_update_batch=max_update_batch,
                             max_body_bytes=max_body_bytes,
                             request_timeout=request_timeout,
                             **frontend_kwargs)
    raise ValueError(f"unknown frontend {frontend!r}; options: {FRONTENDS}")


# ----------------------------------------------------------------------
# CLI backing
# ----------------------------------------------------------------------
def _build_service(args) -> RecommendationService:
    from repro.data.sampling import NegativeSampler
    from repro.data.synthetic import make_dataset
    from repro.experiments.configs import get_scale
    from repro.experiments.registry import build_model, is_pairwise
    from repro.serving.ann import ANNConfig
    from repro.training.online import IncrementalTrainer, OnlineConfig
    from repro.training.trainer import TrainConfig, Trainer

    def ann_config():
        if not getattr(args, "ann", False):
            return None
        return ANNConfig(n_clusters=getattr(args, "ann_clusters", None),
                         probes=getattr(args, "ann_probes", None),
                         seed=args.seed)

    def online_config_for(model_name: str):
        # Serving default is user-side-only fold-in: cached lists of
        # untouched users stay exactly valid, so /update invalidates
        # only the touched users' entries.  Pairwise-trained models
        # (BPR-MF, NGCF) fold in with BPR steps — squared-loss steps
        # toward +/-1 would distort their uncalibrated ranking scores.
        if not getattr(args, "online", False):
            return None
        return OnlineConfig(
            sides=("user",), seed=args.seed,
            objective="pairwise" if is_pairwise(model_name) else "pointwise")

    tracing = getattr(args, "trace", False)
    if args.artifact:
        service = RecommendationService.from_artifact(
            args.artifact, mmap=getattr(args, "mmap", False),
            top_k=args.top_k, cache_size=args.cache_size,
            ann=ann_config(), tracing=tracing)
        # The objective depends on the bundled model's name, which is
        # only known after loading — attach the trainer afterwards.
        config = online_config_for(service.model_name)
        if config is not None:
            service.online = IncrementalTrainer(
                service.model, service.dataset, config)
        return service

    scale = get_scale(args.scale)
    dataset = make_dataset(args.dataset, seed=args.seed,
                           scale=scale.dataset_scale)
    model = build_model(args.model, dataset, k=args.k, seed=args.seed,
                        train_users=dataset.users, train_items=dataset.items)
    if args.epochs > 0:
        sampler = NegativeSampler(dataset, seed=args.seed)
        backend = getattr(args, "backend", None)
        extra = {} if backend is None else {"backend": backend}
        trainer = Trainer(model, TrainConfig(epochs=args.epochs,
                                             seed=args.seed, **extra))
        index = np.arange(dataset.n_interactions)
        if is_pairwise(args.model):
            users, pos, neg = sampler.build_pairwise_training_set(index)
            trainer.fit_pairwise(users, pos, neg)
        else:
            users, items, labels = sampler.build_pointwise_training_set(index, n_neg=2)
            trainer.fit_pointwise(users, items, labels)
    service = RecommendationService(model, dataset, top_k=args.top_k,
                                    cache_size=args.cache_size,
                                    online_config=online_config_for(args.model),
                                    ann=ann_config(), tracing=tracing)
    service.model_name = args.model
    return service


def selfcheck(verbose: bool = True) -> int:
    """Boot on a synthetic dataset, probe every endpoint, exit 0 on success.

    Covers the observability surfaces too: ``/metrics`` must expose the
    request counters the query just incremented and ``/trace`` must
    show the request's trace (the selfcheck service runs with tracing
    on).  The static contract checker runs as part of the gate: a
    ``repro lint --strict`` violation anywhere in the package fails
    the selfcheck exactly like a broken endpoint would.
    """
    import urllib.request

    from repro.data.synthetic import make_dataset
    from repro.experiments.registry import build_model
    from repro.lint.engine import run_lint

    lint_report = run_lint(strict=True)

    dataset = make_dataset("amazon-auto", seed=0, scale=0.1)
    model = build_model("GML-FMmd", dataset, k=8, seed=0)
    service = RecommendationService(model, dataset, top_k=5, cache_size=64,
                                    tracing=True)
    service.model_name = "GML-FMmd"
    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with urllib.request.urlopen(server.url + "/healthz", timeout=10) as resp:
            health = json.loads(resp.read())
        with urllib.request.urlopen(server.url + "/recommend?user=0&k=5",
                                    timeout=10) as resp:
            rec = json.loads(resp.read())
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as resp:
            metrics = resp.read().decode("utf-8")
        with urllib.request.urlopen(server.url + "/trace?n=5", timeout=10) as resp:
            traces = json.loads(resp.read())["traces"]
        ok = (health.get("status") == "ok"
              and rec.get("user") == 0
              and len(rec.get("items", [])) == 5
              and len(set(rec["items"])) == 5
              and "repro_requests_total 1" in metrics
              and "repro_request_seconds_bucket" in metrics
              and any(t["name"] == "recommend_batch" and t["spans"]
                      for t in traces)
              and lint_report.ok)
        if verbose:
            lint_state = ("clean" if lint_report.ok
                          else f"{len(lint_report.findings)} finding(s)")
            state = ("ok" if ok
                     else f"FAILED (health={health}, rec={rec}, "
                          f"traces={len(traces)}, lint={lint_state})")
            print(f"selfcheck {state}: served user 0 top-5 {rec.get('items')} "
                  f"on {server.url}; /metrics and /trace answered; "
                  f"lint {lint_state} "
                  f"({lint_report.files_checked} files)")
        return 0 if ok else 1
    finally:
        server.shutdown()
        server.server_close()


def serve_main(args) -> int:
    """Entry point behind ``python -m repro serve``.

    ``--shards 1`` (the default) is the original single-process path,
    untouched; ``--shards N`` builds the service once and forks it into
    a :class:`~repro.serving.cluster.ServingCluster` of
    ``N × --replicas`` workers behind the same HTTP front-end.
    """
    if args.selfcheck:
        return selfcheck()
    shards = getattr(args, "shards", 1)
    if shards < 1 or getattr(args, "replicas", 1) < 1:
        raise SystemExit("--shards and --replicas must be >= 1")
    if getattr(args, "mmap", False) and not args.artifact:
        raise SystemExit("--mmap requires --artifact (a dir-layout bundle)")
    frontend = getattr(args, "frontend", "auto") or "auto"
    if frontend == "auto":
        # Clusters default to the async frontend: one event loop in
        # front of N replica processes beats a thread herd contending
        # for the shard RPC locks.
        frontend = "async" if shards > 1 else "threaded"
    service = _build_service(args)
    cluster = None
    front = service
    if shards > 1:
        from repro.obs.logs import JsonLogger
        from repro.serving.cluster import ServingCluster

        # The factory closes over the fully built service: fork gives
        # every worker its own copy-on-write clone, so boot cost is
        # paid once no matter how many replicas launch.  --verbose
        # surfaces routine lifecycle events (spawns, readiness), not
        # just the default warnings (failover, heartbeat miss).
        cluster = ServingCluster(
            lambda: service, n_shards=shards,
            replicas=getattr(args, "replicas", 1), seed=args.seed,
            heartbeat_interval=2.0,
            tracing=getattr(args, "trace", False),
            log=JsonLogger(min_level="info") if args.verbose else None)
        front = cluster
    server = build_server(front, host=args.host, port=args.port,
                          verbose=args.verbose, frontend=frontend)
    stats = front.stats()
    # Printed (and flushed) before blocking so callers binding port 0
    # can discover the ephemeral port.
    print(f"serving {stats['model']} on {server.url} "
          f"(dataset={stats['dataset']}, items={stats['n_items']}, "
          f"shards={shards}, frontend={frontend})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        if cluster is not None:
            cluster.close()
    return 0
