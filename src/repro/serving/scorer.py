"""Vectorized batch scoring of whole user×catalogue grids.

The seed-era ``recommend`` loop called ``model.predict`` once per user
per item batch — a Python-level scan that re-encoded every pair.  The
:class:`BatchScorer` scores ``[n_users_in_batch, n_items]`` blocks:

- **fast path** — models exposing ``item_state`` / ``score_grid`` (the
  MF family, NGCF, LibFM and GML-FM's closed form, see
  :meth:`repro.models.base.RecommenderModel.item_state`) precompute
  item-side representations once; each user block is then a handful of
  numpy matmuls/broadcasts with no per-pair work at all;
- **exact path** — any other model is scored through chunked
  ``model.predict`` calls over the flattened grid.  Because every model
  scores rows independently in eval mode, this produces bit-identical
  values to per-user prediction, just without the per-user Python loop.

Equivalence contract: ``score(users)[r, i] == model.predict([u_r], [i])``
— bitwise on the exact path, to ~1e-9 relative on the fast path (the
matmuls and closed-form decompositions reorder floating-point sums);
ranked top-k lists agree with the per-user loop in either case (see
``tests/serving/test_scorer.py`` and the throughput benchmark).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel
from repro.obs.metrics import NULL_REGISTRY
from repro.serving.ann import ANNConfig, IVFIndex, whitening_scale

_MODES = ("auto", "exact")


class BatchScorer:
    """Scores users against the full item catalogue in vector batches.

    Parameters
    ----------
    model:
        Any :class:`RecommenderModel`; trained or not.
    dataset:
        Supplies the catalogue and encoding metadata.
    mode:
        ``"auto"`` uses the model's grid fast path when available;
        ``"exact"`` forces the bit-exact chunked-``predict`` path.
    user_batch:
        Fast-path user-axis block size (bounds the *intermediate*
        per-block memory; the returned ``[len(users), n_items]`` matrix
        itself scales with the request, so callers ranking huge user
        lists should chunk their calls — the service and ``recommend``
        both do).
    batch_pairs:
        Exact-path flattened (user, item) pairs per ``predict`` call.
    """

    def __init__(
        self,
        model: RecommenderModel,
        dataset: RecDataset,
        mode: str = "auto",
        user_batch: int = 32,
        batch_pairs: int = 32768,
        ann: Optional[ANNConfig] = None,
        registry=None,
    ):
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; options: {_MODES}")
        if user_batch <= 0 or batch_pairs <= 0:
            raise ValueError("user_batch and batch_pairs must be positive")
        self.model = model
        self.dataset = dataset
        self.n_items = dataset.n_items
        self.mode = mode
        self.user_batch = user_batch
        self.batch_pairs = batch_pairs
        self.ann_config = ann
        # Refresh cost and ANN query volume feed the shared registry
        # (no-op unless the owning service passes its own in).
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_refresh_seconds = registry.histogram(
            "repro_scorer_refresh_seconds",
            "item-state + ANN codebook rebuild wall time")
        self._m_ann_queries = registry.counter(
            "repro_ann_queries_total", "users answered from the ANN index")
        self._m_ann_candidates = registry.counter(
            "repro_ann_candidates_total",
            "candidate slots returned by ANN probes (incl. padding)")
        self._item_ids = np.arange(self.n_items, dtype=np.int64)
        self._state = model.item_state(dataset) if mode == "auto" else None
        self._ann_index: Optional[IVFIndex] = None
        self._ann_scale: Optional[np.ndarray] = None
        self._grid_factors = None
        self._build_ann()

    @property
    def uses_fast_path(self) -> bool:
        """Whether item-side precompute is active for this model."""
        return self._state is not None

    @property
    def ann_active(self) -> bool:
        """Whether ANN candidate retrieval backs this scorer.

        Requires an :class:`~repro.serving.ann.ANNConfig`, a grid fast
        path, a model exposing the bilinear decomposition
        (:meth:`~repro.models.base.RecommenderModel.grid_factor_items`),
        and a catalogue at least ``min_items`` large — anything else
        silently stays on the exact path (the opt-in flag requests
        *eligibility*, not a crash on CNN-style models).
        """
        return self._ann_index is not None

    def refresh(self) -> None:
        """Recompute the item-side state after a parameter update.

        Also rebuilds the ANN codebook: fold-in that moved item-side
        parameters invalidates both the precomputed ``item_state`` and
        every inverted list built from it.
        """
        if self.mode == "auto":
            with self._m_refresh_seconds.time():
                self._state = self.model.item_state(self.dataset)
                self._build_ann()

    # -- ANN candidate plane -------------------------------------------
    def _build_ann(self) -> None:
        self._ann_index = None
        self._ann_scale = None
        self._grid_factors = None
        if (self.ann_config is None or self._state is None
                or self.n_items < self.ann_config.min_items):
            return
        factors = self.model.grid_factor_items(self._state)
        if factors is None:
            return
        # Cached for score_listed: rebuilding the factor matrix per
        # request block (GML-FM hstacks an [n_items, 2k + 2k²] matrix)
        # would dwarf the sub-linear scoring ANN exists to provide.
        # Pure function of _state, so refresh() invalidates it here.
        self._grid_factors = factors
        item_vecs, item_const = factors
        # Augmentation folds the additive item constant into MIPS:
        # score-relevant affinity = [U, 1] · [V, i_const].
        aug_items = np.hstack([np.asarray(item_vecs, dtype=np.float64),
                               np.asarray(item_const,
                                          dtype=np.float64)[:, None]])
        # Query-distribution whitening from a seeded user sample (see
        # repro.serving.ann): preserves inner products exactly, aligns
        # the cluster metric with the dimensions that move scores.
        rng = np.random.default_rng(self.ann_config.seed)
        n_sample = min(self.dataset.n_users, 512)
        sample = rng.choice(self.dataset.n_users, size=n_sample,
                            replace=False)
        sample_q = self._aug_queries(np.sort(sample))
        self._ann_scale = whitening_scale(sample_q)
        self._ann_index = IVFIndex(aug_items * self._ann_scale,
                                   self.ann_config)

    def _aug_queries(self, users: np.ndarray) -> np.ndarray:
        user_vecs, _ = self.model.grid_factor_users(users, self._state)
        return np.hstack([np.asarray(user_vecs, dtype=np.float64),
                          np.ones((len(user_vecs), 1))])

    def ann_candidates(self, users: np.ndarray,
                       probes: Optional[int] = None) -> np.ndarray:
        """``int64 [len(users), m]`` candidate items (``-1``-padded).

        The union of the probed inverted lists per user; callers
        re-rank exactly with :meth:`score_listed`.
        """
        if self._ann_index is None:
            raise RuntimeError("ANN index not active for this scorer")
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        queries = self._aug_queries(users) / self._ann_scale
        candidates = self._ann_index.candidates(queries, probes=probes)
        self._m_ann_queries.inc(int(users.size))
        self._m_ann_candidates.inc(int(candidates.size))
        return candidates

    def score_listed(self, users: np.ndarray,
                     items: np.ndarray) -> np.ndarray:
        """Exact scores for per-user candidate lists.

        ``items`` is ``int64 [len(users), m]``, ``-1`` marking padding;
        padded cells come back as ``-inf``.  Real cells carry the same
        bilinear-form scores as the full grid (same decomposition the
        fast path uses, so re-ranked candidates order exactly as
        :meth:`score` would order them, up to float summation order).
        """
        factors = self._grid_factors
        if factors is None and self._state is not None:
            factors = self.model.grid_factor_items(self._state)
        if factors is None:
            raise RuntimeError("model has no grid factor decomposition")
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.asarray(items, dtype=np.int64)
        item_vecs, item_const = factors
        user_vecs, user_const = self.model.grid_factor_users(users, self._state)
        pad = items < 0
        safe = np.where(pad, 0, items)
        out = np.empty(items.shape, dtype=np.float64)
        # The [users, cols, d] gather is the peak allocation; chunk the
        # candidate axis so wide slates (e.g. the recall-safe default
        # probe count scanning half the catalogue) stay bounded instead
        # of materializing ~d x the exact path's score matrix.
        dim = item_vecs.shape[1]
        step = max(1, (1 << 22) // max(1, users.size * dim))
        for start in range(0, items.shape[1], step):
            cols = slice(start, start + step)
            out[:, cols] = np.einsum("ud,umd->um", user_vecs,
                                     item_vecs[safe[:, cols]])
            out[:, cols] += item_const[safe[:, cols]]
        out += user_const[:, None]
        out[pad] = -np.inf
        return out

    # ------------------------------------------------------------------
    def score(self, users: np.ndarray) -> np.ndarray:
        """``float64 [len(users), n_items]`` scores for the catalogue."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if users.size and (users.min() < 0 or users.max() >= self.dataset.n_users):
            raise ValueError("user id out of range")
        out = np.empty((users.size, self.n_items), dtype=np.float64)
        step = self.user_batch if self._state is not None else max(
            1, self.batch_pairs // self.n_items)
        for start in range(0, users.size, step):
            block = users[start:start + step]
            if self._state is not None:
                out[start:start + step] = self.model.score_grid(block, self._state)
            else:
                out[start:start + step] = self._score_exact(block)
        return out

    def _score_exact(self, users: np.ndarray) -> np.ndarray:
        grid_users = np.repeat(users, self.n_items)
        grid_items = np.tile(self._item_ids, users.size)
        scores = self.model.predict(grid_users, grid_items,
                                    batch_size=self.batch_pairs)
        return scores.reshape(users.size, self.n_items)
