"""Vectorized batch scoring of whole user×catalogue grids.

The seed-era ``recommend`` loop called ``model.predict`` once per user
per item batch — a Python-level scan that re-encoded every pair.  The
:class:`BatchScorer` scores ``[n_users_in_batch, n_items]`` blocks:

- **fast path** — models exposing ``item_state`` / ``score_grid`` (the
  MF family, NGCF, LibFM and GML-FM's closed form, see
  :meth:`repro.models.base.RecommenderModel.item_state`) precompute
  item-side representations once; each user block is then a handful of
  numpy matmuls/broadcasts with no per-pair work at all;
- **exact path** — any other model is scored through chunked
  ``model.predict`` calls over the flattened grid.  Because every model
  scores rows independently in eval mode, this produces bit-identical
  values to per-user prediction, just without the per-user Python loop.

Equivalence contract: ``score(users)[r, i] == model.predict([u_r], [i])``
— bitwise on the exact path, to ~1e-9 relative on the fast path (the
matmuls and closed-form decompositions reorder floating-point sums);
ranked top-k lists agree with the per-user loop in either case (see
``tests/serving/test_scorer.py`` and the throughput benchmark).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel

_MODES = ("auto", "exact")


class BatchScorer:
    """Scores users against the full item catalogue in vector batches.

    Parameters
    ----------
    model:
        Any :class:`RecommenderModel`; trained or not.
    dataset:
        Supplies the catalogue and encoding metadata.
    mode:
        ``"auto"`` uses the model's grid fast path when available;
        ``"exact"`` forces the bit-exact chunked-``predict`` path.
    user_batch:
        Fast-path user-axis block size (bounds the *intermediate*
        per-block memory; the returned ``[len(users), n_items]`` matrix
        itself scales with the request, so callers ranking huge user
        lists should chunk their calls — the service and ``recommend``
        both do).
    batch_pairs:
        Exact-path flattened (user, item) pairs per ``predict`` call.
    """

    def __init__(
        self,
        model: RecommenderModel,
        dataset: RecDataset,
        mode: str = "auto",
        user_batch: int = 32,
        batch_pairs: int = 32768,
    ):
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; options: {_MODES}")
        if user_batch <= 0 or batch_pairs <= 0:
            raise ValueError("user_batch and batch_pairs must be positive")
        self.model = model
        self.dataset = dataset
        self.n_items = dataset.n_items
        self.mode = mode
        self.user_batch = user_batch
        self.batch_pairs = batch_pairs
        self._item_ids = np.arange(self.n_items, dtype=np.int64)
        self._state = model.item_state(dataset) if mode == "auto" else None

    @property
    def uses_fast_path(self) -> bool:
        """Whether item-side precompute is active for this model."""
        return self._state is not None

    def refresh(self) -> None:
        """Recompute the item-side state after a parameter update."""
        if self.mode == "auto":
            self._state = self.model.item_state(self.dataset)

    # ------------------------------------------------------------------
    def score(self, users: np.ndarray) -> np.ndarray:
        """``float64 [len(users), n_items]`` scores for the catalogue."""
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if users.size and (users.min() < 0 or users.max() >= self.dataset.n_users):
            raise ValueError("user id out of range")
        out = np.empty((users.size, self.n_items), dtype=np.float64)
        step = self.user_batch if self._state is not None else max(
            1, self.batch_pairs // self.n_items)
        for start in range(0, users.size, step):
            block = users[start:start + step]
            if self._state is not None:
                out[start:start + step] = self.model.score_grid(block, self._state)
            else:
                out[start:start + step] = self._score_exact(block)
        return out

    def _score_exact(self, users: np.ndarray) -> np.ndarray:
        grid_users = np.repeat(users, self.n_items)
        grid_items = np.tile(self._item_ids, users.size)
        scores = self.model.predict(grid_users, grid_items,
                                    batch_size=self.batch_pairs)
        return scores.reshape(users.size, self.n_items)
