"""Approximate candidate retrieval: a clustered (IVF) item index.

Exact serving scores every user against the *whole* catalogue — an
O(n_items) matmul plus an O(n_items) ranking pass per user.  Every
grid-fast-path model in this repo decomposes its score as

    score(u, i) = u_const[u] + i_const[i] + U[u] · V[i]

(:meth:`repro.models.base.RecommenderModel.grid_factor_items`), which
turns top-k retrieval into maximum-inner-product search over the
*augmented* item vectors ``[V[i], i_const[i]]`` against the augmented
query ``[U[u], 1]``.  The :class:`IVFIndex` makes that sub-linear:

- **codebook** — a seeded k-means (k-means++ init, Lloyd refinement)
  partitions the augmented item vectors into ``n_clusters`` inverted
  lists;
- **probing** — a query scores only the ``probes`` clusters whose
  centroids have the highest inner product with it, and the union of
  their lists becomes the candidate set;
- **re-rank** — the caller (:class:`repro.serving.scorer.BatchScorer`)
  scores the candidates exactly, so any true top-k item that lands in
  the candidate set is ranked exactly as the full grid would rank it.

**Query-distribution whitening.**  Plain Euclidean k-means clusters by
whatever dimensions carry the most item-side variance, which need not
be the dimensions that decide scores (e.g. a freshly initialized MF is
bias-dominated: the bias column moves every ranking but is one tiny
coordinate among ``k`` factor columns).  The index therefore clusters
``V' = V * s`` and probes with ``q' = q / s`` where ``s[j]`` is the RMS
of query coordinate ``j`` over a seeded user sample — inner products
are unchanged (``q'·V' = q·V``) while the cluster geometry aligns with
the dimensions that actually move scores.

Determinism: the codebook depends only on the vectors and
``ANNConfig.seed``, so two processes (or two shard replicas) building
from the same model state produce identical candidate sets.

Recall/latency trade-off: ``probes/n_clusters`` is the scanned fraction
of the catalogue.  The default (half the clusters) is tuned for
recall@10 ≥ 0.95 even on isotropic random states — the worst case for
any clustering index; structured real model states cluster far better,
so throughput deployments can drop ``probes`` well below the default
(the cluster throughput benchmark probes 3 of 40 clusters — under a
tenth of the catalogue — at recall ≈ 0.997).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ANNConfig:
    """Knobs of the IVF candidate index.

    Parameters
    ----------
    n_clusters:
        Inverted-list count; ``None`` → ``round(sqrt(n_items))``
        (clamped to ``[2, n_items]``).
    probes:
        Clusters scanned per query; ``None`` → ``ceil(n_clusters / 2)``
        (the recall-safe default, see the module docstring).
    seed:
        Seeds the k-means codebook (and nothing else — probing is
        deterministic given the codebook).
    kmeans_iters:
        Lloyd refinement passes after k-means++ seeding.
    min_items:
        Catalogues smaller than this skip ANN entirely: a full grid
        pass over a few dozen items is already cheaper than probing.
    """

    n_clusters: Optional[int] = None
    probes: Optional[int] = None
    seed: int = 0
    kmeans_iters: int = 15
    min_items: int = 64

    def __post_init__(self):
        if self.n_clusters is not None and self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if self.probes is not None and self.probes < 1:
            raise ValueError("probes must be positive")
        if self.kmeans_iters < 0:
            raise ValueError("kmeans_iters must be >= 0")

    def resolve_clusters(self, n_items: int) -> int:
        if self.n_clusters is not None:
            return max(1, min(self.n_clusters, n_items))
        # max(2, √n) lifts tiny catalogues off one-cluster "indexes",
        # then the n_items clamp keeps degenerate 1-item inputs valid.
        return max(1, min(n_items, max(2, int(round(math.sqrt(n_items))))))

    def resolve_probes(self, n_clusters: int) -> int:
        if self.probes is not None:
            return min(self.probes, n_clusters)
        return max(1, math.ceil(n_clusters / 2))


def kmeans(vectors: np.ndarray, n_clusters: int, seed: int = 0,
           iters: int = 15) -> tuple[np.ndarray, np.ndarray]:
    """Seeded k-means: ``(centroids [c, d], assignments [n])``.

    k-means++ seeding followed by ``iters`` Lloyd passes.  Entirely a
    function of ``(vectors, n_clusters, seed)`` — no global RNG state —
    so codebooks are reproducible across processes.  Clusters that
    lose all members keep their previous centroid (their inverted list
    is simply empty).
    """
    vectors = np.ascontiguousarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ValueError("vectors must be a non-empty [n, d] matrix")
    n = vectors.shape[0]
    n_clusters = int(n_clusters)
    if not 1 <= n_clusters <= n:
        raise ValueError("n_clusters must be in [1, n_vectors]")
    rng = np.random.default_rng(seed)

    # k-means++ seeding: each next center drawn proportional to the
    # squared distance from the nearest center chosen so far.
    centroids = np.empty((n_clusters, vectors.shape[1]))
    centroids[0] = vectors[rng.integers(n)]
    d2 = ((vectors - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, n_clusters):
        total = d2.sum()
        if total > 0:
            centroids[j] = vectors[rng.choice(n, p=d2 / total)]
        else:  # all points coincide with chosen centers
            centroids[j] = vectors[rng.integers(n)]
        d2 = np.minimum(d2, ((vectors - centroids[j]) ** 2).sum(axis=1))

    def nearest(points, centers):
        # argmin ||x - c||² = argmax (2 x·c - ||c||²); ||x||² is rank-free.
        affinity = points @ centers.T
        affinity *= 2.0
        affinity -= (centers * centers).sum(axis=1)[None, :]
        return affinity.argmax(axis=1)

    assign = np.full(n, -1, dtype=np.int64)
    for _round in range(iters):
        new_assign = nearest(vectors, centroids)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, vectors)
        counts = np.bincount(assign, minlength=n_clusters)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    # Returned assignments are always against the *returned* centroids
    # (the loop above moves centroids after assigning): probing the
    # codebook must agree with the inverted lists, or items near a
    # moved boundary silently vanish from their probed cluster.
    return centroids, nearest(vectors, centroids)


class IVFIndex:
    """Inverted-file candidate index over item vectors.

    Parameters
    ----------
    vectors:
        ``[n_items, d]`` item vectors, already in the space queries
        will probe in (the scorer applies query whitening before
        building).
    config:
        Clustering/probing knobs; see :class:`ANNConfig`.
    """

    def __init__(self, vectors: np.ndarray, config: ANNConfig = ANNConfig()):
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ValueError("vectors must be a non-empty [n, d] matrix")
        self.config = config
        self.n_items, self.dim = vectors.shape
        self.n_clusters = config.resolve_clusters(self.n_items)
        self.default_probes = config.resolve_probes(self.n_clusters)
        self.centroids, self._assign = kmeans(
            vectors, self.n_clusters, seed=config.seed,
            iters=config.kmeans_iters)
        # Inverted lists as a CSR over cluster ids: _order holds item
        # ids grouped by cluster, _indptr the per-cluster slice bounds.
        order = np.argsort(self._assign, kind="stable")
        self._order = order.astype(np.int64)
        self._indptr = np.searchsorted(
            self._assign[order], np.arange(self.n_clusters + 1))

    def cluster_of(self, items: np.ndarray) -> np.ndarray:
        """Cluster id per item (diagnostics and tests)."""
        return self._assign[np.asarray(items, dtype=np.int64)]

    def cluster_sizes(self) -> np.ndarray:
        return np.diff(self._indptr)

    def candidates(self, queries: np.ndarray,
                   probes: Optional[int] = None) -> np.ndarray:
        """Candidate item ids per query row.

        Returns an ``int64 [n_queries, m]`` matrix, ``-1``-padded on
        the right (``m`` is the largest candidate count in the batch).
        Scanning the top-``probes`` clusters by centroid inner product;
        ``probes >= n_clusters`` returns every item (exact retrieval).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"query dim {queries.shape[1]} != index dim {self.dim}")
        p = self.default_probes if probes is None else int(probes)
        if p < 1:
            raise ValueError("probes must be positive")
        p = min(p, self.n_clusters)
        n_q = queries.shape[0]

        affinity = queries @ self.centroids.T                  # [Q, c]
        if p < self.n_clusters:
            part = np.argpartition(-affinity, p - 1, axis=1)[:, :p]
        else:
            part = np.broadcast_to(np.arange(self.n_clusters),
                                   (n_q, self.n_clusters))
        # Vectorized CSR gather of every (query, probed cluster) list.
        starts = self._indptr[part].ravel()
        lengths = (self._indptr[part + 1] - self._indptr[part]).ravel()
        total = int(lengths.sum())
        if total == 0:
            return np.full((n_q, 1), -1, dtype=np.int64)
        seg_offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
        flat_pos = np.arange(total)
        flat_items = self._order[np.repeat(starts, lengths)
                                 + (flat_pos - seg_offsets)]
        row_lengths = lengths.reshape(n_q, p).sum(axis=1)
        width = int(row_lengths.max())
        out = np.full((n_q, width), -1, dtype=np.int64)
        row_of = np.repeat(np.arange(n_q), row_lengths)
        row_starts = np.repeat(np.cumsum(row_lengths) - row_lengths,
                               row_lengths)
        out[row_of, flat_pos - row_starts] = flat_items
        return out


def whitening_scale(query_sample: np.ndarray) -> np.ndarray:
    """Per-dimension RMS of a query sample (zeros mapped to 1).

    ``scale`` such that probing ``queries / scale`` against an index
    built on ``vectors * scale`` preserves every inner product while
    equalizing the score contribution of each dimension in cluster
    space (see the module docstring).
    """
    sample = np.atleast_2d(np.asarray(query_sample, dtype=np.float64))
    scale = np.sqrt((sample * sample).mean(axis=0))
    return np.where(scale > 0, scale, 1.0)
