"""A small LRU result cache with hit/miss/eviction accounting.

Keys are whatever the caller hashes on — the service uses
``(user, top_k, exclude_seen)`` — and values are opaque.  Invalidation
takes a predicate over keys so the service can drop exactly the entries
of a user whose interaction history just changed.

The cache is internally thread-safe.  ``OrderedDict``'s
``move_to_end``/``popitem`` pair is not atomic, so an unguarded
instance shared across threads can corrupt its recency ordering or
double-evict.  The one instance inside
:class:`~repro.serving.service.RecommendationService` was never
actually exposed to that race — every service method already holds the
service's coarse lock — but the cache is public API
(``repro.serving.LRUCache``) and nothing ties other consumers to a
guarded call site, so safety now lives where the invariant does.
Every public method takes the internal lock; callers may layer their
own coarser lock on top (re-entrancy is never needed because the cache
calls nothing back except ``invalidate``'s key predicate, which must
therefore not touch the cache).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

_MISSING = object()


class LRUCache:
    """Thread-safe least-recently-used cache; ``capacity=0`` disables."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._mutex:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._mutex:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recent if full."""
        if self.capacity == 0:
            return
        with self._mutex:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, predicate: Optional[Callable[[Hashable], bool]] = None) -> int:
        """Drop entries whose key matches ``predicate`` (all when None)."""
        with self._mutex:
            if predicate is None:
                dropped = len(self._data)
                self._data.clear()
            else:
                stale = [key for key in self._data if predicate(key)]
                for key in stale:
                    del self._data[key]
                dropped = len(stale)
            self.invalidations += dropped
            return dropped

    def stats(self) -> dict:
        with self._mutex:
            total = self.hits + self.misses
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
