"""A small LRU result cache with hit/miss/eviction accounting.

Keys are whatever the caller hashes on — the service uses
``(user, top_k, exclude_seen)`` — and values are opaque.  Invalidation
takes a predicate over keys so the service can drop exactly the entries
of a user whose interaction history just changed.

The cache is internally thread-safe.  ``OrderedDict``'s
``move_to_end``/``popitem`` pair is not atomic, so an unguarded
instance shared across threads can corrupt its recency ordering or
double-evict.  The one instance inside
:class:`~repro.serving.service.RecommendationService` was never
actually exposed to that race — every service method already holds the
service's coarse lock — but the cache is public API
(``repro.serving.LRUCache``) and nothing ties other consumers to a
guarded call site, so safety now lives where the invariant does.
Every public method takes the internal lock; callers may layer their
own coarser lock on top (re-entrancy is never needed because the cache
calls nothing back except ``invalidate``'s key predicate, which must
therefore not touch the cache).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

from repro.obs.metrics import MetricsRegistry

_MISSING = object()


class LRUCache:
    """Thread-safe least-recently-used cache; ``capacity=0`` disables.

    Accounting lives on a metrics registry (a private one when none is
    shared in), so a service exposing the registry's ``/metrics`` and
    this cache's ``stats()`` can never report diverging numbers — both
    read the same counters.  ``hits``/``misses``/... stay readable as
    plain attributes via the properties below.
    """

    def __init__(self, capacity: int = 1024, registry=None,
                 prefix: str = "repro_cache"):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._mutex = threading.Lock()
        registry = registry if registry is not None else MetricsRegistry()
        self._m_hits = registry.counter(
            f"{prefix}_hits_total", "cache lookups answered from cache")
        self._m_misses = registry.counter(
            f"{prefix}_misses_total", "cache lookups that missed")
        self._m_evictions = registry.counter(
            f"{prefix}_evictions_total", "entries evicted by capacity")
        self._m_invalidations = registry.counter(
            f"{prefix}_invalidations_total", "entries dropped by invalidate")
        # len() on the dict is atomic, so the live-read callback needs
        # no lock of its own.
        registry.gauge(f"{prefix}_size", "entries currently cached",
                       collect=lambda: len(self._data))

    @property
    def hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def evictions(self) -> int:
        return int(self._m_evictions.value)

    @property
    def invalidations(self) -> int:
        return int(self._m_invalidations.value)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._mutex:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._mutex:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._m_misses.inc()
                return default
            self._data.move_to_end(key)
            self._m_hits.inc()
            return value

    def get_many(self, keys: list) -> list:
        """Values for ``keys`` in order, ``None`` marking a miss.

        One lock acquisition and one hit/miss counter update for the
        whole batch: the serving request path's accounting cost is O(1)
        in batch size, not O(users).  Entries storing a literal ``None``
        are indistinguishable from misses here — don't cache ``None``.
        """
        hits = 0
        out = []
        with self._mutex:
            for key in keys:
                value = self._data.get(key, _MISSING)
                if value is _MISSING:
                    out.append(None)
                else:
                    self._data.move_to_end(key)
                    hits += 1
                    out.append(value)
        if hits:
            self._m_hits.inc(hits)
        if len(out) - hits:
            self._m_misses.inc(len(out) - hits)
        return out

    def put_many(self, items: list) -> None:
        """Insert ``(key, value)`` pairs under one lock, batching the
        eviction accounting like :meth:`get_many` does for lookups."""
        if self.capacity == 0:
            return
        evicted = 0
        with self._mutex:
            for key, value in items:
                if key in self._data:
                    self._data.move_to_end(key)
                self._data[key] = value
                if len(self._data) > self.capacity:
                    self._data.popitem(last=False)
                    evicted += 1
        if evicted:
            self._m_evictions.inc(evicted)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recent if full."""
        if self.capacity == 0:
            return
        with self._mutex:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._m_evictions.inc()

    def invalidate(self, predicate: Optional[Callable[[Hashable], bool]] = None) -> int:
        """Drop entries whose key matches ``predicate`` (all when None)."""
        with self._mutex:
            if predicate is None:
                dropped = len(self._data)
                self._data.clear()
            else:
                stale = [key for key in self._data if predicate(key)]
                for key in stale:
                    del self._data[key]
                dropped = len(stale)
            if dropped:
                self._m_invalidations.inc(dropped)
            return dropped

    def stats(self) -> dict:
        with self._mutex:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
