"""Selector-based micro-batching HTTP frontend for the serving stack.

The stdlib threaded frontend (:mod:`repro.serving.server`) spends one
OS thread per in-flight request and scores every ``/recommend`` call
alone.  Under the coarse service lock that buys no parallelism — the
threads mostly queue on the lock while paying thread-switch and
per-connection setup costs.  :class:`AsyncFrontend` inverts the design:

- one **event loop** (``selectors`` over non-blocking sockets) owns all
  connections — accept, HTTP/1.1 parsing, timeouts, and response
  writes;
- one **dispatcher thread** executes requests against the service, and
  **coalesces** concurrent ``/recommend`` requests into
  ``service.recommend_batch`` micro-batches (bounded by
  ``batch_window`` seconds and ``max_batch`` users), so N queued
  lookups cost one grid scoring pass instead of N.

Response *bodies* are byte-identical to the threaded frontend: both
route through the shared request-semantics helpers in
``serving.server`` (``respond_get`` / ``respond_post`` /
``error_response``), and ``service.recommend`` is itself defined as
``recommend_batch([user])[0]``, so batching cannot change a result.
When a batch fails as a whole (one bad request must not poison its
neighbors), the dispatcher falls back to per-request execution, which
reproduces the threaded error behavior request-for-request.

The operational surface matches ``ThreadingHTTPServer`` where the rest
of the repo relies on it: ``url``, ``serve_forever()``, ``shutdown()``,
``server_close()``, and the ``service`` / ``max_update_batch`` /
``max_body_bytes`` attributes.
"""

from __future__ import annotations

import collections
import http.client
import queue
import selectors
import socket
import threading
import time
from typing import Optional
from urllib.parse import urlsplit

from repro.serving.server import (DEFAULT_REQUEST_TIMEOUT, error_response,
                                  json_response, oversized_body_error,
                                  parse_recommend_query, respond_get,
                                  respond_post)

#: Transport-level caps, matching the threaded frontend's behavior:
#: header blocks beyond 64 KiB are rejected, oversized declared bodies
#: are drained (never buffered) up to the same 16 MiB ceiling.
_MAX_HEADER_BYTES = 64 << 10
_DRAIN_CEILING = 16 << 20
_RECV_CHUNK = 64 << 10

# Connection read-state machine.
_READ_HEAD = 0
_READ_BODY = 1
_DISCARD_BODY = 2


class _Connection:
    """Per-socket parse/write state owned by the event loop."""

    __slots__ = ("sock", "rbuf", "wbuf", "state", "method", "target",
                 "keep_alive", "need", "discard", "declared_length",
                 "deadline", "inflight", "close_after_write", "closed")

    def __init__(self, sock: socket.socket, deadline: Optional[float]):
        self.sock = sock
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.state = _READ_HEAD
        self.method = ""
        self.target = ""
        self.keep_alive = True
        self.need = 0           # body bytes still expected (_READ_BODY)
        self.discard = 0        # body bytes still to drain (_DISCARD_BODY)
        self.declared_length = 0
        self.deadline = deadline
        self.inflight = False
        self.close_after_write = False
        self.closed = False


class _Request:
    """One parsed request travelling loop → dispatcher → loop."""

    __slots__ = ("conn", "method", "target", "body")

    def __init__(self, conn: _Connection, method: str, target: str,
                 body: bytes):
        self.conn = conn
        self.method = method
        self.target = target
        self.body = body


class AsyncFrontend:
    """Event-loop HTTP server that micro-batches ``/recommend`` calls.

    Parameters
    ----------
    service:
        Anything with the service call surface (a
        :class:`~repro.serving.service.RecommendationService` or a
        :class:`~repro.serving.cluster.ServingCluster`).
    batch_window:
        After the first queued ``/recommend`` request, how long the
        dispatcher waits (seconds) for companions to coalesce with.
        ``0`` still batches whatever is *already* queued — under load
        requests pile up while the previous batch scores, so natural
        batching emerges without added latency.
    max_batch:
        Hard cap on users per coalesced ``recommend_batch`` call.
    request_timeout:
        Per-connection budget (seconds) for receiving a complete
        request, mirroring the threaded frontend: a connection that
        stalls with a half-sent request (head or body) gets a 408 and
        is closed; an idle keep-alive connection that sent nothing is
        closed without a response.  ``None`` disables the deadline.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False, max_update_batch: int = 1024,
                 max_body_bytes: int = 1 << 20,
                 request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
                 batch_window: float = 0.002, max_batch: int = 32):
        if max_update_batch <= 0:
            raise ValueError("max_update_batch must be positive")
        if max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.service = service
        self.verbose = verbose
        self.max_update_batch = max_update_batch
        self.max_body_bytes = max_body_bytes
        self.request_timeout = request_timeout
        self.batch_window = batch_window
        self.max_batch = max_batch

        self._listen = socket.create_server((host, port), backlog=128)
        self._listen.setblocking(False)
        self.server_address = self._listen.getsockname()
        # Loop ↔ dispatcher plumbing.  The wakeup socketpair lets the
        # dispatcher (and shutdown()) interrupt a blocking select.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._requests: queue.Queue = queue.Queue()
        self._responses: collections.deque = collections.deque()
        self._running = threading.Event()
        self._stopped = threading.Event()
        self._stopped.set()
        self._dispatcher: Optional[threading.Thread] = None

    # -- operational surface (ThreadingHTTPServer-compatible) ----------
    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        """Stop ``serve_forever`` and wait for the loop to exit."""
        self._running.clear()
        self._wakeup()
        self._stopped.wait()

    def server_close(self) -> None:
        self._listen.close()
        self._wake_r.close()
        self._wake_w.close()

    def _wakeup(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass

    # -- event loop ----------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._running.set()
        self._stopped.clear()
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="frontend-dispatcher",
                                            daemon=True)
        self._dispatcher.start()
        selector = selectors.DefaultSelector()
        selector.register(self._listen, selectors.EVENT_READ, "accept")
        selector.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        conns: set[_Connection] = set()
        try:
            while self._running.is_set():
                timeout = self._nearest_deadline(conns)
                for key, _ in selector.select(timeout):
                    if key.data == "accept":
                        self._accept(selector, conns)
                    elif key.data == "wakeup":
                        self._drain_wakeup()
                    else:
                        self._handle_io(selector, conns, key)
                self._flush_responses(selector, conns)
                self._expire(selector, conns)
        finally:
            self._requests.put(None)  # dispatcher stop sentinel
            for conn in list(conns):
                self._close(selector, conns, conn)
            selector.close()
            self._stopped.set()

    def _nearest_deadline(self, conns: set) -> Optional[float]:
        deadlines = [c.deadline for c in conns
                     if c.deadline is not None and not c.inflight]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def _drain_wakeup(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except BlockingIOError:
            pass

    def _accept(self, selector, conns) -> None:
        while True:
            try:
                sock, _ = self._listen.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            deadline = (None if self.request_timeout is None
                        else time.monotonic() + self.request_timeout)
            conn = _Connection(sock, deadline)
            conns.add(conn)
            selector.register(sock, selectors.EVENT_READ, conn)

    def _close(self, selector, conns, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        conns.discard(conn)
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _events_for(self, conn: _Connection) -> int:
        events = 0
        if conn.wbuf:
            events |= selectors.EVENT_WRITE
        # Stop reading while a request is in flight or a response is
        # queued: natural backpressure, and it bounds rbuf growth.
        if not conn.inflight and not conn.wbuf:
            events |= selectors.EVENT_READ
        return events

    def _update_registration(self, selector, conns, conn: _Connection) -> None:
        if conn.closed:
            return
        events = self._events_for(conn)
        try:
            if events:
                try:
                    selector.modify(conn.sock, events, conn)
                except KeyError:
                    selector.register(conn.sock, events, conn)
            else:
                try:
                    selector.unregister(conn.sock)
                except KeyError:
                    pass
        except (ValueError, OSError):
            self._close(selector, conns, conn)

    def _handle_io(self, selector, conns, key) -> None:
        conn: _Connection = key.data
        if key.events & selectors.EVENT_WRITE and conn.wbuf:
            try:
                sent = conn.sock.send(conn.wbuf)
                del conn.wbuf[:sent]
            except BlockingIOError:
                pass
            except OSError:
                self._close(selector, conns, conn)
                return
            if not conn.wbuf:
                if conn.close_after_write:
                    self._close(selector, conns, conn)
                    return
                # Response fully flushed: a pipelined request may
                # already sit in rbuf.
                self._advance(selector, conns, conn)
        if key.events & selectors.EVENT_READ:
            try:
                while True:
                    chunk = conn.sock.recv(_RECV_CHUNK)
                    if not chunk:
                        self._close(selector, conns, conn)
                        return
                    conn.rbuf += chunk
                    if len(chunk) < _RECV_CHUNK:
                        break
            except BlockingIOError:
                pass
            except OSError:
                self._close(selector, conns, conn)
                return
            self._advance(selector, conns, conn)
        self._update_registration(selector, conns, conn)

    # -- HTTP parsing --------------------------------------------------
    def _advance(self, selector, conns, conn: _Connection) -> None:
        """Run the parse state machine over whatever rbuf holds."""
        while not conn.inflight and not conn.wbuf and not conn.closed:
            if conn.state == _READ_HEAD:
                if not self._parse_head(conn):
                    return
            elif conn.state == _READ_BODY:
                if len(conn.rbuf) < conn.need:
                    return
                body = bytes(conn.rbuf[:conn.need])
                del conn.rbuf[:conn.need]
                self._submit(conn, body)
            elif conn.state == _DISCARD_BODY:
                drop = min(len(conn.rbuf), conn.discard)
                del conn.rbuf[:drop]
                conn.discard -= drop
                if conn.discard:
                    return
                conn.state = _READ_HEAD
                self._respond(conn, error_response(oversized_body_error(
                    conn.declared_length, self.max_body_bytes)))

    def _parse_head(self, conn: _Connection) -> bool:
        """Consume one request head from rbuf; False when incomplete."""
        end = conn.rbuf.find(b"\r\n\r\n")
        if end < 0:
            if len(conn.rbuf) > _MAX_HEADER_BYTES:
                self._respond(conn, json_response(
                    431, {"error": "request header block too large"}),
                    close=True)
            return False
        head = bytes(conn.rbuf[:end]).decode("latin-1")
        del conn.rbuf[:end + 4]
        lines = head.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            self._respond(conn, json_response(
                400, {"error": "malformed request line"}), close=True)
            return False
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        conn.method, conn.target, conn.keep_alive = method, target, keep_alive
        if method == "GET":
            self._submit(conn, b"")
            return True
        if method == "POST":
            raw_length = headers.get("content-length", "0")
            try:
                length = int(raw_length)
                if length < 0:
                    raise ValueError
            except ValueError:
                # Body framing is unknowable: answer and drop the link.
                self._respond(conn, error_response(
                    ValueError("invalid Content-Length header")), close=True)
                return False
            if length > self.max_body_bytes:
                # Same contract as the threaded frontend: drain the
                # declared body (bounded, never buffered) so the client
                # sees the 400 rather than a reset; past the ceiling it
                # gets the close it deserves.
                conn.declared_length = length
                if length > _DRAIN_CEILING:
                    self._respond(conn, error_response(oversized_body_error(
                        length, self.max_body_bytes)), close=True)
                    return False
                conn.state = _DISCARD_BODY
                conn.discard = length
                return True
            conn.state = _READ_BODY
            conn.need = length
            return True
        self._respond(conn, json_response(
            501, {"error": f"unsupported method {method!r}"}), close=True)
        return False

    def _submit(self, conn: _Connection, body: bytes) -> None:
        """Hand a complete request to the dispatcher."""
        conn.state = _READ_HEAD
        conn.inflight = True
        conn.deadline = None
        self._requests.put(_Request(conn, conn.method, conn.target, body))

    # -- responses -----------------------------------------------------
    def _respond(self, conn: _Connection, response: tuple[int, str, bytes],
                 close: bool = False) -> None:
        """Queue response bytes on the connection (loop thread only)."""
        status, content_type, payload = response
        if close:
            conn.keep_alive = False
        reason = http.client.responses.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n")
        if not conn.keep_alive:
            head += "Connection: close\r\n"
            conn.close_after_write = True
        conn.wbuf += head.encode("latin-1") + b"\r\n" + payload
        conn.inflight = False
        if conn.keep_alive and self.request_timeout is not None:
            conn.deadline = time.monotonic() + self.request_timeout

    def _flush_responses(self, selector, conns) -> None:
        """Attach dispatcher results to their connections and kick I/O."""
        while self._responses:
            conn, response = self._responses.popleft()
            if conn.closed:
                continue
            self._respond(conn, response)
            try:
                sent = conn.sock.send(conn.wbuf)
                del conn.wbuf[:sent]
            except BlockingIOError:
                pass
            except OSError:
                self._close(selector, conns, conn)
                continue
            if not conn.wbuf:
                if conn.close_after_write:
                    self._close(selector, conns, conn)
                    continue
                # Response fully flushed: parse any pipelined request.
                self._advance(selector, conns, conn)
            self._update_registration(selector, conns, conn)

    def _expire(self, selector, conns) -> None:
        """Apply request deadlines: 408 a half-sent request, close idles."""
        if self.request_timeout is None:
            return
        now = time.monotonic()
        for conn in list(conns):
            if conn.inflight or conn.deadline is None or conn.deadline > now:
                continue
            if conn.state == _READ_HEAD and not conn.rbuf:
                # Idle keep-alive connection: close without a response,
                # like the threaded frontend's request-line timeout.
                self._close(selector, conns, conn)
            else:
                # Half-sent head or stalled body: clean 408, then close.
                conn.rbuf.clear()
                self._respond(conn, json_response(
                    408, {"error": "request timed out"}), close=True)
                self._update_registration(selector, conns, conn)

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Execute requests against the service, batching /recommend."""
        while True:
            item = self._requests.get()
            if item is None:
                return
            batch = [item]
            deadline = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                try:
                    extra = (self._requests.get_nowait() if remaining <= 0
                             else self._requests.get(timeout=remaining))
                except queue.Empty:
                    break
                if extra is None:
                    self._execute(batch)
                    return
                batch.append(extra)
            self._execute(batch)

    def _execute(self, batch: list) -> None:
        """Answer one drained batch; /recommend requests coalesce."""
        groups: dict[tuple, list] = {}
        for request in batch:
            response = None
            if (request.method == "GET"
                    and urlsplit(request.target).path == "/recommend"):
                try:
                    user, k, exclude = parse_recommend_query(
                        _query_of(request.target))
                    groups.setdefault((k, exclude), []).append((request, user))
                    continue
                except (ValueError, OverflowError) as exc:
                    response = error_response(exc)
            if response is None:
                response = self._run_single(request)
            self._responses.append((request.conn, response))
        for (k, exclude), members in groups.items():
            self._run_group(k, exclude, members)
        self._wakeup()

    def _run_single(self, request: _Request) -> tuple[int, str, bytes]:
        try:
            if request.method == "GET":
                return respond_get(self.service, request.target)
            return respond_post(self.service, request.target, request.body,
                                self.max_update_batch)
        except Exception as exc:
            return error_response(exc)

    def _run_group(self, k, exclude_seen, members: list) -> None:
        """One coalesced recommend_batch; per-request fallback on error."""
        users = [user for _, user in members]
        try:
            recs = self.service.recommend_batch(users, k=k,
                                                exclude_seen=exclude_seen)
            responses = [json_response(200, rec.to_dict()) for rec in recs]
        except Exception:
            # One bad request must not poison the batch: retry each
            # alone, reproducing the threaded per-request semantics.
            responses = []
            for _, user in members:
                try:
                    rec = self.service.recommend(user, k=k,
                                                 exclude_seen=exclude_seen)
                    responses.append(json_response(200, rec.to_dict()))
                except Exception as exc:
                    responses.append(error_response(exc))
        for (request, _), response in zip(members, responses):
            self._responses.append((request.conn, response))


def _query_of(target: str) -> dict:
    from urllib.parse import parse_qs

    return parse_qs(urlsplit(target).query)
