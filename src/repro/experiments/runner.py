"""Run one (model, dataset, task) cell or a full paper table.

``run_rating_cell`` reproduces one cell of Table 3 (test RMSE);
``run_topn_cell`` one cell of Table 4 (HR@10 / NDCG@10).  The table
runners decompose models × datasets into independent cell specs,
execute them through :mod:`repro.experiments.parallel` (serial by
default, ``workers > 1`` fans out over a process pool) and return
nested dicts the ``tables`` module formats like the paper.

Determinism contract
--------------------
Every cell seeds all of its randomness (dataset synthesis, negative
sampling, splits, model init, minibatch shuffling) from the ``seed``
argument alone, so each runner below returns byte-identical values for
a given ``(arguments, seed)`` pair — across repeated calls, across
processes, and across any ``workers`` count.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.data.dataset import RecDataset
from repro.data.sampling import NegativeSampler
from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.parallel import grid_specs, run_cells
from repro.experiments.registry import build_model, is_pairwise
from repro.training.evaluation import (
    build_rating_instances,
    evaluate_rating,
    evaluate_topn_grid,
    prepare_topn_protocol,
)
from repro.training.trainer import TrainConfig, Trainer

#: Per-model learning rates (tuned once on validation data; the paper
#: tunes in [1e-4, 1e-1]).
_LEARNING_RATES = {
    "MF": 0.03,
    "PMF": 0.03,
    "NCF": 0.01,
    "BPR-MF": 0.05,
    "NGCF": 0.01,
    "LibFM": 0.03,
    "NFM": 0.03,
    "AFM": 0.03,
    "TransFM": 0.003,
    "DeepFM": 0.01,
    "xDeepFM": 0.01,
    "GML-FMmd": 0.01,
    "GML-FMdnn": 0.02,
}


def _train_config(model_name: str, scale: ExperimentScale, seed: int,
                  backend: Optional[str] = None) -> TrainConfig:
    extra = {} if backend is None else {"backend": backend}
    return TrainConfig(
        epochs=scale.epochs,
        batch_size=256,
        lr=_LEARNING_RATES.get(model_name, 0.01),
        weight_decay=1e-4,
        patience=5,
        seed=seed,
        **extra,
    )


# ----------------------------------------------------------------------
# Rating prediction (Table 3)
# ----------------------------------------------------------------------
def run_rating_cell(
    model_name: str,
    dataset: RecDataset,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> float:
    """Train ``model_name`` on the rating task; return test RMSE.

    Deterministic: the instance split, model initialization and batch
    order all derive from ``seed``, so equal ``(model_name, dataset,
    scale, seed, backend)`` gives the exact same RMSE wherever it runs
    — this is what lets :func:`run_rating_table` farm cells out to
    worker processes without changing a digit of the table.  ``backend``
    picks the autograd execution strategy (``None`` → the
    :class:`TrainConfig` default, currently ``"fused"``).
    """
    scale = scale if scale is not None else get_scale()
    instances = build_rating_instances(dataset, seed=seed)
    model = build_model(model_name, dataset, k=scale.k, seed=seed)
    trainer = Trainer(model, _train_config(model_name, scale, seed, backend))
    users, items, labels = instances.split("train")
    trainer.fit_pointwise(
        users,
        items,
        labels,
        validate=lambda m: evaluate_rating(m, instances).valid_rmse,
        higher_is_better=False,
    )
    return evaluate_rating(model, instances).test_rmse


def run_rating_table(
    dataset_keys: list[str],
    model_names: list[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    workers: Union[int, str, None] = None,
    backend: Optional[str] = None,
) -> dict[str, dict[str, float]]:
    """``{model: {dataset: test RMSE}}`` for Table 3.

    ``workers`` selects the process-pool size
    (:func:`repro.experiments.parallel.resolve_workers`: ``None`` →
    ``$REPRO_WORKERS`` or serial, ``0``/``"auto"`` → all cores).  The
    table is byte-identical for every worker count: each cell is a
    pure function of ``(model, dataset key, scale, seed, backend)`` and
    workers rebuild the named datasets deterministically.
    """
    scale = scale if scale is not None else get_scale()
    specs = grid_specs("rating", model_names, dataset_keys, scale=scale,
                       seed=seed, backend=backend)
    values = run_cells(specs, workers=workers)
    results: dict[str, dict[str, float]] = {m: {} for m in model_names}
    for spec, value in zip(specs, values):
        results[spec.model_name][spec.dataset_key] = value
    return results


# ----------------------------------------------------------------------
# Top-n recommendation (Table 4)
# ----------------------------------------------------------------------
def run_topn_cell(
    model_name: str,
    dataset: RecDataset,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> tuple[float, float]:
    """Train ``model_name`` under leave-one-out; return (HR@10, NDCG@10).

    Deterministic in ``(model_name, dataset, scale, seed)`` — the
    leave-one-out split, candidate sampling, negative sampling, model
    init and batch order are all seeded — so parallel table runs
    reproduce the serial values exactly.
    """
    scale = scale if scale is not None else get_scale()
    train_index, test_users, _test_items, candidates = prepare_topn_protocol(
        dataset, n_candidates=scale.n_candidates, seed=seed
    )
    train_view = dataset.subset(train_index)
    sampler = NegativeSampler(train_view, seed=seed)
    model = build_model(
        model_name,
        dataset,
        k=scale.k,
        seed=seed,
        train_users=train_view.users,
        train_items=train_view.items,
    )
    trainer = Trainer(model, _train_config(model_name, scale, seed, backend))
    all_rows = np.arange(train_view.n_interactions)
    if is_pairwise(model_name):
        users, positives, negatives = sampler.build_pairwise_training_set(all_rows, n_neg=2)
        trainer.fit_pairwise(users, positives, negatives)
    else:
        users, items, labels = sampler.build_pointwise_training_set(all_rows, n_neg=2)
        trainer.fit_pointwise(users, items, labels)
    # Grid-capable models score [users, catalogue] blocks via matmul
    # and gather the candidate columns; others fall back to predict.
    evaluation = evaluate_topn_grid(model, dataset, test_users, candidates)
    return evaluation.hr, evaluation.ndcg


def run_custom_rating(
    build,
    dataset: RecDataset,
    scale: Optional[ExperimentScale] = None,
    lr: float = 0.02,
    seed: int = 0,
    backend: Optional[str] = None,
) -> float:
    """Rating-task test RMSE for a caller-supplied model factory.

    ``build(dataset, rng)`` must return a :class:`RecommenderModel`;
    used by the ablation benchmarks (Table 5) to evaluate GML-FM
    variants outside the named registry.
    """
    scale = scale if scale is not None else get_scale()
    instances = build_rating_instances(dataset, seed=seed)
    model = build(dataset, np.random.default_rng(seed))
    extra = {} if backend is None else {"backend": backend}
    config = TrainConfig(epochs=scale.epochs, batch_size=256, lr=lr,
                         weight_decay=1e-4, patience=5, seed=seed, **extra)
    trainer = Trainer(model, config)
    users, items, labels = instances.split("train")
    trainer.fit_pointwise(
        users, items, labels,
        validate=lambda m: evaluate_rating(m, instances).valid_rmse,
        higher_is_better=False,
    )
    return evaluate_rating(model, instances).test_rmse


def run_custom_topn(
    build,
    dataset: RecDataset,
    scale: Optional[ExperimentScale] = None,
    lr: float = 0.02,
    seed: int = 0,
    backend: Optional[str] = None,
) -> tuple[float, float]:
    """Top-n (HR@10, NDCG@10) for a caller-supplied model factory."""
    scale = scale if scale is not None else get_scale()
    train_index, test_users, _test_items, candidates = prepare_topn_protocol(
        dataset, n_candidates=scale.n_candidates, seed=seed
    )
    train_view = dataset.subset(train_index)
    sampler = NegativeSampler(train_view, seed=seed)
    model = build(dataset, np.random.default_rng(seed))
    extra = {} if backend is None else {"backend": backend}
    config = TrainConfig(epochs=scale.epochs, batch_size=256, lr=lr,
                         weight_decay=1e-4, seed=seed, **extra)
    trainer = Trainer(model, config)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(train_view.n_interactions), n_neg=2
    )
    trainer.fit_pointwise(users, items, labels)
    evaluation = evaluate_topn_grid(model, dataset, test_users, candidates)
    return evaluation.hr, evaluation.ndcg


def run_topn_table(
    dataset_keys: list[str],
    model_names: list[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    workers: Union[int, str, None] = None,
    backend: Optional[str] = None,
) -> dict[str, dict[str, tuple[float, float]]]:
    """``{model: {dataset: (HR, NDCG)}}`` for Table 4.

    Same parallel execution and determinism contract as
    :func:`run_rating_table`: ``workers`` only changes wall time,
    never a value in the returned table.
    """
    scale = scale if scale is not None else get_scale()
    specs = grid_specs("topn", model_names, dataset_keys, scale=scale,
                       seed=seed, backend=backend)
    values = run_cells(specs, workers=workers)
    results: dict[str, dict[str, tuple[float, float]]] = {m: {} for m in model_names}
    for spec, value in zip(specs, values):
        results[spec.model_name][spec.dataset_key] = value
    return results
