"""Paper-style plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    results: Mapping[str, Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    value_format: str = "{:.4f}",
    highlight_best: bool = True,
    lower_is_better: bool = False,
) -> str:
    """Format ``{row: {column: value}}`` results like the paper's tables.

    Values may be floats or (HR, NDCG) tuples; the best value per column
    is marked with ``*`` when ``highlight_best`` is set.
    """
    rows = list(results.keys())

    def cell_values(value) -> list[float]:
        if isinstance(value, tuple):
            return list(value)
        return [float(value)]

    n_sub = max(
        len(cell_values(results[r][c]))
        for r in rows
        for c in columns
        if c in results[r]
    )

    best: dict[tuple[str, int], float] = {}
    for c in columns:
        for sub in range(n_sub):
            values = [
                cell_values(results[r][c])[sub]
                for r in rows
                if c in results[r] and len(cell_values(results[r][c])) > sub
            ]
            if not values:
                continue
            best[(c, sub)] = min(values) if lower_is_better else max(values)

    def render(value, column: str) -> str:
        parts = []
        for sub, v in enumerate(cell_values(value)):
            text = value_format.format(v)
            if highlight_best and (column, sub) in best and v == best[(column, sub)]:
                text += "*"
            parts.append(text)
        return " / ".join(parts)

    name_width = max(len(r) for r in rows) + 2
    col_width = max(12, n_sub * 8 + 3, max(len(c) for c in columns) + 2)
    lines = []
    if title:
        lines.append(title)
    header = " " * name_width + "".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        cells = []
        for c in columns:
            if c in results[r]:
                cells.append(f"{render(results[r][c], c):>{col_width}}")
            else:
                cells.append(f"{'—':>{col_width}}")
        lines.append(f"{r:<{name_width}}" + "".join(cells))
    return "\n".join(lines)
