"""Prequential (replay) evaluation: evaluate-then-train over a stream.

The paper's tables retrain from frozen snapshots; this runner measures
the *online* workload instead.  A model is warm-started on the oldest
``warmup_frac`` of a dataset's interactions, then the remaining events
replay in timestamp order and each batch is

1. **evaluated first** — the event's true item is ranked against
   ``n_candidates`` sampled uninteracted items with the *current*
   model, scoring HR@K / NDCG@K on data the model has never trained on;
2. **then trained on** — the batch folds into the model through
   :class:`repro.training.online.IncrementalTrainer`.

The rolling window series shows whether incremental updates keep the
model fresh as the stream drifts away from the warmup snapshot.

Determinism contract: ``run_replay`` is a pure function of its
arguments — dataset synthesis, the warmup training run, candidate
sampling, and every fold-in step all seed from ``seed``, so repeated
calls return byte-identical metrics (asserted in
``tests/experiments/test_replay.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.data.dataset import RecDataset
from repro.data.sampling import NegativeSampler
from repro.data.streaming import InteractionLog, prequential_split, replay_events
from repro.data.synthetic import make_dataset
from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.registry import build_model, is_pairwise
from repro.models.base import RecommenderModel
from repro.training.metrics import _positive_ranks
from repro.training.online import IncrementalTrainer, OnlineConfig
from repro.training.trainer import TrainConfig, Trainer

@dataclass(frozen=True)
class ReplayWindow:
    """Prequential metrics over one rolling window of the stream."""

    events_seen: int
    hr: float
    ndcg: float
    loss: float


@dataclass
class ReplayResult:
    """Outcome of one prequential replay sweep."""

    model_name: str
    dataset_name: str
    seed: int
    top_k: int
    n_candidates: int
    warmup_events: int
    stream_events: int
    hr: float
    ndcg: float
    events_per_sec: float
    refreshes: int
    windows: list[ReplayWindow] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "seed": self.seed,
            "top_k": self.top_k,
            "n_candidates": self.n_candidates,
            "warmup_events": self.warmup_events,
            "stream_events": self.stream_events,
            "hr": self.hr,
            "ndcg": self.ndcg,
            "events_per_sec": self.events_per_sec,
            "refreshes": self.refreshes,
            "windows": [vars(w) for w in self.windows],
        }


def _sample_eval_candidates(
    sampler: NegativeSampler, users: np.ndarray, items: np.ndarray,
    n_candidates: int,
) -> np.ndarray:
    """Candidate rows ``[positive | negatives]`` for one event batch.

    The negatives must exclude the row's own positive (the event item
    is typically unseen at warmup time, so the sampler considers it
    drawable) — a duplicate would tie against the positive under the
    pessimistic rank convention and bias HR/NDCG down.
    """
    negatives = sampler.sample_for_users_excluding(users, items, n_candidates)
    return np.concatenate([items.reshape(-1, 1), negatives], axis=1)


def fit_offline(
    model: RecommenderModel,
    view: RecDataset,
    config: TrainConfig,
    pairwise: bool,
    seed: int,
) -> None:
    """Batch-train a model on a view under the shared table protocol
    (2 sampled negatives per positive, pointwise or BPR).  One helper
    so warmup and the periodic full refresh cannot drift apart."""
    sampler = NegativeSampler(view, seed=seed)
    trainer = Trainer(model, config)
    rows = np.arange(view.n_interactions)
    if pairwise:
        trainer.fit_pairwise(
            *sampler.build_pairwise_training_set(rows, n_neg=2))
    else:
        trainer.fit_pointwise(
            *sampler.build_pointwise_training_set(rows, n_neg=2))


def warmup_model(
    model_name: str,
    dataset: RecDataset,
    warmup_view: RecDataset,
    scale: ExperimentScale,
    seed: int = 0,
    epochs: Optional[int] = None,
    backend: Optional[str] = None,
) -> RecommenderModel:
    """Train a registry model offline on the warmup interactions.

    Mirrors the batch table protocol (sampled negatives, Adam, the
    per-model tuned learning rate) so the streamed remainder measures
    pure staleness, not a weaker offline baseline.
    """
    from repro.experiments.runner import _train_config

    model = build_model(model_name, dataset, k=scale.k, seed=seed,
                        train_users=warmup_view.users,
                        train_items=warmup_view.items)
    config = _train_config(model_name, scale, seed, backend)
    if epochs is not None:
        config = TrainConfig(**{**vars(config), "epochs": epochs})
    fit_offline(model, warmup_view, config, is_pairwise(model_name), seed)
    return model


def run_replay(
    model_name: str,
    dataset: Union[str, RecDataset],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    warmup_frac: float = 0.8,
    batch_size: int = 32,
    n_candidates: int = 20,
    top_k: int = 10,
    window: int = 256,
    epochs: Optional[int] = None,
    online_config: Optional[OnlineConfig] = None,
    refresh_every: int = 0,
    refresh_epochs: int = 2,
    backend: Optional[str] = None,
) -> ReplayResult:
    """Run one seeded prequential sweep; returns rolling + overall metrics.

    Parameters
    ----------
    model_name:
        Any registry model (all 13 support fold-in).
    dataset:
        A dataset key (built at ``scale.dataset_scale``) or a ready
        :class:`RecDataset`.
    warmup_frac:
        Oldest fraction of events trained offline before streaming.
    batch_size:
        Events per evaluate-then-train step (micro-batching the stream).
    n_candidates:
        Sampled uninteracted items each positive is ranked against.
    window:
        Events per rolling-metrics window in the result series.
    epochs:
        Override the scale's warmup epoch count (CLI convenience).
    online_config:
        Fold-in hyper-parameters; the default tracks both sides with
        the model's pairwise/pointwise objective and ``seed``.
    refresh_every / refresh_epochs:
        When ``refresh_every > 0``, every that-many streamed events the
        model is fully retrained for ``refresh_epochs`` epochs on the
        accumulated log snapshot (the periodic full-refresh policy).
    backend:
        Autograd backend for warmup, fold-in, and refresh training
        (``None`` → the ``TrainConfig`` default for offline phases and
        ``"auto"`` dtype inference for fold-in steps).
    """
    scale = scale if scale is not None else get_scale()
    if isinstance(dataset, str):
        dataset = make_dataset(dataset, seed=seed, scale=scale.dataset_scale)
    if not 0.0 < warmup_frac < 1.0:
        raise ValueError("warmup_frac must be in (0, 1)")
    if batch_size <= 0 or window <= 0:
        raise ValueError("batch_size and window must be positive")

    warmup_index, stream_index = prequential_split(dataset, warmup_frac)
    if stream_index.size == 0:
        raise ValueError("warmup_frac leaves no events to stream")
    warmup_view = dataset.subset(warmup_index, "-warmup")
    model = warmup_model(model_name, dataset, warmup_view, scale,
                         seed=seed, epochs=epochs, backend=backend)

    if online_config is None:
        online_config = OnlineConfig(
            objective="pairwise" if is_pairwise(model_name) else "pointwise",
            seed=seed,
            refresh_every=refresh_every,
            backend="auto" if backend is None else backend,
        )
    elif refresh_every:
        # An explicit config must not silently drop the caller's
        # refresh policy: merge it in, or refuse a contradiction.
        if online_config.refresh_every not in (0, refresh_every):
            raise ValueError(
                f"refresh_every={refresh_every} conflicts with "
                f"online_config.refresh_every={online_config.refresh_every}")
        online_config = replace(online_config, refresh_every=refresh_every)

    def full_refresh(trainer: IncrementalTrainer) -> None:
        from repro.experiments.runner import _train_config

        refresh_seed = seed + trainer.refreshes + 1
        # Same tuned per-model protocol as warmup (learning rate,
        # weight decay), only shorter: a refresh that retrained at
        # different hyper-parameters would measure a different model.
        config = _train_config(model_name, scale, refresh_seed, backend)
        config = TrainConfig(**{**vars(config), "epochs": refresh_epochs})
        fit_offline(
            trainer.model,
            trainer.log.snapshot(name=dataset.name),
            config,
            online_config.objective == "pairwise",
            refresh_seed,
        )

    log = InteractionLog.from_dataset(warmup_view)
    trainer = IncrementalTrainer(
        model, warmup_view, online_config, log=log,
        refresh_fn=full_refresh if online_config.refresh_every > 0 else None)
    # Candidates are sampled against the warmup membership (static CSR,
    # one seeded stream): items the user interacts with *later in the
    # stream* may appear as negatives, which is the standard
    # prequential approximation — the evaluator cannot peek ahead.
    eval_sampler = NegativeSampler(warmup_view, seed=seed + 1)

    hits_total = 0.0
    gains_total = 0.0
    seen = 0
    windows: list[ReplayWindow] = []
    window_hits = window_gains = window_loss = 0.0
    window_events = 0
    start_time = time.perf_counter()

    # The stream is the tail of the same timestamp-ordered replay the
    # warmup/stream boundary was cut from (replay_order is shared by
    # prequential_split and replay_events, so the batches line up).
    total_stream = int(stream_index.size)
    for users, items, times in replay_events(
            dataset, batch_size=batch_size, start=int(warmup_index.size)):

        # Evaluate first: rank the true item against sampled negatives
        # with the model as it stood *before* seeing these events.
        candidates = _sample_eval_candidates(
            eval_sampler, users, items, n_candidates)
        flat_users = np.repeat(users, candidates.shape[1])
        scores = model.predict(flat_users, candidates.reshape(-1))
        if not np.isfinite(scores).all():
            # NaN comparisons are all-False, which _positive_ranks
            # would read as rank 0 — a destroyed model must fail the
            # sweep, not report perfect metrics.
            raise ValueError(
                f"model scores diverged after {seen} streamed events; "
                f"lower the fold-in learning rate (OnlineConfig.lr) or "
                f"enable the refresh policy")
        ranks = _positive_ranks(scores.reshape(candidates.shape))
        hits = ranks < top_k
        gains = np.where(hits, 1.0 / np.log2(ranks + 2.0), 0.0)

        # Then train on the batch.
        report = trainer.update(users, items, times)

        hits_total += float(hits.sum())
        gains_total += float(gains.sum())
        seen += users.size
        window_hits += float(hits.sum())
        window_gains += float(gains.sum())
        window_loss += report.loss * users.size
        window_events += users.size
        if window_events >= window or seen >= total_stream:
            windows.append(ReplayWindow(
                events_seen=seen,
                hr=window_hits / window_events,
                ndcg=window_gains / window_events,
                loss=window_loss / window_events,
            ))
            window_hits = window_gains = window_loss = 0.0
            window_events = 0

    elapsed = time.perf_counter() - start_time
    return ReplayResult(
        model_name=model_name,
        dataset_name=dataset.name,
        seed=seed,
        top_k=top_k,
        n_candidates=n_candidates,
        warmup_events=int(warmup_index.size),
        stream_events=int(stream_index.size),
        hr=hits_total / seen,
        ndcg=gains_total / seen,
        events_per_sec=seen / elapsed if elapsed > 0 else float("inf"),
        refreshes=trainer.refreshes,
        windows=windows,
    )


def format_replay(result: ReplayResult) -> str:
    """Render a replay result as a small report table."""
    lines = [
        f"prequential replay: {result.model_name} on {result.dataset_name} "
        f"(seed {result.seed})",
        f"warmup {result.warmup_events} events, streamed "
        f"{result.stream_events} at {result.events_per_sec:.0f} events/s, "
        f"{result.refreshes} full refreshes",
        f"{'events':>8s} {'HR@%d' % result.top_k:>8s} "
        f"{'NDCG@%d' % result.top_k:>8s} {'loss':>8s}",
    ]
    for w in result.windows:
        lines.append(f"{w.events_seen:8d} {w.hr:8.4f} {w.ndcg:8.4f} "
                     f"{w.loss:8.4f}")
    lines.append(f"{'overall':>8s} {result.hr:8.4f} {result.ndcg:8.4f}")
    return "\n".join(lines)
