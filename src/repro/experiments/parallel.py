"""Parallel experiment execution engine.

The paper's tables and figures are grids of *independent* cells — one
``(model, dataset, task, seed)`` training run each — that the serial
runners used to execute one after another.  This module decomposes any
sweep into :class:`CellSpec` records and executes them on a
``ProcessPoolExecutor`` (:func:`run_cells`), falling back to an
in-process loop for ``workers=1``.

Determinism contract
--------------------
A cell's result is a pure function of its spec:

- every random choice inside a cell (dataset synthesis, instance
  sampling, model init, minibatch order) is drawn from generators
  seeded by ``spec.seed``;
- datasets named by key are rebuilt in each worker with
  ``make_dataset(key, seed, scale.dataset_scale)``, which is itself
  deterministic, so every process sees byte-identical arrays;
- results are returned in spec order regardless of completion order.

Therefore a sweep produces **byte-identical results for any worker
count** — ``workers=8`` is purely a wall-clock optimization over
``workers=1`` (asserted in ``tests/experiments/test_parallel.py`` and
timed in ``benchmarks/test_runner_throughput.py``).

Worker-count resolution (:func:`resolve_workers`): an explicit integer
wins; ``None`` defers to the ``REPRO_WORKERS`` environment variable
(default 1); ``0`` or ``"auto"`` means one worker per CPU core.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Union

from repro.data.dataset import RecDataset
from repro.experiments.configs import ExperimentScale, get_scale

#: Cell task kinds: ``"rating"`` runs ``run_rating_cell`` (returns test
#: RMSE), ``"topn"`` runs ``run_topn_cell`` (returns ``(HR, NDCG)``).
TASKS = ("rating", "topn")


@dataclass(frozen=True, eq=False)
class CellSpec:
    """One independent experiment cell.

    Exactly one of ``dataset_key`` / ``dataset`` must be set: a key is
    rebuilt deterministically inside the worker (cheap to pickle,
    memoized per process), while an embedded :class:`RecDataset` is
    shipped to the worker as-is (for datasets that exist only in the
    caller, e.g. significance sweeps over a custom corpus).
    """

    task: str
    model_name: str
    dataset_key: Optional[str] = None
    dataset: Optional[RecDataset] = None
    scale: Optional[ExperimentScale] = None
    seed: int = 0
    #: Autograd backend for the cell's training run (``None`` → the
    #: ``TrainConfig`` default, currently ``"fused"``).
    backend: Optional[str] = None

    def __post_init__(self):
        if self.task not in TASKS:
            raise ValueError(f"unknown task {self.task!r}; options: {TASKS}")
        if (self.dataset_key is None) == (self.dataset is None):
            raise ValueError(
                "exactly one of dataset_key / dataset must be provided")
        if self.backend is not None:
            from repro.autograd.backend import resolve_backend

            resolve_backend(self.backend)  # raises on unknown names


def available_cpus() -> int:
    """CPUs actually available to this process.

    Respects CPU affinity / cgroup restrictions where the platform
    exposes them (``sched_getaffinity``), so ``workers=0`` on a
    2-CPU-limited container of a 64-core host resolves to 2 instead of
    oversubscribing 64 training processes.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def resolve_workers(workers: Union[int, str, None] = None) -> int:
    """Resolve a worker-count request to a concrete pool size.

    ``None`` reads the ``REPRO_WORKERS`` environment variable (default
    ``1``); ``0`` or ``"auto"`` (case-insensitive) expands to
    :func:`available_cpus`.  The result is always ≥ 1.  Because cell
    results are independent of the worker count (see module docstring),
    any resolution is safe — only wall time changes.
    """
    if workers is None:
        workers = os.environ.get("REPRO_WORKERS", "1")
    if isinstance(workers, str):
        workers = 0 if workers.strip().lower() == "auto" else int(workers)
    workers = int(workers)
    if workers <= 0:
        workers = available_cpus()
    return max(1, workers)


def _build_dataset(key: str, seed: int, dataset_scale: float) -> RecDataset:
    """Rebuild a key-named dataset; deterministic in its arguments."""
    from repro.data.synthetic import make_dataset

    return make_dataset(key, seed=seed, scale=dataset_scale)


@lru_cache(maxsize=16)
def _shared_dataset(key: str, seed: int, dataset_scale: float) -> RecDataset:
    """Pool-worker dataset memo.

    ``make_dataset`` is deterministic in ``(key, seed, scale)``, so
    each worker building its own copy preserves the determinism
    contract while avoiding a rebuild for every cell that shares a
    dataset.  Only :func:`_pool_run_cell` routes through this memo, so
    everything it pins lives exactly as long as the worker process —
    the pool is shut down when :func:`run_cells` returns.  The serial
    path uses a memo scoped to the :func:`run_cells` call, and the
    public :func:`run_cell` builds fresh, so a long-lived parent
    process never accumulates datasets.
    """
    return _build_dataset(key, seed, dataset_scale)


def _execute_cell(spec: CellSpec, dataset: RecDataset, scale: ExperimentScale):
    from repro.experiments.runner import run_rating_cell, run_topn_cell

    if spec.task == "rating":
        return run_rating_cell(spec.model_name, dataset, scale=scale,
                               seed=spec.seed, backend=spec.backend)
    return run_topn_cell(spec.model_name, dataset, scale=scale,
                         seed=spec.seed, backend=spec.backend)


def _cell_scale(spec: CellSpec) -> ExperimentScale:
    return spec.scale if spec.scale is not None else get_scale()


def _pool_run_cell(spec: CellSpec):
    """run_cell variant executed inside pool workers (memoized datasets)."""
    scale = _cell_scale(spec)
    if spec.dataset is not None:
        dataset = spec.dataset
    else:
        dataset = _shared_dataset(spec.dataset_key, spec.seed, scale.dataset_scale)
    return _execute_cell(spec, dataset, scale)


def run_cell(spec: CellSpec):
    """Execute one cell and return its raw result.

    ``"rating"`` cells return the test RMSE (float); ``"topn"`` cells
    return ``(HR@10, NDCG@10)``.  The result depends only on ``spec``,
    and the same value is produced wherever the cell runs — locally or
    in a pool worker.  Key-named datasets are rebuilt fresh on every
    call (and released with the call); batch sweeps should go through
    :func:`run_cells`, which shares datasets between the cells of one
    sweep.
    """
    scale = _cell_scale(spec)
    if spec.dataset is not None:
        dataset = spec.dataset
    else:
        dataset = _build_dataset(spec.dataset_key, spec.seed, scale.dataset_scale)
    return _execute_cell(spec, dataset, scale)


def run_cells(
    specs: Iterable[CellSpec],
    workers: Union[int, str, None] = None,
) -> list:
    """Execute cells (possibly in parallel); results in spec order.

    ``workers`` follows :func:`resolve_workers`; with a resolved count
    of 1 (or a single cell) everything runs serially in-process — no
    pool, no pickling, and datasets shared between cells via a memo
    scoped to this call (freed when the sweep returns).  Larger counts
    fan the cells out over a ``ProcessPoolExecutor`` capped at
    ``len(specs)`` workers.

    Determinism: each cell is a pure function of its spec and the
    output list is ordered like the input, so the returned values are
    byte-identical for every worker count.
    """
    specs = list(specs)
    workers = resolve_workers(workers)
    if workers <= 1 or len(specs) <= 1:
        memo: dict[tuple, RecDataset] = {}
        results = []
        for spec in specs:
            scale = _cell_scale(spec)
            if spec.dataset is not None:
                dataset = spec.dataset
            else:
                key = (spec.dataset_key, spec.seed, scale.dataset_scale)
                if key not in memo:
                    memo[key] = _build_dataset(*key)
                dataset = memo[key]
            results.append(_execute_cell(spec, dataset, scale))
        return results
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        return list(pool.map(_pool_run_cell, specs))


def grid_specs(
    task: str,
    model_names: Sequence[str],
    dataset_keys: Sequence[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> list[CellSpec]:
    """Specs for a full model × dataset table, in table iteration order."""
    scale = scale if scale is not None else get_scale()
    return [
        CellSpec(task=task, model_name=model_name, dataset_key=key,
                 scale=scale, seed=seed, backend=backend)
        for model_name in model_names
        for key in dataset_keys
    ]
