"""Plain-text line charts for the paper's figures.

The benchmarks render Figure 3 (metric vs embedding size) and Figure 4
(RMSE vs interaction count) as ASCII charts so the *shape* of each curve
is visible directly in test output, with no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Mapping[float, float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named series of ``{x: y}`` points as an ASCII chart.

    Points are plotted at proportional positions; each series gets a
    marker from a fixed cycle and a legend line.  Series may have
    different x grids.
    """
    if not series:
        raise ValueError("no series to plot")
    xs = sorted({x for curve in series.values() for x in curve})
    ys = [y for curve in series.values() for y in curve.values()]
    if not xs or not ys:
        raise ValueError("series contain no points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in curve.items():
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.3f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.3f} |"
        else:
            label = " " * 9 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10g}{x_label:^{max(width - 20, 0)}}{x_max:>10g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.append(" " * 10 + f"(y: {y_label})")
    return "\n".join(lines)
