"""Figure sweeps and plain-text line charts for the paper's figures.

:func:`run_embedding_size_sweep` regenerates the Figure 3 grid (HR@10
versus embedding size) as independent cells executed through the
parallel engine (:mod:`repro.experiments.parallel`).  The chart helper
renders Figure 3 (metric vs embedding size) and Figure 4 (RMSE vs
interaction count) as ASCII so the *shape* of each curve is visible
directly in test output, with no plotting dependency.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence, Union

from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.parallel import CellSpec, run_cells

_MARKERS = "ox+*#@%&"


def run_embedding_size_sweep(
    dataset_keys: Sequence[str],
    model_names: Sequence[str],
    sizes: Sequence[int],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    epochs: Optional[int] = None,
    workers: Union[int, str, None] = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 3 sweep: ``{dataset: {model: {k: HR@10}}}``.

    Every (dataset, model, embedding size) triple is one top-n cell
    with the embedding size substituted into the scale; cells run
    through :func:`repro.experiments.parallel.run_cells`, so the sweep
    parallelizes across ``workers`` processes while staying
    byte-identical to a serial run (the cells are seeded, independent
    and reassembled in spec order).  ``epochs`` optionally caps the
    per-cell epoch budget (the benchmark trains ``len(model_names) ×
    len(sizes)`` models per dataset).
    """
    scale = scale if scale is not None else get_scale()
    specs = [
        CellSpec(
            task="topn",
            model_name=model_name,
            dataset_key=key,
            scale=replace(scale, k=k, n_seeds=1,
                          epochs=epochs if epochs is not None else scale.epochs),
            seed=seed,
        )
        for key in dataset_keys
        for model_name in model_names
        for k in sizes
    ]
    results = run_cells(specs, workers=workers)
    curves: dict[str, dict[str, dict[int, float]]] = {}
    for spec, (hr, _ndcg) in zip(specs, results):
        curves.setdefault(spec.dataset_key, {}).setdefault(
            spec.model_name, {})[spec.scale.k] = hr
    return curves


def ascii_chart(
    series: Mapping[str, Mapping[float, float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named series of ``{x: y}`` points as an ASCII chart.

    Points are plotted at proportional positions; each series gets a
    marker from a fixed cycle and a legend line.  Series may have
    different x grids.
    """
    if not series:
        raise ValueError("no series to plot")
    xs = sorted({x for curve in series.values() for x in curve})
    ys = [y for curve in series.values() for y in curve.values()]
    if not xs or not ys:
        raise ValueError("series contain no points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in curve.items():
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.3f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.3f} |"
        else:
            label = " " * 9 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10g}{x_label:^{max(width - 20, 0)}}{x_max:>10g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.append(" " * 10 + f"(y: {y_label})")
    return "\n".join(lines)
