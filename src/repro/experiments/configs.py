"""Experiment scale presets.

All experiments run at a configurable scale so the complete benchmark
suite finishes in minutes on a laptop ("quick", the default) while a
fuller run ("full") tightens the comparison.  Select with the
``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by every experiment runner."""

    name: str
    epochs: int
    k: int
    dataset_scale: float
    n_candidates: int
    n_seeds: int


_SCALES = {
    "quick": ExperimentScale(
        name="quick", epochs=25, k=32, dataset_scale=0.5, n_candidates=99, n_seeds=1
    ),
    "full": ExperimentScale(
        name="full", epochs=40, k=64, dataset_scale=1.0, n_candidates=99, n_seeds=3
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve the experiment scale (argument > env var > "quick")."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "quick")
    if name not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; options: {sorted(_SCALES)}")
    return _SCALES[name]
