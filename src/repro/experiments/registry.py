"""Model factory keyed by the paper's model names (Tables 3–4)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.gml_fm import GMLFM_DNN, GMLFM_MD
from repro.data.dataset import RecDataset
from repro.models import (
    AFM,
    BPRMF,
    MAMO,
    NCF,
    NFM,
    NGCF,
    MF,
    PMF,
    DeepFM,
    FactorizationMachine,
    TransFM,
    XDeepFM,
)
from repro.models.base import RecommenderModel

#: Models compared on the rating-prediction task (paper Table 3).
RATING_MODELS = [
    "MF",
    "PMF",
    "LibFM",
    "NFM",
    "AFM",
    "TransFM",
    "DeepFM",
    "xDeepFM",
    "GML-FMmd",
    "GML-FMdnn",
]

#: Models compared on the top-n task (paper Table 4).
TOPN_MODELS = [
    "NCF",
    "BPR-MF",
    "NGCF",
    "LibFM",
    "NFM",
    "AFM",
    "TransFM",
    "DeepFM",
    "xDeepFM",
    "GML-FMmd",
    "GML-FMdnn",
]

#: Serving-only extensions: models wired through artifacts and the
#: scenario engine (:mod:`repro.scenarios`) but deliberately kept out
#: of the paper-table lists above — adding them there would change the
#: table sweeps and the golden-value suite.
SERVING_ONLY_MODELS = [
    "MAMO",
]

_PAIRWISE = {"BPR-MF", "NGCF"}


def is_pairwise(name: str) -> bool:
    """Whether the model trains with the BPR pairwise objective."""
    return name in _PAIRWISE


def build_model(
    name: str,
    dataset: RecDataset,
    k: int = 16,
    seed: int = 0,
    train_users: Optional[np.ndarray] = None,
    train_items: Optional[np.ndarray] = None,
) -> RecommenderModel:
    """Instantiate a model by its paper name.

    ``train_users`` / ``train_items`` feed NGCF's propagation graph
    (training interactions only, to avoid leakage).
    """
    rng = np.random.default_rng(seed)
    n_users, n_items = dataset.n_users, dataset.n_items
    if name == "MF":
        return MF(n_users, n_items, k=k, rng=rng)
    if name == "PMF":
        return PMF(n_users, n_items, k=k, rng=rng)
    if name == "NCF":
        return NCF(n_users, n_items, k=k, rng=rng)
    if name == "BPR-MF":
        return BPRMF(n_users, n_items, k=k, rng=rng)
    if name == "NGCF":
        return NGCF(
            n_users, n_items, k=k, n_layers=2,
            train_users=train_users, train_items=train_items, rng=rng,
        )
    if name == "LibFM":
        return FactorizationMachine(dataset, k=k, rng=rng)
    if name == "NFM":
        return NFM(dataset, k=k, rng=rng)
    if name == "AFM":
        return AFM(dataset, k=k, rng=rng)
    if name == "TransFM":
        return TransFM(dataset, k=k, rng=rng)
    if name == "DeepFM":
        return DeepFM(dataset, k=k, rng=rng)
    if name == "xDeepFM":
        return XDeepFM(dataset, k=k, rng=rng)
    if name == "MAMO":
        return MAMO(dataset, k=k, rng=rng)
    if name == "GML-FMmd":
        return GMLFM_MD(dataset, k=k, rng=rng)
    if name == "GML-FMdnn":
        # Two deep layers: the paper's ablation (Table 5) finds depth 2
        # the best choice on most occasions.
        return GMLFM_DNN(dataset, k=k, n_layers=2, rng=rng)
    raise KeyError(f"unknown model {name!r}")
