"""Experiment harness: model registry, scale configs, runners and
paper-style table formatting.  Every benchmark under ``benchmarks/``
drives these entry points."""

from repro.experiments.registry import (
    RATING_MODELS,
    TOPN_MODELS,
    build_model,
    is_pairwise,
)
from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.parallel import (
    CellSpec,
    grid_specs,
    resolve_workers,
    run_cell,
    run_cells,
)
from repro.experiments.runner import (
    run_rating_cell,
    run_rating_table,
    run_topn_cell,
    run_topn_table,
)
from repro.experiments.tables import format_table
from repro.experiments.figures import ascii_chart, run_embedding_size_sweep
from repro.experiments.significance import compare_models, paired_t_test
from repro.experiments.streaming import (
    ReplayResult,
    ReplayWindow,
    format_replay,
    run_replay,
)

__all__ = [
    "CellSpec",
    "grid_specs",
    "resolve_workers",
    "run_cell",
    "run_cells",
    "run_embedding_size_sweep",
    "RATING_MODELS",
    "TOPN_MODELS",
    "build_model",
    "is_pairwise",
    "ExperimentScale",
    "get_scale",
    "run_rating_cell",
    "run_topn_cell",
    "run_rating_table",
    "run_topn_table",
    "format_table",
    "ascii_chart",
    "ReplayResult",
    "ReplayWindow",
    "format_replay",
    "run_replay",
    "compare_models",
    "paired_t_test",
]
