"""Statistical significance of model comparisons (paper Tables 3–4).

The paper marks results with † (p < 0.01) and ∗ (p < 0.05) from a
two-sided t-test against the best baseline.  This module provides that
machinery: run a (model, dataset, task) cell over several seeds and
compare two models with a paired two-sided t-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np
from scipy import stats

from repro.data.dataset import RecDataset
from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.parallel import CellSpec, run_cells


@dataclass
class SignificanceResult:
    """Outcome of a paired comparison between two models."""

    model_a: str
    model_b: str
    scores_a: list[float]
    scores_b: list[float]
    t_statistic: float
    p_value: float

    @property
    def mean_a(self) -> float:
        return float(np.mean(self.scores_a))

    @property
    def mean_b(self) -> float:
        return float(np.mean(self.scores_b))

    def marker(self) -> str:
        """The paper's notation: '†' p<0.01, '*' p<0.05, '' otherwise."""
        if self.p_value < 0.01:
            return "†"
        if self.p_value < 0.05:
            return "*"
        return ""


def paired_t_test(scores_a: Sequence[float], scores_b: Sequence[float]) -> tuple[float, float]:
    """Two-sided paired t-test; returns (t statistic, p value).

    Requires at least two paired observations; identical samples return
    (0, 1) rather than NaN so callers can treat "no evidence" uniformly.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    if a.size < 2:
        raise ValueError("need at least two paired observations")
    if np.allclose(a, b):
        return 0.0, 1.0
    t_stat, p_value = stats.ttest_rel(a, b)
    return float(t_stat), float(p_value)


def compare_models(
    model_a: str,
    model_b: str,
    dataset: RecDataset,
    task: str = "topn",
    seeds: Optional[Sequence[int]] = None,
    scale: Optional[ExperimentScale] = None,
    workers: Union[int, str, None] = None,
) -> SignificanceResult:
    """Run both models over several seeds and t-test the paired scores.

    ``task`` is ``"topn"`` (scores are HR@10, higher better) or
    ``"rating"`` (scores are RMSE, lower better).  Seeds default to
    ``range(scale.n_seeds)`` but at least 3 for a meaningful test.

    The ``2 × len(seeds)`` training runs are independent cells executed
    through :func:`repro.experiments.parallel.run_cells` (the dataset
    object itself is shipped to each worker); as everywhere in the
    parallel engine, the per-seed scores — and therefore the t statistic
    — are byte-identical for any ``workers`` value.

    Note on cost: with ``workers > 1`` the dataset is pickled once per
    cell (its derived caches are stripped, see
    ``RecDataset.__getstate__``, so the payload is just the interaction
    and attribute arrays).  For very large custom corpora whose
    serialization rivals a cell's training time, prefer ``workers=1``
    or a key-named dataset (rebuilt in-worker from its generator).
    """
    if task not in ("topn", "rating"):
        raise ValueError("task must be 'topn' or 'rating'")
    scale = scale if scale is not None else get_scale()
    if seeds is None:
        seeds = list(range(max(scale.n_seeds, 3)))

    specs = [
        CellSpec(task=task, model_name=model_name, dataset=dataset,
                 scale=scale, seed=int(seed))
        for model_name in (model_a, model_b)
        for seed in seeds
    ]
    raw = run_cells(specs, workers=workers)
    scores = [value if task == "rating" else value[0] for value in raw]
    scores_a = scores[:len(seeds)]
    scores_b = scores[len(seeds):]
    t_stat, p_value = paired_t_test(scores_a, scores_b)
    return SignificanceResult(
        model_a=model_a,
        model_b=model_b,
        scores_a=scores_a,
        scores_b=scores_b,
        t_statistic=t_stat,
        p_value=p_value,
    )
