"""GML-FM: factorization machines with generalized metric learning (Eq. 3).

    ŷ(x) = w₀ + Σᵢ wᵢxᵢ + Σ_{i<j} w_ij · D(v_i, v_j) · x_i x_j
    w_ij = hᵀ (v_i ⊙ v_j)

``D`` is a squared-Euclidean distance on transformed embeddings —
Mahalanobis ``v̂ = Lv`` (GML-FMmd) or a small DNN (GML-FMdnn) — or one of
the Minkowski/cosine variants of Section 3.5.  The transformation weight
``w_ij`` restores the full real-valued range that plain (non-negative)
distances lack.

Two equivalent evaluation modes are provided: ``naive`` computes every
slot pair directly (Eq. 9); ``efficient`` uses the closed form of
Eqs. 10–11 with O(k²·n) cost.  They agree to machine precision (see the
property tests), exactly as the paper's derivation requires.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.distances import (
    DISTANCES,
    DNNTransform,
    IdentityTransform,
    MahalanobisTransform,
)
from repro.core.efficient import (
    pairwise_interaction_efficient,
    pairwise_interaction_naive,
    pairwise_interaction_unweighted_efficient,
)
from repro.data.dataset import RecDataset
from repro.models.base import FeatureRecommender

_TRANSFORMS = ("identity", "mahalanobis", "dnn")
_MODES = ("efficient", "naive")


class GMLFM(FeatureRecommender):
    """The paper's model with all ablation switches exposed.

    Parameters
    ----------
    dataset:
        Supplies the feature encoding and dimensions.
    k:
        Embedding size.
    transform:
        ``"mahalanobis"`` (GML-FMmd), ``"dnn"`` (GML-FMdnn) or
        ``"identity"`` (plain Euclidean; the TransFM-style ablation).
    n_layers:
        Depth of the DNN transform (ignored otherwise).  0 layers means
        identity — the paper's "#layers 0" row.
    distance:
        ``"euclidean"`` (squared; default), ``"manhattan"``,
        ``"chebyshev"`` or ``"cosine"`` (Section 3.5).  Non-Euclidean
        distances require ``mode="naive"`` (no closed form exists).
    use_weight:
        Enable the transformation weight ``w_ij`` (Eq. 2); turning it
        off reproduces the "w/o weight" ablation rows.
    mode:
        ``"efficient"`` (Eqs. 10–11) or ``"naive"`` (Eq. 9).
    dropout:
        Dropout rate between DNN-transform layers.
    init_std:
        Embedding / transformation-weight init scale.  Defaults to
        ``1/√k``: the interaction term is a product of three learned
        factors (``h``, the embeddings, and the distance), so a tiny
        init (e.g. the 0.01 used by inner-product FMs) leaves it with
        vanishing signal and the model degenerates to its linear part.
    """

    def __init__(
        self,
        dataset: RecDataset,
        k: int = 32,
        transform: str = "mahalanobis",
        n_layers: int = 1,
        distance: str = "euclidean",
        use_weight: bool = True,
        mode: str = "efficient",
        dropout: float = 0.0,
        activation: str = "tanh",
        init_std: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(dataset)
        if transform not in _TRANSFORMS:
            raise ValueError(f"unknown transform {transform!r}; options: {_TRANSFORMS}")
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; options: {_MODES}")
        if distance not in DISTANCES:
            raise ValueError(f"unknown distance {distance!r}; options: {sorted(DISTANCES)}")
        if distance != "euclidean" and mode == "efficient":
            raise ValueError(
                "the efficient closed form only exists for the squared "
                "Euclidean distance family; use mode='naive'"
            )
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        self.k = k
        self.transform_kind = transform
        self.distance_name = distance
        self.use_weight = use_weight
        self.mode = mode
        if init_std is None:
            init_std = k ** -0.5
        self.init_std = init_std

        self.embeddings = nn.Embedding(self.n_features, k, std=init_std, rng=rng)
        self.linear = nn.Embedding(self.n_features, 1, std=0.01, rng=rng)
        self.bias = init.zeros(())
        if use_weight:
            self.h = Tensor(rng.normal(0.0, init_std, size=(k,)), requires_grad=True)
        else:
            self.h = None

        if transform == "identity":
            self.transform = IdentityTransform()
        elif transform == "mahalanobis":
            self.transform = MahalanobisTransform(k, rng=rng)
        else:
            self.transform = DNNTransform(
                k, n_layers=n_layers, activation=activation, dropout=dropout, rng=rng
            )

    # ------------------------------------------------------------------
    def forward_features(self, indices: np.ndarray, values: np.ndarray) -> Tensor:
        """Eq. 3 over a batch of encoded samples."""
        x = Tensor(values)
        v = self.embeddings(indices)                 # [B, W, k]
        v_hat = self.transform(v)                    # [B, W, k]

        linear = (self.linear(indices).squeeze(-1) * x).sum(axis=-1)

        if self.mode == "naive":
            interaction = pairwise_interaction_naive(
                v, v_hat, x, self.h, DISTANCES[self.distance_name]
            )
        elif self.use_weight:
            interaction = pairwise_interaction_efficient(v, v_hat, x, self.h)
        else:
            interaction = pairwise_interaction_unweighted_efficient(v_hat, x)

        return self.bias + linear + interaction

    # ------------------------------------------------------------------
    def item_embeddings(self, item_ids: np.ndarray, offset: int) -> np.ndarray:
        """Raw item-id embeddings for the t-SNE case study (Figs. 5–6)."""
        return self.embeddings.weight.data[offset + np.asarray(item_ids)]

    # ------------------------------------------------------------------
    # Batch-serving fast path (Section 3.3 cashed in at inference time)
    # ------------------------------------------------------------------
    # The closed form of Eqs. 10–11 is built from sums over active
    # slots, and every slot belongs to either the user half (user id +
    # user attributes) or the item half of the encoding.  Splitting each
    # sum, the score of a (user, item) pair decomposes into
    #
    #     per-user terms + per-item terms + cross terms,
    #
    # where every cross term is a dot product between a per-user and a
    # per-item vector of size k or k².  A whole [U, I] grid is then a
    # handful of matmuls over precomputed per-entity summaries — no
    # per-pair encoding or forward pass at all.
    def _half_state(self, dataset: RecDataset, side: str, ids: np.ndarray) -> dict:
        """Per-entity summaries of one side of the encoding."""
        from repro.autograd.tensor import no_grad

        indices, x = dataset.encode_half(side, ids)
        v = self.embeddings.weight.data[indices]             # [N, W, k]
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                v_hat = self.transform(Tensor(v)).data       # [N, W, k]
        finally:
            if was_training:
                self.train()
        linear = (self.linear.weight.data[indices][..., 0] * x).sum(axis=-1)

        xv = x[..., None] * v
        sq_norm = (v_hat * v_hat).sum(axis=-1)               # [N, W]
        s1 = xv.sum(axis=1)                                  # [N, k]
        s2 = ((x * sq_norm)[..., None] * v).sum(axis=1)      # [N, k]

        if self.h is not None:
            h = self.h.data
            q = np.einsum("nw,nwk,nwl->nkl", x, v, v_hat)    # Σ x_j v_j v̂_jᵀ
            r = np.einsum("nw,nwk,nwl->nkl", x, v * h, v_hat)
            const = (linear
                     + ((s1 * s2) * h).sum(axis=-1)
                     - (r * q).sum(axis=(-2, -1)))
            n = ids.shape[0]
            return {"s1": s1, "s2": s2, "q": q.reshape(n, -1),
                    "r": r.reshape(n, -1), "const": const}

        # Unweighted ablation: f = (Σx_j)(Σ x_i ‖v̂_i‖² x_i) − ‖Σ x_i v̂_i‖².
        sx = x.sum(axis=-1)                                  # [N]
        sn = (x * sq_norm).sum(axis=-1)                      # [N]
        pooled = (x[..., None] * v_hat).sum(axis=1)          # [N, k]
        const = linear + sx * sn - (pooled * pooled).sum(axis=-1)
        return {"sx": sx, "sn": sn, "pooled": pooled, "const": const}

    def item_state(self, dataset: RecDataset):
        """Item-half summaries for the whole catalogue.

        Only the squared-Euclidean distance family decomposes (the same
        restriction as ``mode='efficient'``); other distances fall back
        to pairwise scoring.
        """
        if self.distance_name != "euclidean":
            return None
        items = np.arange(dataset.n_items, dtype=np.int64)
        state = self._half_state(dataset, "item", items)
        state["dataset"] = dataset
        return state

    def score_grid(self, users: np.ndarray, state) -> np.ndarray:
        u = self._half_state(state["dataset"], "user",
                             np.asarray(users, dtype=np.int64))
        const = (self.bias.data + u["const"][:, None]) + state["const"][None, :]
        if self.h is not None:
            h = self.h.data
            # term1 cross parts: hᵀ(s1ᵘ ∘ s2ⁱ) + hᵀ(s2ᵘ ∘ s1ⁱ)
            term1 = (u["s1"] * h) @ state["s2"].T + (u["s2"] * h) @ state["s1"].T
            # term2 cross parts: ⟨Rᵘ, Qⁱ⟩_F + ⟨Rⁱ, Qᵘ⟩_F
            term2 = u["r"] @ state["q"].T + u["q"] @ state["r"].T
            return const + term1 - term2
        cross = (u["sx"][:, None] * state["sn"][None, :]
                 + u["sn"][:, None] * state["sx"][None, :]
                 - 2.0 * (u["pooled"] @ state["pooled"].T))
        return const + cross

    # -- bilinear decomposition for ANN candidate retrieval ------------
    # Both closed forms above are sums of cross dot products, so the
    # whole grid is u_const + i_const + U·Vᵀ with the user/item blocks
    # concatenated (signs folded into the user side).
    def grid_factor_items(self, state):
        if "s1" in state:
            vectors = np.hstack([state["s2"], state["s1"],
                                 state["q"], state["r"]])
        else:
            vectors = np.hstack([state["sn"][:, None], state["sx"][:, None],
                                 state["pooled"]])
        return vectors, state["const"]

    def grid_factor_users(self, users: np.ndarray, state):
        u = self._half_state(state["dataset"], "user",
                             np.asarray(users, dtype=np.int64))
        if self.h is not None:
            h = self.h.data
            factors = np.hstack([u["s1"] * h, u["s2"] * h, -u["r"], -u["q"]])
        else:
            factors = np.hstack([u["sx"][:, None], u["sn"][:, None],
                                 -2.0 * u["pooled"]])
        return factors, self.bias.data + u["const"]


def GMLFM_MD(dataset: RecDataset, k: int = 32, init_std: float = 0.1,
             rng: Optional[np.random.Generator] = None, **kwargs) -> GMLFM:
    """GML-FM with the Mahalanobis distance (paper's GML-FMmd).

    A slightly smaller init than the DNN variant keeps the quadratic
    metric term well-conditioned early in training.
    """
    return GMLFM(dataset, k=k, transform="mahalanobis", init_std=init_std,
                 rng=rng, **kwargs)


def GMLFM_DNN(dataset: RecDataset, k: int = 32, n_layers: int = 1, dropout: float = 0.0,
              rng: Optional[np.random.Generator] = None, **kwargs) -> GMLFM:
    """GML-FM with the DNN-based distance (paper's GML-FMdnn)."""
    return GMLFM(
        dataset, k=k, transform="dnn", n_layers=n_layers, dropout=dropout,
        rng=rng, **kwargs,
    )
