"""Naive and closed-form second-order interactions (Section 3.3).

The general weighted second-order term of GML-FM is

    f(x) = Σ_{i<j} hᵀ(v_i ⊙ v_j) · D(v_i, v_j) · x_i x_j         (Eq. 9)

For squared-Euclidean distances on transformed vectors,
``D(v_i, v_j) = ‖v̂_i − v̂_j‖²``, the paper derives the closed form

    f(x) = Σ_j x_j v_jᵀ diag(h) Σ_i (v̂_iᵀ v̂_i) v_i x_i
         − Σ_j x_j v_jᵀ diag(h) (Σ_i v_i v̂_iᵀ x_i) v̂_j         (Eqs. 10–11)

which replaces the nested double sum (O(k²·n²) over active features)
with independent sums (O(k²·n)).  Both forms are implemented over the
batched sparse encoding ``v, v̂ ∈ [B, W, k]`` and ``x ∈ [B, W]``; the
test-suite property-checks their exact agreement, gradients included.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.autograd.tensor import Tensor


def _pair_indices(width: int) -> tuple[np.ndarray, np.ndarray]:
    """Upper-triangular (i < j) index pairs over ``width`` slots."""
    left, right = np.triu_indices(width, k=1)
    return left, right


def pairwise_interaction_naive(
    v: Tensor,
    v_hat: Tensor,
    x: Tensor,
    h: Optional[Tensor],
    distance: Callable[[Tensor, Tensor], Tensor],
) -> Tensor:
    """Direct evaluation of Eq. 9 over all slot pairs.

    Parameters
    ----------
    v:
        Raw factorized embeddings ``[B, W, k]`` (used by the
        transformation weight).
    v_hat:
        Transformed embeddings ``[B, W, k]`` (used by the distance).
    x:
        Feature values ``[B, W]``; padding slots carry 0.
    h:
        Transformation-weight vector ``[k]``; ``None`` disables the
        weight (``w_ij = 1``), the paper's "w/o weight" ablation.
    distance:
        Pairwise distance on the last axis; any entry of
        :data:`repro.core.distances.DISTANCES`.
    """
    width = v.shape[1]
    left, right = _pair_indices(width)
    v_i, v_j = v[:, left, :], v[:, right, :]
    d = distance(v_hat[:, left, :], v_hat[:, right, :])  # [B, P]
    x_pair = x[:, left] * x[:, right]  # [B, P]
    if h is None:
        weighted = d
    else:
        weighted = ((v_i * v_j) @ h) * d
    return (weighted * x_pair).sum(axis=-1)


def pairwise_interaction_efficient(
    v: Tensor,
    v_hat: Tensor,
    x: Tensor,
    h: Tensor,
) -> Tensor:
    """Closed form of Eqs. 10–11 for squared-Euclidean distances.

    Computes ``term1 − term2`` where::

        term1 = (Σ_j x_j v_j)ᵀ diag(h) (Σ_i ‖v̂_i‖² x_i v_i)
        term2 = Σ_j x_j (h ⊙ v_j)ᵀ Q v̂_j,   Q = Σ_i x_i v_i v̂_iᵀ

    Complexity is O(B·W·k²) versus the naive O(B·W²·k); with a dense
    input vector (W = n) this is the paper's O(k²n) vs O(k²n²) claim.
    """
    xv = x.expand_dims(-1) * v                      # [B, W, k]
    sq_norm = (v_hat * v_hat).sum(axis=-1)          # [B, W]
    s1 = xv.sum(axis=1)                             # [B, k]
    s2 = ((x * sq_norm).expand_dims(-1) * v).sum(axis=1)  # [B, k]
    term1 = ((s1 * s2) * h).sum(axis=-1)            # [B]

    q = xv.swapaxes(1, 2) @ v_hat                   # [B, k, k]
    hv = v * h                                      # [B, W, k]
    r = hv @ q                                      # [B, W, k]
    term2 = (x * (r * v_hat).sum(axis=-1)).sum(axis=-1)  # [B]
    return term1 - term2


def pairwise_interaction_unweighted_efficient(
    v_hat: Tensor,
    x: Tensor,
) -> Tensor:
    """Closed form with ``w_ij = 1`` (no transformation weight).

    ``f = (Σ_j x_j)(Σ_i ‖v̂_i‖² x_i) − ‖Σ_i x_i v̂_i‖²`` — the direct
    expansion of the unweighted Eq. 9 for squared Euclidean distances.
    """
    sq_norm = (v_hat * v_hat).sum(axis=-1)          # [B, W]
    x_sum = x.sum(axis=-1)                          # [B]
    a_sum = (x * sq_norm).sum(axis=-1)              # [B]
    pooled = (x.expand_dims(-1) * v_hat).sum(axis=1)  # [B, k]
    return x_sum * a_sum - (pooled * pooled).sum(axis=-1)
