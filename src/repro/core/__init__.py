"""The paper's primary contribution: generalized-metric-learning FMs.

- :mod:`repro.core.distances` — feature-space transforms (Mahalanobis
  ``M = LᵀL``, DNN) and the generalized distance family (squared
  Euclidean, Manhattan, Chebyshev, Minkowski-p, cosine).
- :mod:`repro.core.efficient` — the closed-form O(k²·n) second-order
  interaction of Section 3.3 (Eqs. 9–11), plus the naive O((kn)²) form
  used to validate it.
- :mod:`repro.core.gml_fm` — the GML-FM model (Eq. 3) with the
  transformation weight ``w_ij = hᵀ(v_i ⊙ v_j)``; factory helpers
  ``GMLFM_MD`` and ``GMLFM_DNN`` match the paper's two variants.
"""

from repro.core.distances import (
    DISTANCES,
    DNNTransform,
    IdentityTransform,
    MahalanobisTransform,
    chebyshev_distance,
    cosine_distance,
    manhattan_distance,
    minkowski_distance,
    squared_euclidean_distance,
)
from repro.core.efficient import (
    pairwise_interaction_efficient,
    pairwise_interaction_naive,
    pairwise_interaction_unweighted_efficient,
)
from repro.core.gml_fm import GMLFM, GMLFM_DNN, GMLFM_MD

__all__ = [
    "GMLFM",
    "GMLFM_MD",
    "GMLFM_DNN",
    "MahalanobisTransform",
    "DNNTransform",
    "IdentityTransform",
    "squared_euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "minkowski_distance",
    "cosine_distance",
    "DISTANCES",
    "pairwise_interaction_naive",
    "pairwise_interaction_efficient",
    "pairwise_interaction_unweighted_efficient",
]
