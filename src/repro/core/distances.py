"""Feature transforms and generalized distance functions (Sections 3.2, 3.5).

GML-FM factors a generalized metric ``D(v_i, v_j)`` into

1. a learned transform ``v̂ = φ(v)`` capturing *intra-attribute* feature
   correlations — linear (Mahalanobis, ``φ(v) = Lv`` so that
   ``D = (v_i − v_j)ᵀ LᵀL (v_i − v_j)`` with ``M = LᵀL ⪰ 0``) or
   non-linear (a small DNN, Eq. 7), and
2. a base distance on the transformed vectors — squared Euclidean by
   default, or any Minkowski-p / cosine variant (Section 3.5).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.autograd import init, nn
from repro.autograd.tensor import Tensor


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------
class IdentityTransform(nn.Module):
    """No-op transform: recovers TransFM-style plain Euclidean distance."""

    def forward(self, v: Tensor) -> Tensor:
        return v


class MahalanobisTransform(nn.Module):
    """Linear transform ``v̂ = Lv`` parameterizing ``M = LᵀL``.

    Initializing ``L`` at (a noisy) identity starts training from the
    Euclidean special case the paper highlights (Section 3.2.1), and the
    factorization guarantees ``M`` is positive semi-definite for any
    real ``L`` — the proof in the paper is ``xᵀMx = ‖Lx‖² ≥ 0``.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None,
                 noise: float = 0.01):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()  # repro: allow(det-unseeded-rng): explicit opt-out — caller omitted rng
        matrix = np.eye(dim) + rng.normal(0.0, noise, size=(dim, dim))
        self.L = Tensor(matrix, requires_grad=True)

    def forward(self, v: Tensor) -> Tensor:
        # v has shape [..., k]; v̂ = v Lᵀ applies L to each row vector.
        return v @ self.L.T

    def metric_matrix(self) -> np.ndarray:
        """Return the current ``M = LᵀL`` (positive semi-definite)."""
        L = self.L.data
        return L.T @ L


class DNNTransform(nn.Module):
    """Non-linear transform ``v̂ = σ_L(W_L(…σ_1(W_1 v + b_1)…) + b_L)``.

    All layers are square ``k×k`` with a shared activation (the paper
    uses tanh) and dropout between consecutive layers (Eq. 7).  With 0
    layers the transform degenerates to the identity, i.e. plain
    Euclidean distance with the transformation weight — exactly the
    paper's "#layers 0" ablation row.
    """

    def __init__(self, dim: int, n_layers: int, activation: str = "tanh",
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if n_layers < 0:
            raise ValueError("n_layers must be >= 0")
        self.n_layers = n_layers
        if n_layers == 0:
            self.mlp = nn.Identity()
        else:
            self.mlp = nn.make_mlp(
                [dim] * (n_layers + 1), activation=activation,
                dropout=dropout, rng=rng, std=0.1,
            )

    def forward(self, v: Tensor) -> Tensor:
        return self.mlp(v)


# ----------------------------------------------------------------------
# Base distances on transformed vectors
# ----------------------------------------------------------------------
def squared_euclidean_distance(a: Tensor, b: Tensor) -> Tensor:
    """``‖a − b‖²`` along the last axis (the paper's default, Eq. 8)."""
    diff = a - b
    return (diff * diff).sum(axis=-1)


def manhattan_distance(a: Tensor, b: Tensor) -> Tensor:
    """Minkowski p=1."""
    return (a - b).abs().sum(axis=-1)


def chebyshev_distance(a: Tensor, b: Tensor) -> Tensor:
    """Minkowski p=∞."""
    return (a - b).abs().max(axis=-1)


def minkowski_distance(a: Tensor, b: Tensor, p: float) -> Tensor:
    """General Minkowski-p distance (Section 3.5)."""
    if p <= 0:
        raise ValueError("p must be positive")
    return ((a - b).abs() ** p).sum(axis=-1) ** (1.0 / p)


def cosine_distance(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Cosine similarity ``âᵀb̂`` — the inner-product-style variant.

    The paper notes this is computed "in an inner product fashion"; it
    is included to show metric distances beat it (Table 5, bottom).
    """
    dot = (a * b).sum(axis=-1)
    norm_a = ((a * a).sum(axis=-1) + eps).sqrt()
    norm_b = ((b * b).sum(axis=-1) + eps).sqrt()
    return dot / (norm_a * norm_b)


DISTANCES: dict[str, Callable[[Tensor, Tensor], Tensor]] = {
    "euclidean": squared_euclidean_distance,
    "manhattan": manhattan_distance,
    "chebyshev": chebyshev_distance,
    "cosine": cosine_distance,
}
