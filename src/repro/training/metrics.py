"""Evaluation metrics: RMSE, HR@K and NDCG@K (paper Section 4.3)."""

from __future__ import annotations

import numpy as np


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean square error."""
    predictions = np.asarray(predictions, dtype=np.float64)  # repro: allow(dtype-hardcoded): metrics accumulate in float64 regardless of the training backend
    targets = np.asarray(targets, dtype=np.float64)  # repro: allow(dtype-hardcoded): metrics accumulate in float64 regardless of the training backend
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have equal shapes")
    if predictions.size == 0:
        raise ValueError("cannot compute RMSE of an empty array")
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))


def _positive_ranks(scores: np.ndarray) -> np.ndarray:
    """Rank (0-based) of column 0 within each candidate row.

    ``scores[r, 0]`` is the positive item's score; the rank counts how
    many negatives strictly beat it (ties resolved pessimistically
    against the positive, which avoids inflated metrics for constant
    scorers).
    """
    positive = scores[:, :1]
    return (scores[:, 1:] >= positive).sum(axis=1)


def hit_ratio(scores: np.ndarray, top_k: int = 10) -> float:
    """HR@K over candidate rows with the positive in column 0."""
    ranks = _positive_ranks(np.asarray(scores))
    return float((ranks < top_k).mean())


def ndcg(scores: np.ndarray, top_k: int = 10) -> float:
    """NDCG@K with a single relevant item per row (reduces to 1/log2(rank+2))."""
    ranks = _positive_ranks(np.asarray(scores))
    gains = np.where(ranks < top_k, 1.0 / np.log2(ranks + 2.0), 0.0)
    return float(gains.mean())
