"""Model persistence: save and load parameters as ``.npz`` archives.

Only parameter arrays are stored (keyed by the dotted names of
``Module.named_parameters``); architecture is reconstructed by the
caller, which keeps the format trivially portable.  For a
self-describing bundle that also reconstructs the architecture, see
:mod:`repro.serving.artifact`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.nn import Module


def normalize_npz_path(path: str) -> str:
    """Append ``.npz`` when missing, matching ``np.savez``'s behavior.

    ``np.savez`` silently appends the extension on write; normalizing on
    both the save and load side keeps ``save_model(m, "weights")`` and
    ``load_model(m, "weights")`` pointing at the same file.
    """
    return path if path.endswith(".npz") else path + ".npz"


def save_model(model: Module, path: str) -> str:
    """Write a model's parameters to ``path`` and return the real path
    (with the ``.npz`` extension ``np.savez`` would have appended)."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    path = normalize_npz_path(path)
    np.savez(path, **state)
    return path


def load_model(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_model` into ``model``.

    The model must already be constructed with matching architecture;
    shape mismatches raise ``ValueError`` (from ``load_state_dict``).
    """
    with np.load(normalize_npz_path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
