"""Model persistence: save and load parameters as ``.npz`` archives.

Only parameter arrays are stored (keyed by the dotted names of
``Module.named_parameters``); architecture is reconstructed by the
caller, which keeps the format trivially portable.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.nn import Module


def save_model(model: Module, path: str) -> None:
    """Write a model's parameters to ``path`` (``.npz``)."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    np.savez(path, **state)


def load_model(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_model` into ``model``.

    The model must already be constructed with matching architecture;
    shape mismatches raise ``ValueError`` (from ``load_state_dict``).
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
