"""Model persistence: save and load parameters as ``.npz`` archives.

Only parameter arrays are stored (keyed by the dotted names of
``Module.named_parameters``); architecture is reconstructed by the
caller, which keeps the format trivially portable.  For a
self-describing bundle that also reconstructs the architecture, see
:mod:`repro.serving.artifact`.

Archives are written through :func:`write_npz_deterministic` rather
than ``np.savez``: the stdlib zip writer stamps every member with the
current wall-clock time, so two saves of a byte-identical model used to
produce byte-different files — which breaks any content-addressed
artifact fingerprinting or cache keyed on file bytes.  The
deterministic writer pins member timestamps to the zip epoch and sorts
member order, so ``save → save`` is byte-equal whenever the arrays are.
``np.load`` reads both formats identically.
"""

from __future__ import annotations

import io
import zipfile

import numpy as np

from repro.autograd.nn import Module

#: The zip format's epoch — the fixed member timestamp deterministic
#: archives are stamped with (zip cannot represent anything earlier).
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def normalize_npz_path(path: str) -> str:
    """Append ``.npz`` when missing, matching ``np.savez``'s behavior.

    ``np.savez`` silently appends the extension on write; normalizing on
    both the save and load side keeps ``save_model(m, "weights")`` and
    ``load_model(m, "weights")`` pointing at the same file.
    """
    return path if path.endswith(".npz") else path + ".npz"


def write_npz_deterministic(path: str, arrays: dict) -> None:
    """Write an ``np.load``-compatible ``.npz`` with reproducible bytes.

    Members are stored uncompressed (like ``np.savez``) in sorted key
    order with their timestamps pinned to the zip epoch, so the file's
    bytes are a pure function of the array contents.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(arrays):
            buf = io.BytesIO()
            np.lib.format.write_array(buf, np.asarray(arrays[name]),
                                      allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            archive.writestr(info, buf.getvalue())


def save_model(model: Module, path: str) -> str:
    """Write a model's parameters to ``path`` and return the real path
    (with the ``.npz`` extension ``np.savez`` would have appended)."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    path = normalize_npz_path(path)
    write_npz_deterministic(path, state)
    return path


def load_model(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_model` into ``model``.

    The model must already be constructed with matching architecture;
    shape mismatches raise ``ValueError`` (from ``load_state_dict``).
    """
    with np.load(normalize_npz_path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
