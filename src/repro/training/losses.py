"""Training objectives.

The paper trains every model with the squared (regression) loss on ±1
implicit targets (Eq. 13); BPR-MF and NGCF use the pairwise Bayesian
Personalized Ranking objective instead.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def squared_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error ``mean((ŷ − y)²)`` (Eq. 13, batch-averaged).

    Targets follow the predictions' dtype so the loss graph stays in
    the training backend's precision.
    """
    diff = predictions - np.asarray(targets, dtype=predictions.data.dtype)
    return (diff * diff).mean()


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Pairwise BPR loss ``−mean(log σ(ŷ⁺ − ŷ⁻))``."""
    margin = positive_scores - negative_scores
    # -log(sigmoid(m)) = softplus(-m); use the sigmoid op (stable form).
    return -(margin.sigmoid() + 1e-12).log().mean()
