"""Training loops, losses, metrics and the paper's evaluation protocols."""

from repro.training.losses import bpr_loss, squared_loss
from repro.training.metrics import hit_ratio, ndcg, rmse
from repro.training.trainer import TrainConfig, Trainer
from repro.training.online import (
    FoldInDivergedError,
    IncrementalTrainer,
    OnlineConfig,
    ReadOnlyModelError,
    UpdateReport,
)
from repro.training.persistence import (load_model, save_model,
                                        write_npz_deterministic)
from repro.training.recommend import recommend
from repro.training.evaluation import (
    RatingEvaluation,
    TopNEvaluation,
    build_rating_instances,
    evaluate_rating,
    evaluate_topn,
    evaluate_topn_grid,
    make_topn_validator,
    prepare_topn_protocol,
)

__all__ = [
    "squared_loss",
    "bpr_loss",
    "rmse",
    "hit_ratio",
    "ndcg",
    "Trainer",
    "TrainConfig",
    "FoldInDivergedError",
    "ReadOnlyModelError",
    "IncrementalTrainer",
    "OnlineConfig",
    "UpdateReport",
    "write_npz_deterministic",
    "build_rating_instances",
    "evaluate_rating",
    "evaluate_topn",
    "evaluate_topn_grid",
    "make_topn_validator",
    "RatingEvaluation",
    "TopNEvaluation",
    "prepare_topn_protocol",
    "save_model",
    "load_model",
    "recommend",
]
