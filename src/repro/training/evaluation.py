"""The paper's two evaluation protocols (Section 4.3).

Rating prediction
    The positive interactions are augmented with 2 sampled negatives per
    positive (labels +1 / -1), split randomly 70/20/10, and RMSE is
    reported on the test portion.

Top-n recommendation
    Leave-one-out: each user's latest interaction is the test positive;
    it is ranked against 99 sampled uninteracted items and HR@10 /
    NDCG@10 are averaged over users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import RecDataset
from repro.data.sampling import NegativeSampler, sample_ranking_candidates
from repro.data.splits import leave_one_out_split, random_split
from repro.models.base import RecommenderModel
from repro.training.metrics import hit_ratio, ndcg, rmse


@dataclass
class RatingInstances:
    """±1-labelled instances split for the rating-prediction task."""

    users: np.ndarray
    items: np.ndarray
    labels: np.ndarray
    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    _splits: dict = field(default_factory=dict, repr=False, compare=False)

    def split(self, name: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(users, items, labels)`` of one split, memoized.

        Per-epoch validation calls ``split("valid")`` / ``split("test")``
        every epoch; returning the same arrays each time keeps the
        downstream encoded-instance cache
        (:meth:`repro.data.dataset.RecDataset.encode_cached`) hitting
        without re-slicing, and the split is deterministic so the memo
        cannot go stale.
        """
        if name not in self._splits:
            index = {"train": self.train, "valid": self.valid, "test": self.test}[name]
            self._splits[name] = (self.users[index], self.items[index], self.labels[index])
        return self._splits[name]


@dataclass
class RatingEvaluation:
    """RMSE on validation and test splits."""

    valid_rmse: float
    test_rmse: float


@dataclass
class TopNEvaluation:
    """HR@K and NDCG@K from leave-one-out ranking."""

    hr: float
    ndcg: float
    top_k: int = 10


def build_rating_instances(
    dataset: RecDataset,
    n_negatives: int = 2,
    ratios: tuple[float, float, float] = (0.7, 0.2, 0.1),
    seed: int = 0,
) -> RatingInstances:
    """Create the shared ±1 instance set and its random split.

    Sampling once (then splitting) matches the paper's protocol of using
    identical instances across all compared models.

    The instance set is static for the lifetime of a run: training
    (``Trainer.fit_pointwise``) and per-epoch evaluation
    (:func:`evaluate_rating` via ``model.predict``) both route their
    encodings through the dataset's encoded-instance cache, so each of
    the train/valid/test splits is encoded exactly once no matter how
    many epochs touch it.
    """
    sampler = NegativeSampler(dataset, seed=seed)
    pos_users = dataset.users
    pos_items = dataset.items
    negatives = sampler.sample_for_users(pos_users, n_negatives)
    users = np.concatenate([pos_users, np.repeat(pos_users, n_negatives)])
    items = np.concatenate([pos_items, negatives.reshape(-1)])
    labels = np.concatenate(
        [np.ones(pos_users.size), -np.ones(pos_users.size * n_negatives)]
    )

    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(users.size)
    n_train = int(round(ratios[0] * order.size))
    n_valid = int(round(ratios[1] * order.size))
    return RatingInstances(
        users=users,
        items=items,
        labels=labels,
        train=order[:n_train],
        valid=order[n_train:n_train + n_valid],
        test=order[n_train + n_valid:],
    )


def evaluate_rating(model: RecommenderModel, instances: RatingInstances) -> RatingEvaluation:
    """RMSE of a trained model on the validation and test splits."""
    users_v, items_v, labels_v = instances.split("valid")
    users_t, items_t, labels_t = instances.split("test")
    return RatingEvaluation(
        valid_rmse=rmse(model.predict(users_v, items_v), labels_v),
        test_rmse=rmse(model.predict(users_t, items_t), labels_t),
    )


def evaluate_topn(
    model: RecommenderModel,
    dataset: RecDataset,
    test_users: np.ndarray,
    candidates: np.ndarray,
    top_k: int = 10,
) -> TopNEvaluation:
    """Rank each user's candidate row and average HR@K / NDCG@K.

    ``candidates[r]`` holds the positive item in column 0 followed by 99
    sampled negatives (see
    :func:`repro.data.sampling.sample_ranking_candidates`).
    """
    test_users = np.asarray(test_users)
    n_rows, n_cols = candidates.shape
    flat_users = np.repeat(test_users, n_cols)
    flat_items = candidates.reshape(-1)
    scores = model.predict(flat_users, flat_items).reshape(n_rows, n_cols)
    return TopNEvaluation(
        hr=hit_ratio(scores, top_k=top_k),
        ndcg=ndcg(scores, top_k=top_k),
        top_k=top_k,
    )


def evaluate_topn_grid(
    model: RecommenderModel,
    dataset: RecDataset,
    test_users: np.ndarray,
    candidates: np.ndarray,
    top_k: int = 10,
    user_batch: int = 256,
) -> TopNEvaluation:
    """Grid-scored top-n evaluation (same protocol as :func:`evaluate_topn`).

    Evaluation rides the serving grid scorer
    (:class:`repro.serving.scorer.BatchScorer`): models with an
    item-side precompute (:meth:`~repro.models.base.RecommenderModel.item_state`
    / ``score_grid``) score whole ``[user_batch, n_items]`` blocks with
    a few matmuls and the candidate columns are gathered out, instead
    of pushing every flattened (user, item) pair through
    ``model.predict``.  Produces the same HR@K / NDCG@K as
    :func:`evaluate_topn` (candidate ranks are integers; the matmul's
    float reordering is far below any score gap).  Models without a
    grid path fall back to :func:`evaluate_topn` unchanged.
    """
    from repro.serving.scorer import BatchScorer

    test_users = np.asarray(test_users, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.shape[0] != test_users.size:
        raise ValueError(
            f"candidates has {candidates.shape[0]} rows for "
            f"{test_users.size} test users")
    scorer = BatchScorer(model, dataset, user_batch=user_batch)
    if not scorer.uses_fast_path:
        return evaluate_topn(model, dataset, test_users, candidates, top_k=top_k)
    scores = np.empty(candidates.shape, dtype=np.float64)  # repro: allow(dtype-hardcoded): eval scores accumulate in float64 regardless of the training backend
    for start in range(0, test_users.size, user_batch):
        stop = start + user_batch
        grid = scorer.score(test_users[start:stop])
        scores[start:stop] = np.take_along_axis(
            grid, candidates[start:stop], axis=1)
    return TopNEvaluation(
        hr=hit_ratio(scores, top_k=top_k),
        ndcg=ndcg(scores, top_k=top_k),
        top_k=top_k,
    )


def make_topn_validator(
    dataset: RecDataset,
    test_users: np.ndarray,
    candidates: np.ndarray,
    metric: str = "hr",
    top_k: int = 10,
):
    """A ``Trainer``-compatible validation callback on the top-n protocol.

    Returns ``validate(model) -> float`` scoring the held-out
    candidates through :func:`evaluate_topn_grid` (grid fast path when
    the model has one).  Pass to
    :meth:`repro.training.trainer.Trainer.fit_pointwise` /
    ``fit_pairwise`` with ``higher_is_better=True``.
    """
    if metric not in ("hr", "ndcg"):
        raise ValueError(f"metric must be 'hr' or 'ndcg', got {metric!r}")

    def validate(model: RecommenderModel) -> float:
        result = evaluate_topn_grid(
            model, dataset, test_users, candidates, top_k=top_k)
        return result.hr if metric == "hr" else result.ndcg

    return validate


def prepare_topn_protocol(
    dataset: RecDataset,
    n_candidates: int = 99,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Leave-one-out split plus ranking candidates.

    Returns ``(train_index, test_users, test_items, candidates)``.
    """
    train_index, test_index = leave_one_out_split(dataset)
    test_users = dataset.users[test_index]
    test_items = dataset.items[test_index]
    candidates = sample_ranking_candidates(
        dataset, test_users, test_items, n_candidates=n_candidates, seed=seed
    )
    return train_index, test_users, test_items, candidates
