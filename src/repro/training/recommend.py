"""User-facing recommendation: score all items and return the top-k.

This is the deployment-side API a downstream user calls after training:
given a model and the dataset (for encoding and seen-item filtering),
produce ranked item lists per user.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel


def recommend(
    model: RecommenderModel,
    dataset: RecDataset,
    users: np.ndarray,
    top_k: int = 10,
    exclude_seen: bool = True,
    batch_items: int = 8192,
) -> np.ndarray:
    """Top-k item ids per user, highest score first.

    Parameters
    ----------
    model:
        Any trained :class:`RecommenderModel`.
    dataset:
        Supplies the item universe, the encoding, and (when
        ``exclude_seen``) each user's interaction history.
    users:
        User ids to recommend for.
    top_k:
        List length; must not exceed the number of candidate items.
    exclude_seen:
        Drop items the user already interacted with (the usual setting
        for implicit feedback).
    batch_items:
        Item-axis batch size used when scoring the full catalogue.

    Returns
    -------
    ``int64 [len(users), top_k]`` ranked item ids.
    """
    users = np.asarray(users, dtype=np.int64)
    n_items = dataset.n_items
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    seen = dataset.positives_by_user() if exclude_seen else None
    if exclude_seen:
        max_seen = max((len(s) for s in seen), default=0)
        if top_k > n_items - max_seen:
            raise ValueError("top_k exceeds the number of unseen items")
    elif top_k > n_items:
        raise ValueError("top_k exceeds the number of items")

    all_items = np.arange(n_items, dtype=np.int64)
    out = np.empty((users.size, top_k), dtype=np.int64)
    for row, user in enumerate(users):
        scores = np.empty(n_items)
        for start in range(0, n_items, batch_items):
            stop = min(start + batch_items, n_items)
            batch = all_items[start:stop]
            scores[start:stop] = model.predict(
                np.full(batch.size, user, dtype=np.int64), batch
            )
        if exclude_seen and seen[user]:
            scores[list(seen[user])] = -np.inf
        top = np.argpartition(-scores, top_k - 1)[:top_k]
        out[row] = top[np.argsort(-scores[top])]
    return out
