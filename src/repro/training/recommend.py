"""User-facing recommendation: score all items and return the top-k.

This is the deployment-side API a downstream user calls after training:
given a model and the dataset (for encoding and seen-item filtering),
produce ranked item lists per user.

Scoring delegates to :mod:`repro.serving.scorer`, which evaluates whole
``[users, catalogue]`` grids (using the model's item-side precompute
fast path when it has one) instead of a per-user Python scan; masking
and ranking delegate to :class:`repro.serving.index.TopKIndex`.  For a
long-lived process, :class:`repro.serving.service.RecommendationService`
adds caching and counters on top of the same machinery.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import RecDataset
from repro.models.base import RecommenderModel


def recommend(
    model: RecommenderModel,
    dataset: RecDataset,
    users: np.ndarray,
    top_k: int = 10,
    exclude_seen: bool = True,
    batch_items: int = 8192,
    scorer: Optional["BatchScorer"] = None,
) -> np.ndarray:
    """Top-k item ids per user, highest score first.

    Parameters
    ----------
    model:
        Any trained :class:`RecommenderModel`.
    dataset:
        Supplies the item universe, the encoding, and (when
        ``exclude_seen``) each user's interaction history.
    users:
        User ids to recommend for.
    top_k:
        List length; must not exceed the number of candidate items.
    exclude_seen:
        Drop items the user already interacted with (the usual setting
        for implicit feedback).
    batch_items:
        Pair-batch size used when the model has no grid fast path.
    scorer:
        Reuse a prebuilt :class:`~repro.serving.scorer.BatchScorer`
        (skips re-precomputing item state across calls).

    Returns
    -------
    ``int64 [len(users), top_k]`` ranked item ids.
    """
    from repro.serving.index import TopKIndex
    from repro.serving.scorer import BatchScorer

    users = np.asarray(users, dtype=np.int64)
    n_items = dataset.n_items
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    index = TopKIndex.for_dataset(dataset)  # shared, read-only use
    if exclude_seen:
        if top_k > n_items - index.max_seen():
            raise ValueError("top_k exceeds the number of unseen items")
    elif top_k > n_items:
        raise ValueError("top_k exceeds the number of items")

    if scorer is None:
        scorer = BatchScorer(model, dataset, batch_pairs=max(batch_items, n_items))
    out = np.empty((users.size, top_k), dtype=np.int64)
    chunk = 256  # bounds the [chunk, n_items] score block
    for start in range(0, users.size, chunk):
        block = users[start:start + chunk]
        scores = scorer.score(block)
        if exclude_seen:
            index.mask_seen(scores, block)
        out[start:start + chunk] = index.topk(scores, top_k)
    return out
