"""Incremental (online) model updates: warm-start fold-in training.

Batch training (:class:`repro.training.trainer.Trainer`) rebuilds a
model from scratch; this module keeps an already-trained model fresh as
interactions stream in.  Each arriving event triggers one small SGD
step restricted to the embedding rows the event touches — the model's
:meth:`~repro.models.base.RecommenderModel.fold_in_targets` hook names
them — while every dense parameter (MLPs, attention, CIN weights,
propagation transforms) stays frozen.  This is the classic *fold-in*
update: cheap (O(touched rows), not O(parameters)), local (only the
event entities' representations move), and deterministic (the negative
draws come from a dedicated seeded stream).

A periodic **full-refresh policy** bounds drift: after ``refresh_every``
ingested events the caller-supplied ``refresh_fn`` runs (typically a
full retrain on the accumulated :class:`~repro.data.streaming.InteractionLog`
snapshot), and the trainer's negative sampler is rebuilt from that
snapshot so sampled negatives respect everything ingested so far.

Determinism contract: for a fixed ``(model state, OnlineConfig, event
sequence)``, the sequence of parameter updates is byte-identical across
runs — fold-in draws negatives from its own ``default_rng(seed)``
stream, runs the model in eval mode (no dropout draws), and applies
plain masked SGD with no hidden state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.autograd.backend import (infer_backend, resolve_backend,
                                    use_backend)
from repro.data.dataset import RecDataset
from repro.data.sampling import NegativeSampler
from repro.data.streaming import InteractionLog
from repro.models.base import RecommenderModel
from repro.obs.metrics import MetricsRegistry
from repro.training.losses import bpr_loss, squared_loss

_OBJECTIVES = ("pointwise", "pairwise")
_SIDES = ("user", "item")


class FoldInDivergedError(RuntimeError):
    """A fold-in step produced a non-finite loss and was skipped.

    The model's parameters are untouched by the failed step, but the
    update stream is clearly unstable: lower ``OnlineConfig.lr`` /
    ``max_grad`` or refresh the model from a log snapshot.  Not a
    ``ValueError`` on purpose — transport layers map ``ValueError`` to
    client errors (HTTP 400), while divergence is server-side model
    degradation (HTTP 500).
    """


class ReadOnlyModelError(RuntimeError):
    """Fold-in targets a read-only (memory-mapped) parameter.

    Models rebuilt over ``load_artifact(..., mmap=True)`` views hold
    ``writeable=False`` arrays; an SGD step into them would die inside
    numpy with an opaque ``ValueError: assignment destination is
    read-only``.  This error replaces that with the actual remedy:
    load the artifact with ``mmap=False`` for online updates, or opt
    into ``OnlineConfig(on_readonly="copy")`` to privatize touched
    tables on first write.  A ``RuntimeError`` (not ``ValueError``) so
    transport layers report a server-side configuration fault (HTTP
    500), not client-input invalidity (400).
    """


@dataclass(frozen=True)
class OnlineConfig:
    """Hyper-parameters of the incremental update path.

    ``sides`` picks which representations fold-in may move:
    ``("user",)`` keeps item-side state (and therefore every untouched
    user's scores) bit-stable — the serving default, because it makes
    per-user cache invalidation exact — while ``("user", "item")``
    tracks drift on both sides, the prequential-replay default.

    ``max_grad`` clips each accumulated gradient element before the
    step.  Fold-in gradients are sum-scaled (batch-size-invariant per
    event), so a popular item appearing in many rows of one batch
    accumulates a large gradient; unclipped, dense streams can enter a
    positive feedback loop and blow the embeddings up to overflow.
    The clip bounds any single update without touching the (small)
    healthy-regime gradients.

    ``backend`` picks the autograd execution strategy for fold-in
    steps.  The default ``"auto"`` follows the model: float32
    parameters (fused training) keep the fused strategy, anything else
    stays on the float64 reference path — so a reference-trained
    model's fold-in numerics are untouched by the backend seam.

    ``on_readonly`` decides what happens when a fold-in target is a
    read-only array (a memory-mapped serving artifact).  ``"error"``
    (default) refuses at trainer construction with a
    :class:`ReadOnlyModelError` naming the remedy; ``"copy"``
    privatizes each touched table on its first write (copy-on-first-
    write) — the process keeps serving zero-copy for every table
    fold-in never touches, and pays one table copy for the ones it
    does.
    """

    lr: float = 0.05
    n_negatives: int = 2
    sides: tuple[str, ...] = ("user", "item")
    objective: str = "pointwise"
    max_grad: float = 1.0
    seed: int = 0
    refresh_every: int = 0
    backend: str = "auto"
    on_readonly: str = "error"

    def __post_init__(self):
        if self.backend != "auto":
            resolve_backend(self.backend)  # raises on unknown names
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.max_grad <= 0:
            raise ValueError("max_grad must be positive (use math.inf "
                             "to disable clipping)")
        if self.n_negatives < 0:
            raise ValueError("n_negatives must be non-negative")
        if self.objective not in _OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; options: {_OBJECTIVES}")
        if self.objective == "pairwise" and self.n_negatives == 0:
            raise ValueError("pairwise updates need at least one negative")
        unknown = set(self.sides) - set(_SIDES)
        if unknown or not self.sides:
            raise ValueError(
                f"sides must be a non-empty subset of {_SIDES}, got {self.sides}")
        if self.refresh_every < 0:
            raise ValueError("refresh_every must be non-negative")
        if self.on_readonly not in ("error", "copy"):
            raise ValueError(f"unknown on_readonly {self.on_readonly!r}; "
                             f"options: ('error', 'copy')")


@dataclass
class UpdateReport:
    """What one :meth:`IncrementalTrainer.update` call did."""

    events: int
    loss: float
    touched_users: np.ndarray = field(repr=False)
    touched_items: np.ndarray = field(repr=False)
    sides: tuple[str, ...] = ("user", "item")
    refreshed: bool = False

    @property
    def item_side_updated(self) -> bool:
        """Whether any item-side rows moved (callers invalidating
        per-user caches must flush everything when this is True)."""
        return "item" in self.sides or self.refreshed


class IncrementalTrainer:
    """Applies fold-in SGD steps to a trained model as events arrive.

    Parameters
    ----------
    model:
        A trained (warm-started) :class:`RecommenderModel` supporting
        ``fold_in_targets``; all 13 registry models do.
    dataset:
        The snapshot the model was trained on — supplies the negative
        sampler's membership structure and the feature encoding.
    config:
        :class:`OnlineConfig`; defaults are sensible for replay.
    log:
        Optional :class:`InteractionLog` to ingest events into
        (created from ``dataset`` when omitted).  The log is what the
        full-refresh policy retrains on.
    refresh_fn:
        ``refresh_fn(trainer)`` called after every
        ``config.refresh_every`` ingested events; typically runs a full
        retrain on ``trainer.log.snapshot()``.  After it returns, the
        negative sampler is rebuilt from the current log snapshot.
    """

    def __init__(
        self,
        model: RecommenderModel,
        dataset: RecDataset,
        config: Optional[OnlineConfig] = None,
        log: Optional[InteractionLog] = None,
        refresh_fn: Optional[Callable[["IncrementalTrainer"], None]] = None,
        registry=None,
    ):
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else OnlineConfig()
        self.log = log if log is not None else InteractionLog.from_dataset(dataset)
        self.refresh_fn = refresh_fn
        empty = np.empty(0, dtype=np.int64)
        targets = model.fold_in_targets(empty, empty, sides=self.config.sides)
        if not targets:
            raise ValueError(
                f"{type(model).__name__} exposes no fold-in targets for "
                f"sides={self.config.sides}; incremental updates unsupported")
        # Fail at construction, not on the first /update: a read-only
        # (mmapped) serving model cannot take in-place SGD steps.
        if (self.config.on_readonly == "error"
                and any(not p.data.flags.writeable for p, _ in targets)):
            raise ReadOnlyModelError(
                "serving artifact is read-only (memory-mapped parameters); "
                "load with mmap=False for online updates, or opt into "
                "OnlineConfig(on_readonly='copy') to privatize touched "
                "tables on first write")
        self._sampler = NegativeSampler(dataset, seed=self.config.seed)
        if self.config.backend == "auto":
            self._backend = infer_backend(model.parameters())
        else:
            self._backend = resolve_backend(self.config.backend)
        self._events_since_refresh = 0
        # Counters live on a metrics registry (a private one when none
        # is shared in) but stay readable as plain attributes via the
        # properties below — the public surface predates the registry.
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._m_events = registry.counter(
            "repro_online_events_total", "streamed interaction events ingested")
        self._m_updates = registry.counter(
            "repro_online_updates_total", "fold-in SGD steps applied")
        self._m_refreshes = registry.counter(
            "repro_online_refreshes_total", "full-refresh policy firings")
        self._m_step_seconds = registry.histogram(
            "repro_online_step_seconds", "wall time per fold-in step")
        self._m_loss = registry.gauge(
            "repro_online_loss", "loss of the last fold-in step")

    @property
    def events_seen(self) -> int:
        return int(self._m_events.value)

    @property
    def updates_applied(self) -> int:
        return int(self._m_updates.value)

    @property
    def refreshes(self) -> int:
        return int(self._m_refreshes.value)

    # ------------------------------------------------------------------
    def update(
        self,
        users: np.ndarray,
        items: np.ndarray,
        timestamps: Optional[np.ndarray] = None,
    ) -> UpdateReport:
        """Ingest a batch of events and fold them into the model.

        One masked SGD step on the batch: positives (label +1) against
        ``n_negatives`` freshly sampled uninteracted items each (label
        -1) under the squared loss, or BPR positive-vs-negative pairs
        for ``objective="pairwise"``.  Only the embedding rows named by
        the model's ``fold_in_targets`` move.  Events land in the log
        *before* the step runs — the observations are real whether or
        not the gradient step applies, so a failing step (e.g.
        :class:`FoldInDivergedError`) never leaves the log disagreeing
        with whatever the caller already recorded (a serving seen-item
        index, say).  The full-refresh policy fires when due.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be parallel 1-d arrays")
        if users.size == 0:
            raise ValueError("update called with no events")

        self.log.extend(users, items, timestamps)
        self._m_events.inc(int(users.size))
        self._events_since_refresh += users.size

        config = self.config
        step_start = time.perf_counter()
        negatives = self._draw_negatives(users, items)
        loss_value = self._step(users, items, negatives)
        self._m_step_seconds.observe(time.perf_counter() - step_start)
        self._m_loss.set(loss_value)
        self._m_updates.inc()

        refreshed = False
        if (config.refresh_every > 0
                and self._events_since_refresh >= config.refresh_every):
            if self.refresh_fn is not None:
                self.refresh_fn(self)
                refreshed = True
                if self.config.backend == "auto":
                    # A full retrain may have migrated the model's
                    # dtype (e.g. a fused-backend Trainer converts to
                    # float32); follow it.
                    self._backend = infer_backend(self.model.parameters())
            self._m_refreshes.inc()
            self._events_since_refresh = 0
            # Rebuild the sampler over everything ingested so far, so
            # future negatives respect the accumulated interactions.
            # The seed folds in the refresh count: deterministic, but a
            # fresh stream per epoch-of-life.
            self._sampler = NegativeSampler(
                self.log.snapshot(), seed=config.seed + self.refreshes)

        return UpdateReport(
            events=int(users.size),
            loss=loss_value,
            touched_users=np.unique(users),
            touched_items=np.unique(np.concatenate([items, negatives.ravel()])),
            sides=config.sides,
            refreshed=refreshed,
        )

    def _draw_negatives(self, users: np.ndarray,
                        items: np.ndarray) -> np.ndarray:
        """Sample per-event negatives, excluding each row's own positive.

        Excluding the positive matters here: a streamed event's item is
        typically unknown to the frozen membership, and drawing it as
        its own "negative" would exactly cancel the update for the
        event being learned ((u, i, +1) against (u, i, -1); zero BPR
        gradient).  Collisions with *other* previously streamed
        positives are the standard online approximation, healed by the
        refresh policy's sampler rebuild.
        """
        n_neg = self.config.n_negatives
        if not n_neg:
            return np.empty((users.size, 0), dtype=np.int64)
        return self._sampler.sample_for_users_excluding(users, items, n_neg)

    def _step(self, users: np.ndarray, items: np.ndarray,
              negatives: np.ndarray) -> float:
        """One masked SGD step; returns the batch loss."""
        model = self.model
        config = self.config
        n_neg = negatives.shape[1]
        # Eval mode: fold-in must not draw dropout masks — both for
        # determinism and because a single-batch update under dropout
        # is mostly noise.  Gradients still flow.
        was_training = model.training
        model.eval()
        try:
            with use_backend(self._backend):
                return self._step_inner(users, items, negatives, n_neg)
        finally:
            if was_training:
                model.train()

    def _step_inner(self, users: np.ndarray, items: np.ndarray,
                    negatives: np.ndarray, n_neg: int) -> float:
        """The step body, run under the resolved backend."""
        model = self.model
        config = self.config
        model.zero_grad()
        if config.objective == "pairwise":
            flat_users = np.repeat(users, n_neg)
            n_rows = flat_users.size
            loss = bpr_loss(
                model.score(flat_users, np.repeat(items, n_neg)),
                model.score(flat_users, negatives.reshape(-1)),
            )
        else:
            all_users = np.concatenate([users, np.repeat(users, n_neg)])
            all_items = np.concatenate([items, negatives.reshape(-1)])
            labels = np.concatenate(
                [np.ones(users.size), -np.ones(users.size * n_neg)])
            n_rows = all_users.size
            loss = squared_loss(model.score(all_users, all_items), labels)
        # Backprop the *sum* (mean x rows), not the mean: each event
        # must contribute a fixed-size step to its own rows no
        # matter how many events share the micro-batch, so the
        # effective per-event learning rate is batch-size-invariant
        # (a mean-reduced gradient would shrink fold-in by 1/B and
        # make large ingestion batches learn nothing).
        (loss * float(n_rows)).backward()
        loss_value = float(loss.item())
        if not np.isfinite(loss_value):
            # Refuse to touch the parameters with a non-finite
            # gradient (np.clip passes NaN through): the model
            # stays intact, only this update is lost.
            raise FoldInDivergedError(
                f"fold-in loss diverged ({loss_value}); lower "
                f"OnlineConfig.lr/max_grad or refresh the model "
                f"from a snapshot")
        # Negatives' item rows carry gradient too (they are pushed
        # down), so they count as touched items.  ``grad[rows]`` works
        # for dense gradients and SparseRowGrads alike (the latter
        # gather touched rows densely, absent rows read as zero).
        targets = model.fold_in_targets(
            users, np.concatenate([items, negatives.reshape(-1)]),
            sides=config.sides,
        )
        for param, rows in targets:
            grad = param.grad
            if grad is None or rows.size == 0:
                continue
            if not param.data.flags.writeable:
                if config.on_readonly != "copy":
                    # Normally unreachable (the constructor refuses),
                    # but a parameter rebound to an mmap view after
                    # construction must not crash with numpy's opaque
                    # "assignment destination is read-only".
                    raise ReadOnlyModelError(
                        "serving artifact is read-only (memory-mapped "
                        "parameters); load with mmap=False for online "
                        "updates, or opt into "
                        "OnlineConfig(on_readonly='copy')")
                # Copy-on-first-write: privatize this table, leaving
                # every untouched table zero-copy on the shared map.
                param.data = param.data.copy()
            param.data[rows] -= config.lr * np.clip(
                grad[rows], -config.max_grad, config.max_grad)
        model.zero_grad()
        return loss_value
