"""Mini-batch trainer for point-wise and pairwise objectives.

Mirrors the paper's setup (Section 4.4): Adam optimizer, batch size 256,
normal(0, 0.01) initialization (done by the models), squared loss on ±1
targets for point-wise models and BPR for the pairwise rankers, with
early stopping on a validation metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.autograd.backend import (DEFAULT_TRAINING_BACKEND, resolve_backend,
                                    use_backend)
from repro.autograd.optim import Adam, Optimizer, SGD
from repro.data.batching import minibatches
from repro.models.base import RecommenderModel
from repro.obs.metrics import MetricsRegistry
from repro.training.losses import bpr_loss, squared_loss

_OPTIMIZERS: dict[str, Callable[..., Optimizer]] = {
    "adam": Adam,
    "sgd": SGD,
}


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    ``backend`` selects the autograd execution strategy
    (:mod:`repro.autograd.backend`): ``"fused"`` (the default) trains in
    float32 with fused elementwise chains and sparse embedding
    gradients; ``"reference"`` is the original float64 engine,
    bit-identical to pre-backend training.
    """

    epochs: int = 10
    batch_size: int = 256
    lr: float = 0.01
    weight_decay: float = 0.0
    optimizer: str = "adam"
    seed: int = 0
    patience: int = 3
    min_delta: float = 1e-5
    verbose: bool = False
    backend: str = DEFAULT_TRAINING_BACKEND

    def __post_init__(self):
        if self.optimizer not in _OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; options: {sorted(_OPTIMIZERS)}"
            )
        resolve_backend(self.backend)  # raises on unknown names


@dataclass
class TrainResult:
    """Loss trajectory and early-stopping bookkeeping."""

    train_losses: list[float] = field(default_factory=list)
    valid_scores: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False


class Trainer:
    """Drives gradient-descent training of any :class:`RecommenderModel`."""

    def __init__(self, model: RecommenderModel, config: Optional[TrainConfig] = None,
                 registry=None):
        self.model = model
        self.config = config if config is not None else TrainConfig()
        # Convert the model to the backend's dtype *before* the
        # optimizer captures its state buffers — the optimizer asserts
        # shape/dtype agreement on every step.
        self._backend = resolve_backend(self.config.backend)
        model.to_dtype(self._backend.dtype)
        self._optimizer = _OPTIMIZERS[self.config.optimizer](
            list(model.parameters()),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed)
        # Per-epoch throughput/loss instrumentation (repro.obs): the
        # baseline the fused-backend work will be measured against.
        # One observation per epoch, so a private registry costs
        # nothing measurable when none is shared in.
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._m_epoch_seconds = registry.histogram(
            "repro_train_epoch_seconds", "wall time per training epoch",
            boundaries=tuple(10.0 ** (e / 4.0) for e in range(-12, 13)))
        self._m_epochs = registry.counter(
            "repro_train_epochs_total", "training epochs completed")
        self._m_instances = registry.counter(
            "repro_train_instances_total",
            "training instances processed (rows x epochs)")
        self._m_loss = registry.gauge(
            "repro_train_loss", "mean training loss of the last epoch")

    def _observe_epoch(self, seconds: float, instances: int,
                       loss: float) -> None:
        self._m_epoch_seconds.observe(seconds)
        self._m_epochs.inc()
        self._m_instances.inc(instances)
        self._m_loss.set(loss)

    # ------------------------------------------------------------------
    def fit_pointwise(
        self,
        users: np.ndarray,
        items: np.ndarray,
        labels: np.ndarray,
        validate: Optional[Callable[[RecommenderModel], float]] = None,
        higher_is_better: bool = False,
    ) -> TrainResult:
        """Train with the squared loss on (user, item, ±1 label) triples.

        ``validate`` returns a scalar score after each epoch; training
        stops when it fails to improve for ``patience`` epochs and the
        best parameters are restored.

        The instance set is static across epochs, so batches are scored
        through :meth:`~repro.models.base.RecommenderModel.batch_scorer`:
        feature models encode ``(users, items)`` once into the
        dataset's encoded-instance cache and every minibatch slices the
        cached arrays.  This is a pure speedup — the per-batch scores,
        losses, and updates are byte-identical to encoding each
        minibatch from scratch (same seed ⇒ same ``TrainResult`` and
        final parameters, with or without the cache).
        """
        users = np.asarray(users)
        items = np.asarray(items)
        labels = np.asarray(labels, dtype=self._backend.dtype)
        if users.size == 0:
            raise ValueError(
                "fit_pointwise called with an empty training set "
                "(no batches to train on)")
        result = TrainResult()
        best_state: Optional[dict] = None
        best_score = -np.inf if higher_is_better else np.inf
        stale = 0
        score_batch = self.model.batch_scorer(users, items)

        with use_backend(self._backend):
            for epoch in range(self.config.epochs):
                epoch_start = time.perf_counter()
                self.model.train()
                losses = []
                for batch in minibatches(users.size, self.config.batch_size, rng=self._rng):
                    self._optimizer.zero_grad()
                    scores = score_batch(batch)
                    loss = squared_loss(scores, labels[batch])
                    loss.backward()
                    self._optimizer.step()
                    losses.append(loss.item())
                result.train_losses.append(float(np.mean(losses)))
                self._observe_epoch(time.perf_counter() - epoch_start,
                                    int(users.size), result.train_losses[-1])
                if self.config.verbose:
                    print(f"epoch {epoch}: loss={result.train_losses[-1]:.4f}")

                if validate is None:
                    continue
                score = float(validate(self.model))
                result.valid_scores.append(score)
                improved = (
                    score > best_score + self.config.min_delta
                    if higher_is_better
                    else score < best_score - self.config.min_delta
                )
                if improved:
                    best_score = score
                    best_state = self.model.state_dict()
                    result.best_epoch = epoch
                    stale = 0
                else:
                    stale += 1
                    if stale > self.config.patience:
                        result.stopped_early = True
                        break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return result

    # ------------------------------------------------------------------
    def fit_pairwise(
        self,
        users: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
        validate: Optional[Callable[[RecommenderModel], float]] = None,
        higher_is_better: bool = True,
    ) -> TrainResult:
        """Train with BPR on (user, positive, negative) triples.

        As in :meth:`fit_pointwise`, the (user, positive) and (user,
        negative) instance sets are pre-encoded once through
        :meth:`~repro.models.base.RecommenderModel.batch_scorer` and
        sliced per minibatch — byte-identical results, one encoding
        pass per fit instead of one per batch per epoch.
        """
        users = np.asarray(users)
        positives = np.asarray(positives)
        negatives = np.asarray(negatives)
        if users.size == 0:
            raise ValueError(
                "fit_pairwise called with an empty training set "
                "(no batches to train on)")
        result = TrainResult()
        best_state: Optional[dict] = None
        best_score = -np.inf if higher_is_better else np.inf
        stale = 0
        score_positive = self.model.batch_scorer(users, positives)
        score_negative = self.model.batch_scorer(users, negatives)

        with use_backend(self._backend):
            for epoch in range(self.config.epochs):
                epoch_start = time.perf_counter()
                self.model.train()
                losses = []
                for batch in minibatches(users.size, self.config.batch_size, rng=self._rng):
                    self._optimizer.zero_grad()
                    pos_scores = score_positive(batch)
                    neg_scores = score_negative(batch)
                    loss = bpr_loss(pos_scores, neg_scores)
                    loss.backward()
                    self._optimizer.step()
                    losses.append(loss.item())
                result.train_losses.append(float(np.mean(losses)))
                self._observe_epoch(time.perf_counter() - epoch_start,
                                    int(users.size), result.train_losses[-1])
                if self.config.verbose:
                    print(f"epoch {epoch}: bpr={result.train_losses[-1]:.4f}")

                if validate is None:
                    continue
                score = float(validate(self.model))
                result.valid_scores.append(score)
                improved = (
                    score > best_score + self.config.min_delta
                    if higher_is_better
                    else score < best_score - self.config.min_delta
                )
                if improved:
                    best_score = score
                    best_state = self.model.state_dict()
                    result.best_epoch = epoch
                    stale = 0
                else:
                    stale += 1
                    if stale > self.config.patience:
                        result.stopped_early = True
                        break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return result
