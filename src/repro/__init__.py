"""GML-FM: factorization machines with generalized metric learning.

A from-scratch reproduction of Guo et al., "Enhancing Factorization
Machines with Generalized Metric Learning" (TKDE / ICDE 2023,
arXiv:2006.11600).  See README.md for a tour and DESIGN.md for the
system inventory.

The most common entry points are re-exported here::

    from repro import GMLFM, GMLFM_MD, GMLFM_DNN, make_dataset, Trainer
"""

from repro.core.gml_fm import GMLFM, GMLFM_DNN, GMLFM_MD
from repro.data.dataset import RecDataset
from repro.data.synthetic import make_dataset
from repro.training.trainer import TrainConfig, Trainer

__version__ = "1.0.0"

__all__ = [
    "GMLFM",
    "GMLFM_MD",
    "GMLFM_DNN",
    "RecDataset",
    "make_dataset",
    "Trainer",
    "TrainConfig",
    "__version__",
]
