"""GML-FM: factorization machines with generalized metric learning.

A from-scratch reproduction of Guo et al., "Enhancing Factorization
Machines with Generalized Metric Learning" (TKDE / ICDE 2023,
arXiv:2006.11600).  See README.md for a tour, docs/architecture.md for
the subsystem pipelines and docs/cli.md for the command line.

Subsystem map::

    autograd/     reverse-mode tensors, ops, optimizers
    data/         datasets, encodings, splits, sampling
    core/         GML-FM itself (distances, closed forms)
    models/       baseline recommenders (MF ... xDeepFM)
    training/     trainers, losses, metrics, evaluation protocols
    experiments/  paper tables and figures (registry, runner)
    analysis/     embeddings, cold-start, t-SNE case studies
    serving/      online serving (artifacts, batch scorer, cache,
                  RecommendationService, `repro serve` HTTP endpoint)

The most common entry points are re-exported here::

    from repro import GMLFM, GMLFM_MD, GMLFM_DNN, make_dataset, Trainer
    from repro import RecommendationService, save_artifact, load_artifact
"""

from repro.core.gml_fm import GMLFM, GMLFM_DNN, GMLFM_MD
from repro.data.dataset import RecDataset
from repro.data.synthetic import make_dataset
from repro.serving import RecommendationService, load_artifact, save_artifact
from repro.training.trainer import TrainConfig, Trainer

__version__ = "1.0.0"

__all__ = [
    "GMLFM",
    "GMLFM_MD",
    "GMLFM_DNN",
    "RecDataset",
    "make_dataset",
    "Trainer",
    "TrainConfig",
    "RecommendationService",
    "save_artifact",
    "load_artifact",
    "__version__",
]
