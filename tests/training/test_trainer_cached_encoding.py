"""Trainer routing through the encoded-instance cache is a pure speedup.

These tests replicate the pre-cache training loop (encode every
minibatch from scratch through ``model.score``) and assert the cached
path produces byte-identical loss trajectories and final parameters —
the determinism contract of
:meth:`repro.models.base.FeatureRecommender.batch_scorer`.
"""

import numpy as np

from repro.autograd.optim import Adam
from repro.data.batching import minibatches
from repro.data.sampling import NegativeSampler
from repro.models.fm import FactorizationMachine
from repro.training.losses import bpr_loss, squared_loss
from repro.training.trainer import TrainConfig, Trainer
from tests.helpers import make_tiny_dataset

# Pinned to the reference backend: the legacy loop below replicates the
# seed-era float64 engine, and the cache contract is "byte-identical
# given the same backend".
CONFIG = TrainConfig(epochs=3, batch_size=16, lr=0.05, weight_decay=1e-4,
                     seed=0, backend="reference")


def _make(ds):
    return FactorizationMachine(ds, k=4, rng=np.random.default_rng(0))


def _training_set(ds):
    sampler = NegativeSampler(ds, seed=0)
    rows = np.arange(ds.n_interactions)
    return sampler.build_pointwise_training_set(rows, n_neg=2)


def _legacy_fit_pointwise(model, users, items, labels, config):
    """The seed-era loop: per-minibatch encoding via ``model.score``."""
    optimizer = Adam(list(model.parameters()), lr=config.lr,
                     weight_decay=config.weight_decay)
    rng = np.random.default_rng(config.seed)
    losses = []
    for _epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch in minibatches(users.size, config.batch_size, rng=rng):
            optimizer.zero_grad()
            loss = squared_loss(model.score(users[batch], items[batch]),
                                labels[batch])
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)))
    return losses


def _legacy_fit_pairwise(model, users, positives, negatives, config):
    optimizer = Adam(list(model.parameters()), lr=config.lr,
                     weight_decay=config.weight_decay)
    rng = np.random.default_rng(config.seed)
    losses = []
    for _epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch in minibatches(users.size, config.batch_size, rng=rng):
            optimizer.zero_grad()
            loss = bpr_loss(model.score(users[batch], positives[batch]),
                            model.score(users[batch], negatives[batch]))
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)))
    return losses


def test_pointwise_cached_path_is_byte_identical():
    ds = make_tiny_dataset(n_users=15, n_items=18)
    users, items, labels = _training_set(ds)

    cached_model = _make(ds)
    result = Trainer(cached_model, CONFIG).fit_pointwise(users, items, labels)

    legacy_model = _make(ds)
    legacy_losses = _legacy_fit_pointwise(legacy_model, users, items,
                                          labels, CONFIG)

    assert result.train_losses == legacy_losses
    for name, value in cached_model.state_dict().items():
        np.testing.assert_array_equal(
            value, legacy_model.state_dict()[name], err_msg=name)


def test_pairwise_cached_path_is_byte_identical():
    ds = make_tiny_dataset(n_users=15, n_items=18)
    sampler = NegativeSampler(ds, seed=0)
    users, positives, negatives = sampler.build_pairwise_training_set(
        np.arange(ds.n_interactions), n_neg=2)

    cached_model = _make(ds)
    result = Trainer(cached_model, CONFIG).fit_pairwise(users, positives, negatives)

    legacy_model = _make(ds)
    legacy_losses = _legacy_fit_pairwise(legacy_model, users, positives,
                                         negatives, CONFIG)

    assert result.train_losses == legacy_losses
    for name, value in cached_model.state_dict().items():
        np.testing.assert_array_equal(
            value, legacy_model.state_dict()[name], err_msg=name)


def test_fit_populates_the_dataset_cache():
    ds = make_tiny_dataset(n_users=15, n_items=18)
    users, items, labels = _training_set(ds)
    assert ds.encoded_cache_stats()["entries"] == 0
    Trainer(_make(ds), CONFIG).fit_pointwise(users, items, labels)
    stats = ds.encoded_cache_stats()
    # One build for the training set, no rebuild per epoch.
    assert stats["entries"] == 1
    assert stats["misses"] == 1


def test_predict_caches_recurring_sets_only():
    ds = make_tiny_dataset(n_users=15, n_items=18)
    users, items, _ = _training_set(ds)
    model = _make(ds)
    # First sighting: ghost only — one-shot prediction sets never earn
    # a cache slot (nor a full-set encoding).
    first = model.predict(users, items)
    assert ds.encoded_cache_stats()["entries"] == 0
    # Second sighting: the set has recurred, so it is admitted ...
    second = model.predict(users, items)
    assert ds.encoded_cache_stats()["entries"] == 1
    hits_before = ds.encoded_cache_stats()["hits"]
    # ... and the third call is served from the cache.
    third = model.predict(users, items)
    assert ds.encoded_cache_stats()["hits"] > hits_before
    np.testing.assert_array_equal(first, second)
    np.testing.assert_array_equal(first, third)
