"""Tests for the squared and BPR losses."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.training.losses import bpr_loss, squared_loss
from tests.helpers import assert_grad_matches


class TestSquaredLoss:
    def test_zero_when_exact(self):
        pred = Tensor(np.array([1.0, -1.0]))
        assert squared_loss(pred, np.array([1.0, -1.0])).item() == 0.0

    def test_value(self):
        pred = Tensor(np.array([2.0, 0.0]))
        loss = squared_loss(pred, np.array([1.0, -1.0]))
        assert loss.item() == pytest.approx((1.0 + 1.0) / 2.0)

    def test_gradient(self):
        pred = Tensor(np.array([0.3, -0.7, 1.4]), requires_grad=True)
        targets = np.array([1.0, -1.0, 1.0])
        assert_grad_matches(lambda: squared_loss(pred, targets), pred)

    def test_gradient_direction(self):
        pred = Tensor(np.array([2.0]), requires_grad=True)
        squared_loss(pred, np.array([1.0])).backward()
        assert pred.grad[0] > 0  # over-prediction pushes score down


class TestBPRLoss:
    def test_positive_margin_gives_small_loss(self):
        pos = Tensor(np.array([5.0, 5.0]))
        neg = Tensor(np.array([-5.0, -5.0]))
        assert bpr_loss(pos, neg).item() < 0.01

    def test_negative_margin_gives_large_loss(self):
        pos = Tensor(np.array([-5.0]))
        neg = Tensor(np.array([5.0]))
        assert bpr_loss(pos, neg).item() > 5.0

    def test_zero_margin(self):
        pos = Tensor(np.array([0.0]))
        neg = Tensor(np.array([0.0]))
        assert bpr_loss(pos, neg).item() == pytest.approx(np.log(2.0), rel=1e-6)

    def test_gradient(self):
        pos = Tensor(np.array([0.4, -0.2]), requires_grad=True)
        neg = Tensor(np.array([0.1, 0.3]), requires_grad=True)
        assert_grad_matches(lambda: bpr_loss(pos, neg), pos, atol=1e-5)
        assert_grad_matches(lambda: bpr_loss(pos, neg), neg, atol=1e-5)

    def test_stable_for_extreme_margins(self):
        pos = Tensor(np.array([1000.0]))
        neg = Tensor(np.array([-1000.0]))
        assert np.isfinite(bpr_loss(pos, neg).item())
