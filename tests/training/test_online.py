"""IncrementalTrainer: fold-in locality, determinism, refresh policy."""

import numpy as np
import pytest

from repro.experiments.registry import RATING_MODELS, TOPN_MODELS, build_model
from repro.models.base import RecommenderModel
from repro.training.online import (
    FoldInDivergedError,
    IncrementalTrainer,
    OnlineConfig,
)
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.streaming

ALL_MODELS = sorted(set(RATING_MODELS) | set(TOPN_MODELS))


def _build(name, dataset, seed=0):
    return build_model(name, dataset, k=4, seed=seed,
                       train_users=dataset.users, train_items=dataset.items)


@pytest.fixture
def dataset():
    return make_tiny_dataset(seed=0)


@pytest.fixture
def events(dataset):
    return dataset.users[:6].copy(), dataset.items[:6].copy()


class TestFoldInTargets:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_every_registry_model_exposes_targets(self, name, dataset):
        model = _build(name, dataset)
        empty = np.empty(0, dtype=np.int64)
        targets = model.fold_in_targets(empty, empty)
        assert targets, f"{name} must support fold-in"
        for param, rows in targets:
            assert rows.size == 0
            assert param.requires_grad

    def test_base_model_opts_out(self):
        assert RecommenderModel().fold_in_targets(
            np.array([0]), np.array([0])) == []

    def test_sides_restrict_targets(self, dataset):
        model = _build("MF", dataset)
        users = np.array([1, 2])
        items = np.array([3, 4])
        names = {id(p): n for n, p in model.named_parameters()}
        user_only = {names[id(p)] for p, _ in
                     model.fold_in_targets(users, items, sides=("user",))}
        assert user_only == {"user_factors.weight", "user_bias.weight"}
        item_only = {names[id(p)] for p, _ in
                     model.fold_in_targets(users, items, sides=("item",))}
        assert item_only == {"item_factors.weight", "item_bias.weight"}


class TestIncrementalUpdate:
    @pytest.mark.parametrize("name", ["MF", "LibFM", "NGCF"])
    def test_update_touches_only_event_rows(self, name, dataset, events):
        users, items = events
        model = _build(name, dataset)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        trainer = IncrementalTrainer(
            model, dataset, OnlineConfig(seed=5, n_negatives=0))
        trainer.update(users, items)
        after = model.state_dict()
        touched_rows = {}
        for param, rows in model.fold_in_targets(users, items):
            for pname, p in model.named_parameters():
                if p is param:
                    touched_rows[pname] = rows
        assert touched_rows
        for pname in before:
            if pname not in touched_rows:
                np.testing.assert_array_equal(
                    before[pname], after[pname],
                    err_msg=f"{pname} must stay frozen")
            else:
                rows = touched_rows[pname]
                mask = np.ones(before[pname].shape[0], dtype=bool)
                mask[rows] = False
                np.testing.assert_array_equal(
                    before[pname][mask], after[pname][mask],
                    err_msg=f"untouched rows of {pname} must stay frozen")
                assert not np.array_equal(before[pname][rows],
                                          after[pname][rows])

    def test_updates_are_byte_reproducible(self, dataset, events):
        users, items = events
        states = []
        for _ in range(2):
            model = _build("GML-FMmd", dataset)
            trainer = IncrementalTrainer(model, dataset, OnlineConfig(seed=9))
            for start in range(0, users.size, 2):
                trainer.update(users[start:start + 2], items[start:start + 2])
            states.append(model.state_dict())
        for key in states[0]:
            np.testing.assert_array_equal(states[0][key], states[1][key])

    def test_seed_changes_the_update(self, dataset, events):
        users, items = events
        results = []
        for seed in (0, 1):
            model = _build("MF", dataset)
            IncrementalTrainer(model, dataset,
                               OnlineConfig(seed=seed)).update(users, items)
            results.append(model.state_dict())
        assert any(not np.array_equal(results[0][k], results[1][k])
                   for k in results[0])

    def test_pairwise_objective(self, dataset, events):
        users, items = events
        model = _build("BPR-MF", dataset)
        trainer = IncrementalTrainer(
            model, dataset, OnlineConfig(objective="pairwise", seed=2))
        report = trainer.update(users, items)
        assert report.events == users.size
        assert np.isfinite(report.loss)

    def test_events_land_in_the_log(self, dataset, events):
        users, items = events
        model = _build("MF", dataset)
        trainer = IncrementalTrainer(model, dataset, OnlineConfig(seed=0))
        base = trainer.log.watermark
        trainer.update(users, items)
        assert trainer.log.watermark == base + users.size
        np.testing.assert_array_equal(trainer.log.users[-users.size:], users)

    def test_eval_mode_is_restored(self, dataset, events):
        users, items = events
        model = _build("NFM", dataset)  # has dropout layers
        trainer = IncrementalTrainer(model, dataset, OnlineConfig(seed=0))
        model.train()
        trainer.update(users, items)
        assert model.training
        model.eval()
        trainer.update(users, items)
        assert not model.training

    def test_training_negatives_never_collide_with_their_positive(
            self, dataset):
        """A streamed item unknown to the frozen membership must not be
        drawn as its own negative — that would cancel the update."""
        model = _build("MF", dataset)
        trainer = IncrementalTrainer(
            model, dataset, OnlineConfig(seed=0, n_negatives=3))
        membership = dataset.membership()
        users = dataset.users[:10]
        # Worst case: every event item is uninteracted, so the sampler
        # considers it a valid negative for that user.
        items = membership.kth_free(users, np.zeros(users.size, dtype=np.int64))
        for _ in range(5):
            negatives = trainer._draw_negatives(users, items)
            assert not (negatives == items[:, None]).any()

    def test_gradient_clipping_bounds_the_step(self, dataset, events):
        """One update's row delta can never exceed lr * max_grad."""
        users, items = events
        model = _build("MF", dataset)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        config = OnlineConfig(lr=0.5, max_grad=0.01, seed=0)
        IncrementalTrainer(model, dataset, config).update(users, items)
        for key, after in model.state_dict().items():
            assert np.abs(after - before[key]).max() <= (
                config.lr * config.max_grad + 1e-12)

    def test_diverged_loss_raises_without_corrupting_params(self, dataset,
                                                            events):
        users, items = events
        model = _build("MF", dataset)
        # Force a non-finite loss: squared loss on astronomically large
        # scores overflows float64.
        model.user_factors.weight.data[:] = 1e200
        before = {k: v.copy() for k, v in model.state_dict().items()}
        trainer = IncrementalTrainer(model, dataset, OnlineConfig(seed=0))
        watermark = trainer.log.watermark
        with np.errstate(over="ignore", invalid="ignore"), \
                pytest.raises(FoldInDivergedError, match="diverged"):
            trainer.update(users, items)
        # Not a ValueError: transports map ValueError to client errors,
        # and divergence is server-side degradation.
        assert not issubclass(FoldInDivergedError, ValueError)
        # The observations are real even though the step failed: the
        # log must stay consistent with any caller-side seen index.
        assert trainer.log.watermark == watermark + users.size
        for key, after in model.state_dict().items():
            np.testing.assert_array_equal(before[key], after)

    def test_rejects_unsupported_model(self, dataset):
        with pytest.raises(ValueError, match="fold-in"):
            IncrementalTrainer(RecommenderModel(), dataset)

    def test_rejects_empty_update(self, dataset):
        trainer = IncrementalTrainer(_build("MF", dataset), dataset)
        with pytest.raises(ValueError, match="no events"):
            trainer.update(np.empty(0, dtype=np.int64),
                           np.empty(0, dtype=np.int64))


class TestRefreshPolicy:
    def test_refresh_fires_every_n_events(self, dataset):
        model = _build("MF", dataset)
        calls = []
        trainer = IncrementalTrainer(
            model, dataset, OnlineConfig(seed=0, refresh_every=4),
            refresh_fn=lambda t: calls.append(t.events_seen))
        users, items = dataset.users[:2], dataset.items[:2]
        reports = [trainer.update(users, items) for _ in range(5)]
        # 10 events with refresh_every=4: refresh after events 4 and 8.
        assert calls == [4, 8]
        assert [r.refreshed for r in reports] == [False, True, False, True, False]
        assert trainer.refreshes == 2

    def test_refresh_rebuilds_the_sampler_from_the_log(self, dataset):
        model = _build("MF", dataset)
        trainer = IncrementalTrainer(
            model, dataset, OnlineConfig(seed=0, refresh_every=2),
            refresh_fn=lambda t: None)
        before = trainer._sampler
        trainer.update(dataset.users[:2], dataset.items[:2])
        after = trainer._sampler
        assert after is not before
        assert after.dataset.n_interactions == trainer.log.watermark


class TestOnlineConfig:
    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.0},
        {"n_negatives": -1},
        {"objective": "ranking"},
        {"objective": "pairwise", "n_negatives": 0},
        {"sides": ()},
        {"sides": ("user", "catalogue")},
        {"refresh_every": -5},
        {"max_grad": 0.0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)
