"""Tests for model persistence and the top-k recommendation API."""

import numpy as np
import pytest

from repro.core.gml_fm import GMLFM_DNN
from repro.models import MF
from repro.models.fm import FactorizationMachine
from repro.training.persistence import load_model, save_model
from repro.training.recommend import recommend
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=15, n_items=25)


class TestPersistence:
    def test_roundtrip_preserves_predictions(self, ds, tmp_path):
        model = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(0))
        before = model.predict(ds.users[:10], ds.items[:10])
        path = str(tmp_path / "model.npz")
        save_model(model, path)

        fresh = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(99))
        assert not np.allclose(fresh.predict(ds.users[:10], ds.items[:10]), before)
        load_model(fresh, path)
        np.testing.assert_allclose(
            fresh.predict(ds.users[:10], ds.items[:10]), before
        )

    def test_shape_mismatch_raises(self, ds, tmp_path):
        model = FactorizationMachine(ds, k=8, rng=np.random.default_rng(0))
        path = str(tmp_path / "fm.npz")
        save_model(model, path)
        other = FactorizationMachine(ds, k=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            load_model(other, path)

    def test_missing_parameter_raises(self, ds, tmp_path):
        fm = FactorizationMachine(ds, k=8, rng=np.random.default_rng(0))
        path = str(tmp_path / "fm.npz")
        save_model(fm, path)
        gml = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            load_model(gml, path)


class TestRecommend:
    def test_shape_and_range(self, ds):
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        out = recommend(model, ds, np.array([0, 1, 2]), top_k=5)
        assert out.shape == (3, 5)
        assert out.min() >= 0 and out.max() < ds.n_items

    def test_no_duplicates_in_list(self, ds):
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        out = recommend(model, ds, np.array([0]), top_k=10)
        assert len(np.unique(out[0])) == 10

    def test_excludes_seen_items(self, ds):
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        positives = ds.positives_by_user()
        out = recommend(model, ds, np.arange(5), top_k=5, exclude_seen=True)
        for row, user in enumerate(range(5)):
            assert not positives[user].intersection(out[row].tolist())

    def test_include_seen_allows_positives(self, ds):
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        # Push one seen item's score very high for user 0.
        target = next(iter(ds.positives_by_user()[0]))
        model.item_bias.weight.data[target] = 100.0
        out = recommend(model, ds, np.array([0]), top_k=3, exclude_seen=False)
        assert target in out[0]

    def test_ranked_by_score(self, ds):
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        out = recommend(model, ds, np.array([3]), top_k=8, exclude_seen=False)
        scores = model.predict(np.full(8, 3), out[0])
        assert np.all(np.diff(scores) <= 1e-12)

    def test_top_k_validation(self, ds):
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            recommend(model, ds, np.array([0]), top_k=0)
        with pytest.raises(ValueError):
            recommend(model, ds, np.array([0]), top_k=ds.n_items + 1,
                      exclude_seen=False)

    def test_works_with_feature_model(self, ds):
        model = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(0))
        out = recommend(model, ds, np.array([0, 1]), top_k=4)
        assert out.shape == (2, 4)
