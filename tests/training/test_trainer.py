"""Tests for the Trainer: convergence, early stopping, both objectives."""

import numpy as np
import pytest

from repro.data.sampling import NegativeSampler
from repro.models import MF, BPRMF
from repro.models.fm import FactorizationMachine
from repro.training.trainer import TrainConfig, Trainer
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


@pytest.fixture(scope="module")
def pointwise_data(ds):
    sampler = NegativeSampler(ds, seed=0)
    return sampler.build_pointwise_training_set(np.arange(ds.n_interactions), n_neg=1)


class TestConfig:
    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            TrainConfig(optimizer="lbfgs")

    def test_sgd_optimizer_accepted(self, ds, pointwise_data):
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=2, optimizer="sgd", lr=0.01))
        users, items, labels = pointwise_data
        result = trainer.fit_pointwise(users, items, labels)
        assert len(result.train_losses) == 2


class TestPointwise:
    def test_loss_decreases(self, ds, pointwise_data):
        model = FactorizationMachine(ds, k=8, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=15, lr=0.03, seed=0))
        users, items, labels = pointwise_data
        result = trainer.fit_pointwise(users, items, labels)
        assert result.train_losses[-1] < result.train_losses[0] * 0.7

    def test_reproducible_given_seed(self, ds, pointwise_data):
        users, items, labels = pointwise_data

        def run():
            model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(5))
            Trainer(model, TrainConfig(epochs=3, lr=0.02, seed=9)).fit_pointwise(
                users, items, labels
            )
            return model.predict(users[:10], items[:10])

        np.testing.assert_allclose(run(), run())

    def test_early_stopping_restores_best(self, ds, pointwise_data):
        users, items, labels = pointwise_data
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        calls = []

        def validate(m):
            # Score improves then sharply degrades -> must stop + restore.
            calls.append(len(calls))
            return [5.0, 3.0, 1.0, 7.0, 8.0, 9.0, 10.0, 11.0][len(calls) - 1]

        trainer = Trainer(model, TrainConfig(epochs=8, lr=0.02, patience=2, seed=0))
        result = trainer.fit_pointwise(users, items, labels, validate=validate,
                                       higher_is_better=False)
        assert result.stopped_early
        assert result.best_epoch == 2
        assert len(result.valid_scores) < 8

    def test_early_stopping_higher_is_better(self, ds, pointwise_data):
        users, items, labels = pointwise_data
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        scores = iter([0.1, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01])
        trainer = Trainer(model, TrainConfig(epochs=8, lr=0.02, patience=2, seed=0))
        result = trainer.fit_pointwise(
            users, items, labels,
            validate=lambda m: next(scores), higher_is_better=True,
        )
        assert result.stopped_early
        assert result.best_epoch == 1

    def test_best_state_restored_parameters(self, ds, pointwise_data):
        users, items, labels = pointwise_data
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        snapshots = []

        def validate(m):
            snapshots.append(m.state_dict())
            return float(len(snapshots))  # strictly worsening RMSE-style

        trainer = Trainer(model, TrainConfig(epochs=6, lr=0.05, patience=1, seed=0))
        trainer.fit_pointwise(users, items, labels, validate=validate,
                              higher_is_better=False)
        # First epoch was best; parameters must match that snapshot.
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, snapshots[0][name])


class TestPairwise:
    def test_bpr_loss_decreases(self, ds):
        sampler = NegativeSampler(ds, seed=0)
        users, positives, negatives = sampler.build_pairwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        model = BPRMF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=15, lr=0.05, seed=0))
        result = trainer.fit_pairwise(users, positives, negatives)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_pairwise_early_stopping(self, ds):
        sampler = NegativeSampler(ds, seed=0)
        users, positives, negatives = sampler.build_pairwise_training_set(
            np.arange(ds.n_interactions), n_neg=1
        )
        model = BPRMF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        scores = iter([0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01])
        trainer = Trainer(model, TrainConfig(epochs=8, lr=0.02, patience=1, seed=0))
        result = trainer.fit_pairwise(
            users, positives, negatives,
            validate=lambda m: next(scores), higher_is_better=True,
        )
        assert result.stopped_early


class TestEmptyTrainingSet:
    def test_pointwise_empty_raises(self, ds):
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=3, seed=0))
        empty = np.array([], dtype=np.int64)
        # The seed recorded float(np.mean([])) -> NaN losses (plus a
        # RuntimeWarning); an empty training set must fail loudly.
        with pytest.raises(ValueError, match="empty training set"):
            trainer.fit_pointwise(empty, empty, empty.astype(np.float64))

    def test_pairwise_empty_raises(self, ds):
        model = BPRMF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=3, seed=0))
        empty = np.array([], dtype=np.int64)
        with pytest.raises(ValueError, match="empty training set"):
            trainer.fit_pairwise(empty, empty, empty)


class TestTopNValidationCallback:
    def test_fit_with_grid_validator(self, ds):
        from repro.training.evaluation import (
            make_topn_validator,
            prepare_topn_protocol,
        )

        train_index, test_users, _test_items, candidates = (
            prepare_topn_protocol(ds, n_candidates=9, seed=0))
        view = ds.subset(train_index)
        sampler = NegativeSampler(view, seed=0)
        users, items, labels = sampler.build_pointwise_training_set(
            np.arange(view.n_interactions), n_neg=1)
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=3, lr=0.05, seed=0))
        validate = make_topn_validator(ds, test_users, candidates)
        result = trainer.fit_pointwise(users, items, labels,
                                       validate=validate,
                                       higher_is_better=True)
        assert len(result.valid_scores) == len(result.train_losses)
        assert all(0.0 <= s <= 1.0 for s in result.valid_scores)
        # Validation must leave the model trainable for the next epoch.
        assert model.training
