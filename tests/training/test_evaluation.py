"""Tests for the paper's evaluation protocols."""

import numpy as np
import pytest

from repro.experiments.registry import RATING_MODELS, TOPN_MODELS, build_model
from repro.models import MF
from repro.training.evaluation import (
    build_rating_instances,
    evaluate_rating,
    evaluate_topn,
    evaluate_topn_grid,
    make_topn_validator,
    prepare_topn_protocol,
)
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


class TestRatingInstances:
    def test_counts(self, ds):
        instances = build_rating_instances(ds, n_negatives=2, seed=0)
        assert instances.users.size == 3 * ds.n_interactions
        assert (instances.labels == 1).sum() == ds.n_interactions

    def test_split_partitions(self, ds):
        instances = build_rating_instances(ds, seed=0)
        merged = np.concatenate([instances.train, instances.valid, instances.test])
        assert len(np.unique(merged)) == instances.users.size

    def test_split_ratios(self, ds):
        instances = build_rating_instances(ds, seed=0)
        n = instances.users.size
        assert abs(instances.train.size / n - 0.7) < 0.02
        assert abs(instances.valid.size / n - 0.2) < 0.02

    def test_split_accessor(self, ds):
        instances = build_rating_instances(ds, seed=0)
        users, items, labels = instances.split("test")
        assert users.size == instances.test.size

    def test_reproducible(self, ds):
        a = build_rating_instances(ds, seed=3)
        b = build_rating_instances(ds, seed=3)
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.train, b.train)

    def test_negatives_are_uninteracted(self, ds):
        instances = build_rating_instances(ds, seed=0)
        positives = ds.positives_by_user()
        negative_rows = instances.labels == -1
        for u, i in zip(instances.users[negative_rows][:100],
                        instances.items[negative_rows][:100]):
            assert int(i) not in positives[u]


class TestEvaluateRating:
    def test_perfect_oracle_gets_zero_rmse(self, ds):
        instances = build_rating_instances(ds, seed=0)

        class Oracle:
            def __init__(self, inst):
                self._lookup = {
                    (u, i): y for u, i, y in zip(inst.users, inst.items, inst.labels)
                }

            def predict(self, users, items):
                return np.array([self._lookup[(u, i)] for u, i in zip(users, items)])

        result = evaluate_rating(Oracle(instances), instances)
        assert result.test_rmse == 0.0
        assert result.valid_rmse == 0.0

    def test_constant_zero_rmse_is_one(self, ds):
        instances = build_rating_instances(ds, seed=0)

        class Zero:
            def predict(self, users, items):
                return np.zeros(len(users))

        result = evaluate_rating(Zero(), instances)
        assert result.test_rmse == pytest.approx(1.0)

    def test_untrained_model_evaluates(self, ds):
        instances = build_rating_instances(ds, seed=0)
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        result = evaluate_rating(model, instances)
        # Near-zero init predicts ~0 -> RMSE near 1 on ±1 labels.
        assert 0.9 < result.test_rmse < 1.1


class TestTopNProtocol:
    def test_prepare_shapes(self, ds):
        train_index, test_users, test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        assert candidates.shape == (test_users.size, 10)
        np.testing.assert_array_equal(candidates[:, 0], test_items)
        assert train_index.size + test_users.size == ds.n_interactions

    def test_oracle_scores_perfect(self, ds):
        _train, test_users, test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )

        class Oracle:
            def __init__(self, items):
                self._positives = set(zip(test_users.tolist(), items.tolist()))

            def predict(self, users, items):
                return np.array([
                    1.0 if (u, i) in self._positives else 0.0
                    for u, i in zip(users, items)
                ])

        result = evaluate_topn(Oracle(test_items), ds, test_users, candidates)
        assert result.hr == 1.0
        assert result.ndcg == pytest.approx(1.0)

    def test_constant_model_scores_zero(self, ds):
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )

        class Constant:
            def predict(self, users, items):
                return np.ones(len(users))

        # top_k must be below the candidate count, otherwise every row is
        # trivially a hit; pessimistic tie-breaking then yields HR = 0.
        result = evaluate_topn(Constant(), ds, test_users, candidates, top_k=5)
        assert result.hr == 0.0

    def test_random_model_hr_near_k_over_candidates(self, ds):
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )

        class Random:
            def __init__(self):
                self._rng = np.random.default_rng(0)

            def predict(self, users, items):
                return self._rng.random(len(users))

        result = evaluate_topn(Random(), ds, test_users, candidates, top_k=5)
        # Expectation is 0.5 with 10 candidates; the tiny dataset has only
        # ~12 test users so allow generous sampling noise.
        assert 0.05 < result.hr < 0.95


class TestEvaluateTopNGrid:
    @pytest.mark.parametrize(
        "name", sorted(set(TOPN_MODELS + RATING_MODELS)))
    def test_matches_flat_evaluation_exactly(self, ds, name):
        model = build_model(name, ds, k=8, seed=0,
                            train_users=ds.users, train_items=ds.items)
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        ref = evaluate_topn(model, ds, test_users, candidates, top_k=5)
        grid = evaluate_topn_grid(model, ds, test_users, candidates, top_k=5)
        assert grid.hr == ref.hr
        assert grid.ndcg == ref.ndcg
        assert grid.top_k == ref.top_k

    def test_grid_path_actually_used(self, ds):
        model = build_model("MF", ds, k=8, seed=0)
        assert model.item_state(ds) is not None
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )

        called = {"predict": 0}
        original = model.predict

        def counting_predict(*args, **kwargs):
            called["predict"] += 1
            return original(*args, **kwargs)

        model.predict = counting_predict
        evaluate_topn_grid(model, ds, test_users, candidates)
        assert called["predict"] == 0

    @pytest.mark.parametrize("name", ["GML-FMmd", "NGCF", "MF"])
    def test_preserves_training_mode(self, ds, name):
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        model = build_model(name, ds, k=4, seed=0,
                            train_users=ds.users, train_items=ds.items)
        model.train()
        evaluate_topn_grid(model, ds, test_users, candidates)
        assert model.training
        model.eval()
        evaluate_topn_grid(model, ds, test_users, candidates)
        assert not model.training

    def test_rejects_mismatched_candidate_rows(self, ds):
        model = build_model("MF", ds, k=4, seed=0)
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        with pytest.raises(ValueError, match="rows"):
            evaluate_topn_grid(model, ds, test_users[:-1], candidates)

    def test_small_user_batch_chunks_consistently(self, ds):
        model = build_model("LibFM", ds, k=8, seed=0)
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        whole = evaluate_topn_grid(model, ds, test_users, candidates)
        chunked = evaluate_topn_grid(model, ds, test_users, candidates,
                                     user_batch=2)
        assert whole.hr == chunked.hr
        assert whole.ndcg == chunked.ndcg

    def test_validator_callback(self, ds):
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        validate = make_topn_validator(ds, test_users, candidates,
                                       metric="ndcg", top_k=5)
        model = build_model("BPR-MF", ds, k=8, seed=0)
        score = validate(model)
        ref = evaluate_topn(model, ds, test_users, candidates, top_k=5)
        assert score == ref.ndcg

    def test_validator_rejects_unknown_metric(self, ds):
        _train, test_users, _test_items, candidates = prepare_topn_protocol(
            ds, n_candidates=9, seed=0
        )
        with pytest.raises(ValueError, match="metric"):
            make_topn_validator(ds, test_users, candidates, metric="auc")
