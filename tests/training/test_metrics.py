"""Tests for RMSE, HR@K and NDCG@K."""

import numpy as np
import pytest

from repro.training.metrics import hit_ratio, ndcg, rmse


class TestRMSE:
    def test_zero_for_perfect(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty(self):
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestRanking:
    def test_hit_when_positive_ranked_first(self):
        scores = np.array([[10.0, 1.0, 2.0, 3.0]])
        assert hit_ratio(scores, top_k=1) == 1.0
        assert ndcg(scores, top_k=1) == pytest.approx(1.0)

    def test_miss_when_positive_ranked_last(self):
        scores = np.array([[0.0, 1.0, 2.0, 3.0]])
        assert hit_ratio(scores, top_k=3) == 0.0
        assert ndcg(scores, top_k=3) == 0.0

    def test_rank_within_k(self):
        # Positive is beaten by exactly 2 negatives -> rank 2 (0-based).
        scores = np.array([[5.0, 9.0, 8.0, 1.0, 0.0]])
        assert hit_ratio(scores, top_k=3) == 1.0
        assert ndcg(scores, top_k=3) == pytest.approx(1.0 / np.log2(4.0))

    def test_averaging_over_rows(self):
        scores = np.array([
            [10.0, 1.0, 2.0],   # hit at rank 0
            [0.0, 1.0, 2.0],    # miss
        ])
        assert hit_ratio(scores, top_k=2) == 0.5

    def test_ties_count_against_positive(self):
        # A constant scorer must not earn HR=1.
        scores = np.ones((1, 100))
        assert hit_ratio(scores, top_k=10) == 0.0

    def test_ndcg_monotone_in_rank(self):
        def row(n_better):
            scores = np.zeros(11)
            scores[0] = 0.5
            scores[1:1 + n_better] = 1.0
            return scores.reshape(1, -1)

        values = [ndcg(row(n), top_k=10) for n in range(5)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_hr_upper_bounds_ndcg(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(50, 100))
        assert ndcg(scores, top_k=10) <= hit_ratio(scores, top_k=10)
