"""Test package."""
