"""The documented public API surface stays importable and coherent."""

import pytest


class TestTopLevelExports:
    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        from repro import (GMLFM, GMLFM_DNN, GMLFM_MD, RecDataset,
                           TrainConfig, Trainer, make_dataset)
        assert callable(GMLFM) and callable(make_dataset)

    def test_all_matches_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestSubpackageExports:
    def test_autograd(self):
        from repro.autograd import Tensor, nn, ops, optim, sparse_matmul
        assert Tensor is not None

    def test_data(self):
        from repro.data import (DATASET_BUILDERS, FeatureSpace, NegativeSampler,
                                RecDataset, leave_one_out_split, minibatches,
                                random_split)
        assert len(DATASET_BUILDERS) == 6

    def test_core(self):
        from repro.core import (DISTANCES, GMLFM, MahalanobisTransform,
                                pairwise_interaction_efficient)
        assert set(DISTANCES) == {"euclidean", "manhattan", "chebyshev", "cosine"}

    def test_models(self):
        import repro.models as models
        for name in models.__all__:
            assert hasattr(models, name), name

    def test_training(self):
        from repro.training import (bpr_loss, evaluate_topn, hit_ratio,
                                    load_model, ndcg, recommend, rmse,
                                    save_model, squared_loss)
        assert callable(recommend)

    def test_experiments(self):
        from repro.experiments import (RATING_MODELS, TOPN_MODELS, ascii_chart,
                                       compare_models, format_table)
        assert len(TOPN_MODELS) == len(RATING_MODELS) + 1

    def test_analysis(self):
        from repro.analysis import (TSNE, cluster_separation, group_cold_start,
                                    item_embedding_case_study)
        assert callable(cluster_separation)

    def test_cli_module(self):
        from repro.cli import main
        assert callable(main)
