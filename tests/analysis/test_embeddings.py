"""Tests for the embedding case study of Figures 5–6."""

import numpy as np
import pytest

from repro.analysis.embeddings import cluster_separation, item_embedding_case_study
from repro.models.fm import FactorizationMachine
from tests.helpers import make_tiny_dataset


class TestClusterSeparation:
    def test_well_separated_clusters_near_one(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(15, 2))
        b = rng.normal(10.0, 0.05, size=(15, 2))
        points = np.vstack([a, b])
        labels = np.array([True] * 15 + [False] * 15)
        assert cluster_separation(points, labels) > 0.9

    def test_mixed_points_near_zero(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(40, 2))
        labels = rng.random(40) < 0.5
        if labels.all() or (~labels).all():
            labels[0] = not labels[0]
        assert abs(cluster_separation(points, labels)) < 0.2

    def test_requires_both_groups(self):
        points = np.zeros((5, 2))
        with pytest.raises(ValueError):
            cluster_separation(points, np.ones(5, dtype=bool))

    def test_parallel_shape_check(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((5, 2)), np.ones(4, dtype=bool))

    def test_bounded(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(20, 2))
        labels = np.arange(20) < 10
        score = cluster_separation(points, labels)
        assert -1.0 <= score <= 1.0


class TestCaseStudy:
    def test_returns_projection_and_labels(self):
        ds = make_tiny_dataset(n_users=12, n_items=30)
        model = FactorizationMachine(ds, k=6, rng=np.random.default_rng(0))
        user = int(np.argmax(ds.interactions_per_user()))
        study = item_embedding_case_study(model, ds, user, seed=0,
                                          tsne_iterations=80)
        n_points = study.labels.size
        assert study.projection.shape == (n_points, 2)
        assert study.labels.sum() * 2 == n_points  # balanced groups
        assert -1.0 <= study.separation <= 1.0

    def test_rejects_user_with_too_few_interactions(self):
        ds = make_tiny_dataset()
        model = FactorizationMachine(ds, k=4, rng=np.random.default_rng(0))
        sparse_user = int(np.argmin(ds.interactions_per_user()))
        if ds.interactions_per_user()[sparse_user] < 5:
            with pytest.raises(ValueError):
                item_embedding_case_study(model, ds, sparse_user)

    def test_negatives_not_in_positives(self):
        ds = make_tiny_dataset(n_users=12, n_items=30)
        model = FactorizationMachine(ds, k=4, rng=np.random.default_rng(0))
        user = int(np.argmax(ds.interactions_per_user()))
        study = item_embedding_case_study(model, ds, user, seed=0,
                                          tsne_iterations=80)
        assert study.user == user
