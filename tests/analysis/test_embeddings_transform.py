"""Tests for the transformed-space option of the embedding case study."""

import numpy as np
import pytest

from repro.analysis.embeddings import item_embedding_case_study
from repro.core.gml_fm import GMLFM_DNN, GMLFM_MD
from repro.models.fm import FactorizationMachine
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=12, n_items=30)


@pytest.fixture(scope="module")
def active_user(ds):
    return int(np.argmax(ds.interactions_per_user()))


class TestTransformOption:
    def test_gml_fm_transform_changes_projection(self, ds, active_user):
        model = GMLFM_MD(ds, k=6, rng=np.random.default_rng(0))
        # Make the transform clearly non-identity.
        model.transform.L.data += np.random.default_rng(1).normal(
            0, 0.5, size=(6, 6)
        )
        raw = item_embedding_case_study(model, ds, active_user, seed=0,
                                        tsne_iterations=80,
                                        use_transform=False)
        transformed = item_embedding_case_study(model, ds, active_user, seed=0,
                                                tsne_iterations=80,
                                                use_transform=True)
        assert not np.allclose(raw.projection, transformed.projection)

    def test_fm_without_transform_unaffected(self, ds, active_user):
        model = FactorizationMachine(ds, k=6, rng=np.random.default_rng(0))
        a = item_embedding_case_study(model, ds, active_user, seed=0,
                                      tsne_iterations=80, use_transform=True)
        b = item_embedding_case_study(model, ds, active_user, seed=0,
                                      tsne_iterations=80, use_transform=False)
        np.testing.assert_allclose(a.projection, b.projection)

    def test_dropout_disabled_during_study(self, ds, active_user):
        model = GMLFM_DNN(ds, k=6, n_layers=2, dropout=0.5,
                          rng=np.random.default_rng(0))
        model.train()
        a = item_embedding_case_study(model, ds, active_user, seed=0,
                                      tsne_iterations=80)
        b = item_embedding_case_study(model, ds, active_user, seed=0,
                                      tsne_iterations=80)
        # Dropout must be switched off inside the study: deterministic.
        np.testing.assert_allclose(a.projection, b.projection)
        # And the training flag restored afterwards.
        assert model.training
