"""Test package."""
