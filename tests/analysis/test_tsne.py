"""Tests for the exact t-SNE implementation."""

import numpy as np
import pytest

from repro.analysis.tsne import (
    TSNE,
    _conditional_probabilities,
    _pairwise_squared_distances,
)


class TestHelpers:
    def test_pairwise_distances_match_bruteforce(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 4))
        d = _pairwise_squared_distances(x)
        for i in range(10):
            for j in range(10):
                expected = ((x[i] - x[j]) ** 2).sum()
                assert d[i, j] == pytest.approx(expected, abs=1e-9)

    def test_pairwise_distances_zero_diagonal(self):
        x = np.random.default_rng(0).normal(size=(8, 3))
        assert np.all(np.diag(_pairwise_squared_distances(x)) == 0.0)

    def test_conditional_probabilities_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(15, 4))
        p = _conditional_probabilities(_pairwise_squared_distances(x), 5.0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_perplexity_calibration(self):
        x = np.random.default_rng(0).normal(size=(30, 4))
        p = _conditional_probabilities(_pairwise_squared_distances(x), 10.0)
        entropies = -(p * np.log(np.maximum(p, 1e-12))).sum(axis=1)
        np.testing.assert_allclose(np.exp(entropies), 10.0, rtol=0.05)


class TestTSNE:
    def test_validation(self):
        with pytest.raises(ValueError):
            TSNE(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNE(n_iter=10)
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 4)))

    def test_output_shape(self):
        x = np.random.default_rng(0).normal(size=(25, 6))
        y = TSNE(n_iter=100, seed=0).fit_transform(x)
        assert y.shape == (25, 2)
        assert np.all(np.isfinite(y))

    def test_centered_output(self):
        x = np.random.default_rng(0).normal(size=(20, 5))
        y = TSNE(n_iter=100, seed=0).fit_transform(x)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)

    def test_kl_divergence_decreases(self):
        x = np.random.default_rng(0).normal(size=(30, 5))
        tsne = TSNE(n_iter=300, seed=0)
        tsne.fit_transform(x)
        assert tsne.kl_history_[-1] < tsne.kl_history_[1]

    def test_separates_well_separated_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.1, size=(20, 8))
        b = rng.normal(5.0, 0.1, size=(20, 8))
        y = TSNE(n_iter=400, seed=0).fit_transform(np.vstack([a, b]))
        centroid_a = y[:20].mean(axis=0)
        centroid_b = y[20:].mean(axis=0)
        spread_a = np.linalg.norm(y[:20] - centroid_a, axis=1).mean()
        spread_b = np.linalg.norm(y[20:] - centroid_b, axis=1).mean()
        gap = np.linalg.norm(centroid_a - centroid_b)
        assert gap > 2.0 * max(spread_a, spread_b)

    def test_reproducible_given_seed(self):
        x = np.random.default_rng(2).normal(size=(15, 4))
        y1 = TSNE(n_iter=100, seed=7).fit_transform(x)
        y2 = TSNE(n_iter=100, seed=7).fit_transform(x)
        np.testing.assert_allclose(y1, y2)
