"""Tests for cold-start grouping (Figure 4 protocol)."""

import numpy as np
import pytest

from repro.analysis.cold_start import (
    SCENARIOS,
    cold_start_rmse_curve,
    group_cold_start,
)
from tests.helpers import make_tiny_dataset


class TestGrouping:
    def test_masks_shapes(self):
        ds = make_tiny_dataset()
        groups = group_cold_start(ds)
        assert groups.warm_users.shape == (ds.n_users,)
        assert groups.warm_items.shape == (ds.n_items,)

    def test_user_quantile_split(self):
        ds = make_tiny_dataset(n_users=40, n_items=60)
        groups = group_cold_start(ds, user_quantile=0.5)
        warm_fraction = groups.warm_users.mean()
        assert 0.3 < warm_fraction < 0.7

    def test_item_threshold(self):
        ds = make_tiny_dataset()
        groups = group_cold_start(ds, item_min_interactions=1)
        counts = ds.interactions_per_item()
        np.testing.assert_array_equal(groups.warm_items, counts >= 1)

    def test_scenario_masks_partition(self):
        ds = make_tiny_dataset()
        groups = group_cold_start(ds)
        users, items = ds.users, ds.items
        total = sum(
            groups.scenario_mask(s, users, items).sum() for s in SCENARIOS
        )
        assert total == ds.n_interactions

    def test_unknown_scenario(self):
        ds = make_tiny_dataset()
        groups = group_cold_start(ds)
        with pytest.raises(ValueError):
            groups.scenario_mask("X-Y", ds.users, ds.items)

    def test_ww_selects_warm_pairs(self):
        ds = make_tiny_dataset()
        groups = group_cold_start(ds, item_min_interactions=1)
        mask = groups.scenario_mask("W-W", ds.users, ds.items)
        assert np.all(groups.warm_users[ds.users[mask]])
        assert np.all(groups.warm_items[ds.items[mask]])


class TestRmseCurve:
    def test_buckets_by_train_count(self):
        rng = np.random.default_rng(0)
        test_users = np.array([0, 0, 1, 1, 2])
        test_items = np.array([0, 1, 2, 3, 4])
        labels = np.array([1.0, -1.0, 1.0, 1.0, -1.0])
        train_counts = np.array([3, 7, 15])

        def predict(users, items):
            return np.zeros(users.size)

        curve = cold_start_rmse_curve(predict, test_users, test_items, labels,
                                      train_counts)
        assert set(curve) == {3, 7, 15}
        assert curve[3] == pytest.approx(1.0)

    def test_empty_buckets_omitted(self):
        curve = cold_start_rmse_curve(
            lambda u, i: np.zeros(u.size),
            np.array([0]), np.array([0]), np.array([1.0]),
            np.array([4]), max_interactions=15,
        )
        assert list(curve) == [4]

    def test_perfect_predictor_zero_rmse(self):
        labels = np.array([1.0, -1.0, 1.0])
        curve = cold_start_rmse_curve(
            lambda u, i: labels,
            np.array([0, 1, 2]), np.array([0, 1, 2]), labels,
            np.array([2, 2, 2]),
        )
        assert curve[2] == 0.0
