"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.autograd import nn, optim
from repro.autograd.tensor import Tensor


def _quadratic(param: Tensor) -> Tensor:
    # Minimum at [1, -2].
    target = np.array([1.0, -2.0])
    return ((param - target) ** 2).sum()


class TestValidation:
    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_nonpositive_lr(self):
        p = Tensor([0.0], requires_grad=True)
        with pytest.raises(ValueError):
            optim.SGD([p], lr=0.0)

    def test_negative_weight_decay(self):
        p = Tensor([0.0], requires_grad=True)
        with pytest.raises(ValueError):
            optim.SGD([p], lr=0.1, weight_decay=-1.0)

    def test_bad_momentum(self):
        p = Tensor([0.0], requires_grad=True)
        with pytest.raises(ValueError):
            optim.SGD([p], lr=0.1, momentum=1.0)

    def test_bad_betas(self):
        p = Tensor([0.0], requires_grad=True)
        with pytest.raises(ValueError):
            optim.Adam([p], betas=(1.0, 0.9))

    def test_skips_non_grad_tensors(self):
        p = Tensor([0.0], requires_grad=True)
        frozen = Tensor([0.0], requires_grad=False)
        opt = optim.SGD([p, frozen], lr=0.1)
        assert len(opt.parameters) == 1


class TestConvergence:
    def test_sgd_quadratic(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            _quadratic(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-4)

    def test_sgd_momentum_quadratic(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            _quadratic(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-3)

    def test_adam_quadratic(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            _quadratic(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-3)

    def test_adam_first_step_magnitude(self):
        # With bias correction, the first Adam step has magnitude ≈ lr.
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = optim.Adam([p], lr=0.5)
        opt.zero_grad()
        (p * 3.0).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(10.0 - 0.5, abs=1e-6)

    def test_linear_regression_fit(self):
        rng = np.random.default_rng(0)
        lin = nn.Linear(2, 1, rng=rng)
        opt = optim.Adam(lin.parameters(), lr=0.05)
        X = rng.normal(size=(128, 2))
        y = X @ np.array([[1.5], [-0.5]]) + 0.3
        for _ in range(300):
            opt.zero_grad()
            loss = ((lin(Tensor(X)) - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(lin.weight.data.ravel(), [1.5, -0.5], atol=1e-3)
        np.testing.assert_allclose(lin.bias.data, [0.3], atol=1e-3)


class TestBehaviour:
    def test_step_skips_params_without_grad(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        q = Tensor(np.ones(2), requires_grad=True)
        opt = optim.SGD([p, q], lr=0.1)
        (p.sum() * 2).backward()
        opt.step()
        np.testing.assert_allclose(q.data, 1.0)  # untouched
        assert np.all(p.data != 0.0)

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = optim.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero data gradient
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_zero_grad_clears(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.SGD([p], lr=0.1)
        (p.sum() * 2).backward()
        opt.zero_grad()
        assert p.grad is None
