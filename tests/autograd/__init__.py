"""Test package."""
