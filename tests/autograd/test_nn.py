"""Tests for the Module system and layers."""

import numpy as np
import pytest

from repro.autograd import nn
from repro.autograd.tensor import Tensor


class TestModuleRegistration:
    def test_parameters_found(self):
        lin = nn.Linear(3, 2)
        params = list(lin.parameters())
        assert len(params) == 2  # weight + bias

    def test_nested_modules(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(3, 2)
                self.b = nn.Linear(2, 1, bias=False)

        net = Net()
        assert len(list(net.parameters())) == 3

    def test_named_parameters(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(3, 2)

        names = dict(Net().named_parameters())
        assert "layer.weight" in names and "layer.bias" in names

    def test_num_parameters(self):
        lin = nn.Linear(3, 2)
        assert lin.num_parameters() == 3 * 2 + 2

    def test_zero_grad(self):
        lin = nn.Linear(2, 2)
        out = lin(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_train_eval_propagates(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        seq.eval()
        assert not seq._list[1].training
        seq.train()
        assert seq._list[1].training

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestStateDict:
    def test_roundtrip(self):
        a = nn.Linear(3, 2)
        b = nn.Linear(3, 2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_is_a_copy(self):
        a = nn.Linear(3, 2)
        state = a.state_dict()
        state["weight"][...] = 99.0
        assert not np.any(a.weight.data == 99.0)

    def test_missing_key_raises(self):
        a = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_shape_mismatch_raises(self):
        a = nn.Linear(3, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_assign_rebinds_without_copy(self):
        a = nn.Linear(3, 2)
        state = {name: arr for name, arr in a.state_dict().items()}
        a.load_state_dict(state, assign=True)
        # The incoming arrays *are* the live parameters now.
        assert a.weight.data is state["weight"]
        assert a.bias.data is state["bias"]

    def test_assign_preserves_readonly_flag(self):
        a = nn.Linear(3, 2)
        state = a.state_dict()
        for arr in state.values():
            arr.setflags(write=False)
        a.load_state_dict(state, assign=True)
        assert not a.weight.data.flags.writeable
        with pytest.raises(ValueError):
            a.weight.data[0, 0] = 1.0
        # The copy path would have mutated the read-only target; assign
        # is the only way to adopt read-only (e.g. mmapped) storage.

    def test_assign_clears_grad(self):
        a = nn.Linear(3, 2)
        a.weight.grad = np.ones_like(a.weight.data)
        a.load_state_dict(a.state_dict(), assign=True)
        assert a.weight.grad is None

    def test_assign_still_validates_shape_and_keys(self):
        a = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({}, assign=True)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state, assign=True)


class TestLinear:
    def test_forward_shape(self):
        lin = nn.Linear(4, 3)
        assert lin(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        lin = nn.Linear(4, 3, bias=False)
        assert lin.bias is None
        out = lin(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_batched_input(self):
        lin = nn.Linear(4, 3)
        assert lin(Tensor(np.zeros((2, 5, 4)))).shape == (2, 5, 3)

    def test_normal_std_init(self):
        rng = np.random.default_rng(0)
        lin = nn.Linear(100, 100, std=0.01, rng=rng)
        assert abs(lin.weight.data.std() - 0.01) < 0.002


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_gradient_reaches_table(self):
        emb = nn.Embedding(10, 4)
        emb(np.array([3])).sum().backward()
        assert emb.weight.grad is not None
        assert np.any(emb.weight.grad[3] != 0)
        assert np.all(emb.weight.grad[0] == 0)


class TestDropoutModule:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_respects_training_flag(self):
        drop = nn.Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones(1000))
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)
        drop.train()
        assert (drop(x).data == 0).sum() > 500


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(3, 3), nn.ReLU(), nn.Linear(3, 1))
        assert seq(Tensor(np.zeros((2, 3)))).shape == (2, 1)
        assert len(seq) == 3

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml)) == 2
        assert isinstance(ml[0], nn.Linear)
        # Parameters of contained modules are discovered.
        assert len(list(ml.parameters())) == 4

    def test_module_list_append(self):
        ml = nn.ModuleList()
        ml.append(nn.Linear(2, 2))
        assert len(list(ml.parameters())) == 2

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([])(None)


class TestActivations:
    def test_tanh_module(self):
        x = Tensor(np.array([0.5]))
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(0.5))

    def test_relu_module(self):
        x = Tensor(np.array([-1.0, 1.0]))
        np.testing.assert_allclose(nn.ReLU()(x).data, [0.0, 1.0])

    def test_sigmoid_module(self):
        x = Tensor(np.array([0.0]))
        np.testing.assert_allclose(nn.Sigmoid()(x).data, 0.5)

    def test_identity_module(self):
        x = Tensor(np.array([1.0]))
        assert nn.Identity()(x) is x


class TestMakeMlp:
    def test_depth(self):
        mlp = nn.make_mlp([4, 4, 4], activation="tanh")
        # Two Linear + two activation modules, no dropout.
        assert len(mlp) == 4

    def test_with_dropout_between_layers(self):
        mlp = nn.make_mlp([4, 4, 4], activation="tanh", dropout=0.5)
        kinds = [type(m).__name__ for m in mlp]
        assert "Dropout" in kinds
        # Dropout only *between* layers, never before the first.
        assert kinds[0] == "Linear"

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            nn.make_mlp([4, 4], activation="swish")

    def test_forward_shape(self):
        mlp = nn.make_mlp([6, 5, 4], activation="relu")
        assert mlp(Tensor(np.zeros((3, 6)))).shape == (3, 4)
