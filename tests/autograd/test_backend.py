"""The backend seam: selection, chain fusion, and SparseRowGrad.

Covers the machinery :mod:`repro.autograd.backend` adds around the
engine — backend resolution and scoping, the fused tape topology, the
sparse per-row gradient type, and the bugfix sweep that shipped with
the seam (embedding bounds, n-ary ``sum_tensors``, optimizer state
guards).
"""

import numpy as np
import pytest

from repro.autograd import backend, ops
from repro.autograd.backend import (BACKENDS, FUSED, REFERENCE, Backend,
                                    SparseRowGrad, active_backend,
                                    active_dtype, infer_backend,
                                    resolve_backend, scatter_rows,
                                    use_backend)
from repro.autograd.optim import SGD, Adam
from repro.autograd.tensor import Tensor

FUSED64 = Backend("fused64", np.dtype(np.float64),
                  fuse_elementwise=True, sparse_embedding_grad=True)


class TestSelection:
    def test_registry_names(self):
        assert set(BACKENDS) == {"reference", "fused"}
        assert resolve_backend("reference") is REFERENCE
        assert resolve_backend("fused") is FUSED

    def test_none_means_reference(self):
        assert resolve_backend(None) is REFERENCE

    def test_instances_pass_through(self):
        assert resolve_backend(FUSED64) is FUSED64

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="fused.*reference|reference.*fused"):
            resolve_backend("float16")

    def test_use_backend_nests_and_restores(self):
        assert active_backend() is REFERENCE
        with use_backend("fused"):
            assert active_backend() is FUSED
            assert active_dtype() == np.float32
            with use_backend("reference"):
                assert active_backend() is REFERENCE
            assert active_backend() is FUSED
        assert active_backend() is REFERENCE

    def test_use_backend_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("fused"):
                raise RuntimeError("boom")
        assert active_backend() is REFERENCE

    def test_infer_backend_from_parameter_dtype(self):
        f32 = Tensor._from_data(np.zeros(3, dtype=np.float32))
        f64 = Tensor._from_data(np.zeros(3, dtype=np.float64))
        assert infer_backend([f64, f32]) is FUSED
        assert infer_backend([f64]) is REFERENCE
        assert infer_backend([]) is REFERENCE

    def test_tensor_creation_follows_the_active_dtype(self):
        with use_backend("fused"):
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert Tensor([1.0, 2.0]).data.dtype == np.float64


class TestChainFusion:
    def test_unary_chain_collapses_to_one_node(self):
        with use_backend(FUSED64):
            x = Tensor(np.linspace(-1, 1, 6).reshape(2, 3),
                       requires_grad=True)
            y = x.sigmoid().relu().tanh()
        # The tape edge skips the intermediates: y's only parent is x.
        assert y._parents == (x,)
        assert y._chain_root is x

    def test_reference_backend_keeps_per_op_nodes(self):
        x = Tensor(np.linspace(-1, 1, 6).reshape(2, 3), requires_grad=True)
        y = x.sigmoid().relu()
        assert y._parents != (x,)
        assert y._chain_root is None

    def test_chain_breaks_at_non_elementwise_ops(self):
        with use_backend(FUSED64):
            x = Tensor(np.ones((2, 3)), requires_grad=True)
            y = x.sigmoid().sum(axis=0).relu()
        # sum() is a fresh tape node; relu starts a new chain there.
        assert y._chain_root is not x

    def test_fused_gradients_match_reference(self):
        data = np.linspace(-2, 2, 12).reshape(3, 4)

        def run(bknd):
            with use_backend(bknd):
                x = Tensor(data, requires_grad=True)
                ((x.sigmoid() * 2.0 + 0.25).relu().tanh()).sum().backward()
                return x.grad

        np.testing.assert_allclose(run(FUSED64), run(REFERENCE),
                                   rtol=1e-12, atol=1e-12)


class TestSparseRowGrad:
    def _grad(self):
        return SparseRowGrad((5, 2), np.array([1, 3]),
                             np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_to_dense(self):
        dense = self._grad().to_dense()
        assert dense.shape == (5, 2)
        np.testing.assert_array_equal(dense[1], [1.0, 2.0])
        np.testing.assert_array_equal(dense[0], 0.0)

    def test_sparse_plus_sparse_merges_rows(self):
        other = SparseRowGrad((5, 2), np.array([3, 4]),
                              np.array([[10.0, 10.0], [5.0, 5.0]]))
        merged = self._grad() + other
        assert isinstance(merged, SparseRowGrad)
        np.testing.assert_array_equal(merged.rows, [1, 3, 4])
        np.testing.assert_array_equal(
            merged.to_dense(), self._grad().to_dense() + other.to_dense())

    def test_sparse_plus_dense_densifies_without_mutation(self):
        dense = np.ones((5, 2))
        out = self._grad() + dense
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(dense, 1.0)   # input untouched
        np.testing.assert_array_equal(out, self._grad().to_dense() + 1.0)
        np.testing.assert_array_equal(dense + self._grad(), out)  # __radd__

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            self._grad() + np.ones((4, 2))
        with pytest.raises(ValueError, match="shape"):
            self._grad() + SparseRowGrad((4, 2), np.array([0]),
                                         np.ones((1, 2)))

    def test_getitem_matches_dense_indexing(self):
        grad = self._grad()
        index = np.array([0, 1, 3, 3, 4])
        np.testing.assert_array_equal(grad[index], grad.to_dense()[index])

    def test_getitem_rejects_non_integer_indices(self):
        with pytest.raises(TypeError, match="integer"):
            self._grad()[np.array([0.5, 1.5])]

    def test_add_scaled_rows_decays_touched_rows_only(self):
        table = np.full((5, 2), 10.0)
        decayed = self._grad().add_scaled_rows(table, 0.1)
        assert isinstance(decayed, SparseRowGrad)
        np.testing.assert_array_equal(decayed.rows, [1, 3])
        np.testing.assert_allclose(decayed.values,
                                   self._grad().values + 1.0)

    def test_scatter_rows_accumulates_duplicates(self):
        grad = scatter_rows(np.array([2, 0, 2, 2]),
                            np.array([[1.0], [5.0], [10.0], [100.0]]),
                            (4, 1))
        np.testing.assert_array_equal(grad.rows, [0, 2])
        np.testing.assert_allclose(grad.values, [[5.0], [111.0]])

    def test_embedding_backward_is_sparse_under_fused(self):
        indices = np.array([1, 1, 3])
        with use_backend(FUSED64):
            table = Tensor(np.arange(10.0).reshape(5, 2),
                           requires_grad=True)
            ops.embedding(table, indices).sum().backward()
        assert isinstance(table.grad, SparseRowGrad)
        np.testing.assert_array_equal(table.grad.rows, [1, 3])
        np.testing.assert_allclose(table.grad.values,
                                   [[2.0, 2.0], [1.0, 1.0]])

    def test_embedding_backward_is_dense_under_reference(self):
        table = Tensor(np.arange(10.0).reshape(5, 2), requires_grad=True)
        ops.embedding(table, np.array([1, 1, 3])).sum().backward()
        assert isinstance(table.grad, np.ndarray)


class TestEmbeddingBounds:
    """Regression: numpy fancy indexing wraps negative indices, so a
    corrupt ``-1`` silently trained the *last* table row."""

    def test_negative_index_raises(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        with pytest.raises(IndexError, match="-1"):
            ops.embedding(table, np.array([0, -1]))

    def test_index_past_the_end_raises(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        with pytest.raises(IndexError, match="4"):
            ops.embedding(table, np.array([0, 4]))

    def test_bounds_checked_on_both_backends(self):
        with use_backend(FUSED64):
            table = Tensor(np.zeros((4, 2)), requires_grad=True)
            with pytest.raises(IndexError):
                ops.embedding(table, np.array([7]))

    def test_full_range_is_accepted(self):
        table = Tensor(np.arange(8.0).reshape(4, 2))
        out = ops.embedding(table, np.array([0, 3]))
        np.testing.assert_array_equal(out.data, table.data[[0, 3]])


class TestSumTensors:
    """Regression: the old implementation folded with binary ``+``,
    building an O(n)-deep graph; now one n-ary node, same numbers."""

    def _terms(self, n, shape=(3, 2)):
        rng = np.random.default_rng(42)
        return [Tensor(rng.standard_normal(shape), requires_grad=True)
                for _ in range(n)]

    def test_byte_equivalent_to_the_binary_chain(self):
        terms = self._terms(9)
        chain = terms[0]
        for term in terms[1:]:
            chain = chain + term
        nary = ops.sum_tensors(terms)
        np.testing.assert_array_equal(nary.data, chain.data)

        chain.sum().backward()
        chain_grads = [t.grad.copy() for t in terms]
        for t in terms:
            t.zero_grad()
        nary.sum().backward()
        for t, expected in zip(terms, chain_grads):
            np.testing.assert_array_equal(t.grad, expected)

    def test_single_graph_node(self):
        terms = self._terms(9)
        out = ops.sum_tensors(terms)
        assert out._parents == tuple(terms)

    def test_single_tensor_passes_through(self):
        t = self._terms(1)[0]
        assert ops.sum_tensors([t]) is t

    def test_empty_list_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            ops.sum_tensors([])

    def test_shape_mismatch_raises(self):
        a = Tensor(np.zeros((2, 2)))
        b = Tensor(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="shape"):
            ops.sum_tensors([a, b])


class TestOptimizerStateGuards:
    """Regression: swapping ``param.data`` after the optimizer captured
    its buffers silently broadcast/NaN'd; now a clear error."""

    def _param(self, dtype=np.float64):
        p = Tensor(np.zeros((3, 2)), requires_grad=True)
        p.data = p.data.astype(dtype)
        p.grad = np.ones((3, 2), dtype=dtype)
        return p

    @pytest.mark.parametrize("make", [
        lambda p: SGD([p], lr=0.1, momentum=0.9),
        lambda p: Adam([p], lr=0.1),
    ], ids=["sgd", "adam"])
    def test_shape_swap_raises(self, make):
        param = self._param()
        optimizer = make(param)
        optimizer.step()    # capture buffers at (3, 2)
        param.data = np.zeros((4, 2))
        param.grad = np.ones((4, 2))
        with pytest.raises(RuntimeError, match="rebuild the optimizer"):
            optimizer.step()

    @pytest.mark.parametrize("make", [
        lambda p: SGD([p], lr=0.1, momentum=0.9),
        lambda p: Adam([p], lr=0.1),
    ], ids=["sgd", "adam"])
    def test_dtype_swap_raises(self, make):
        param = self._param()
        optimizer = make(param)
        optimizer.step()
        param.data = param.data.astype(np.float32)
        param.grad = np.ones((3, 2), dtype=np.float32)
        with pytest.raises(RuntimeError, match="rebuild the optimizer"):
            optimizer.step()


class TestSparseOptimizerSteps:
    def _table(self):
        p = Tensor(np.arange(10.0).reshape(5, 2), requires_grad=True)
        return p

    def _sparse(self):
        return SparseRowGrad((5, 2), np.array([1, 3]),
                             np.array([[1.0, 1.0], [2.0, 2.0]]))

    def test_sgd_updates_touched_rows_only(self):
        param = self._table()
        before = param.data.copy()
        param.grad = self._sparse()
        SGD([param], lr=0.5).step()
        np.testing.assert_array_equal(param.data[[0, 2, 4]],
                                      before[[0, 2, 4]])
        np.testing.assert_allclose(param.data[1], before[1] - 0.5)
        np.testing.assert_allclose(param.data[3], before[3] - 1.0)

    def test_sgd_sparse_matches_dense_step(self):
        sparse_p, dense_p = self._table(), self._table()
        sparse_p.grad = self._sparse()
        dense_p.grad = self._sparse().to_dense()
        SGD([sparse_p], lr=0.3, momentum=0.9).step()
        SGD([dense_p], lr=0.3, momentum=0.9).step()
        np.testing.assert_allclose(sparse_p.data, dense_p.data)

    def test_adam_updates_touched_rows_only(self):
        param = self._table()
        before = param.data.copy()
        param.grad = self._sparse()
        Adam([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data[[0, 2, 4]],
                                      before[[0, 2, 4]])
        assert not np.allclose(param.data[[1, 3]], before[[1, 3]])

    def test_sparse_weight_decay_decays_touched_rows_only(self):
        param = self._table()
        before = param.data.copy()
        param.grad = SparseRowGrad((5, 2), np.array([1]),
                                   np.zeros((1, 2)))
        SGD([param], lr=0.5, weight_decay=0.1).step()
        np.testing.assert_array_equal(param.data[[0, 2, 3, 4]],
                                      before[[0, 2, 3, 4]])
        np.testing.assert_allclose(param.data[1], before[1] * (1 - 0.05))
