"""Hypothesis property-based tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd.tensor import Tensor, unbroadcast

_FLOATS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64)


def _arrays(min_dims=1, max_dims=3):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=4),
        elements=_FLOATS,
    )


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_add_commutative(a):
    x = Tensor(a)
    np.testing.assert_allclose((x + x).data, (2.0 * x).data)


@settings(max_examples=60, deadline=None)
@given(_arrays(), _FLOATS)
def test_scalar_mul_matches_numpy(a, c):
    np.testing.assert_allclose((Tensor(a) * c).data, a * c)


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_sum_gradient_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_mean_gradient_is_uniform(a):
    x = Tensor(a, requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, 1.0 / a.size))


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_mul_gradient_product_rule(a):
    x = Tensor(a, requires_grad=True)
    (x * x).sum().backward()
    np.testing.assert_allclose(x.grad, 2.0 * a, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_tanh_bounded(a):
    out = Tensor(a).tanh().data
    assert np.all(out >= -1.0) and np.all(out <= 1.0)


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_sigmoid_in_unit_interval(a):
    out = Tensor(a).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_relu_nonnegative_and_idempotent(a):
    r1 = Tensor(a).relu()
    r2 = r1.relu()
    assert np.all(r1.data >= 0)
    np.testing.assert_allclose(r1.data, r2.data)


@settings(max_examples=60, deadline=None)
@given(_arrays())
def test_reshape_roundtrip_preserves_grad(a):
    x = Tensor(a, requires_grad=True)
    (x.reshape(-1).reshape(a.shape) * 3.0).sum().backward()
    np.testing.assert_allclose(x.grad, 3.0)


@settings(max_examples=60, deadline=None)
@given(_arrays(min_dims=2, max_dims=3))
def test_transpose_involution(a):
    x = Tensor(a)
    np.testing.assert_allclose(x.T.T.data, a)


@settings(max_examples=60, deadline=None)
@given(
    arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
           elements=_FLOATS),
)
def test_unbroadcast_after_broadcast_recovers_shape(a):
    broadcast = np.broadcast_to(a, (3,) + a.shape)
    out = unbroadcast(np.ascontiguousarray(broadcast), a.shape)
    assert out.shape == a.shape
    np.testing.assert_allclose(out, 3.0 * a)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5), st.data())
def test_matmul_matches_numpy(n, m, k, data):
    a = data.draw(arrays(np.float64, (n, m), elements=_FLOATS))
    b = data.draw(arrays(np.float64, (m, k), elements=_FLOATS))
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 5), st.data())
def test_linear_combination_gradient(n, data):
    a = data.draw(arrays(np.float64, (n,), elements=_FLOATS))
    weights = data.draw(arrays(np.float64, (n,), elements=_FLOATS))
    x = Tensor(a, requires_grad=True)
    (x * weights).sum().backward()
    np.testing.assert_allclose(x.grad, weights)
