"""Tests for the sparse-matrix × dense bridge used by NGCF."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd.sparse import sparse_matmul
from repro.autograd.tensor import Tensor
from tests.helpers import assert_grad_matches


def _random_sparse(rows, cols, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    return sp.csr_matrix(dense)


class TestSparseMatmul:
    def test_forward_matches_dense(self):
        A = _random_sparse(5, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        out = sparse_matmul(A, x)
        np.testing.assert_allclose(out.data, A.toarray() @ x.data)

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(3), Tensor(np.zeros((3, 2))))

    def test_gradient_is_transpose_product(self):
        A = _random_sparse(5, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)), requires_grad=True)
        sparse_matmul(A, x).sum().backward()
        expected = A.toarray().T @ np.ones((5, 3))
        np.testing.assert_allclose(x.grad, expected)

    def test_gradient_numerical(self):
        A = _random_sparse(4, 4, seed=2)
        x = Tensor(np.random.default_rng(3).normal(size=(4, 2)), requires_grad=True)
        assert_grad_matches(lambda: (sparse_matmul(A, x) ** 2).sum(), x)

    def test_coo_input_accepted(self):
        A = _random_sparse(3, 3).tocoo()
        x = Tensor(np.ones((3, 2)))
        out = sparse_matmul(A, x)
        np.testing.assert_allclose(out.data, A.toarray() @ x.data)
