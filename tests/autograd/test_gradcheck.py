"""Numerical-jacobian gradchecks over every backward rule, per backend.

The contract of :mod:`repro.autograd.backend`: the fused execution
strategy (chain fusion, sparse embedding gradients) must compute the
same mathematics as the reference engine.  Each check here compares
the tape's analytic gradient against central finite differences of the
forward function, once per backend:

- ``reference`` — the pre-seam float64 engine;
- ``fused64`` — an ad-hoc float64 variant of the fused strategy, so
  the fusion and sparse-gradient code paths are verified at full
  precision (float32 would drown the comparison in rounding noise);
- a separate loose-tolerance smoke check runs the real float32
  ``fused`` backend end to end.

Every loss is projected through a fixed random vector so non-constant
upstream gradients reach each backward rule.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.backend import (FUSED, REFERENCE, Backend, SparseRowGrad,
                                    use_backend)
from repro.autograd.sparse import sparse_matmul
from repro.autograd.tensor import Tensor

#: Fused machinery at reference precision (see module docstring).
FUSED64 = Backend("fused64", np.dtype(np.float64),
                  fuse_elementwise=True, sparse_embedding_grad=True)

BACKENDS = [REFERENCE, FUSED64]
BACKEND_IDS = [b.name for b in BACKENDS]


def _dense(grad):
    return grad.to_dense() if isinstance(grad, SparseRowGrad) else grad


def gradcheck(build, arrays, backend, eps=1e-6, rtol=1e-5, atol=1e-7):
    """Compare tape gradients of ``build(*tensors)`` with central diffs.

    ``build`` maps input Tensors to an output Tensor of any shape; the
    scalar under test is ``sum(out * P)`` for a fixed random projection
    ``P``.  All inputs require grad unless the caller wraps some of
    them in plain ``Tensor``s inside ``build``.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    with use_backend(backend):
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        out = build(*tensors)
        projection = np.random.default_rng(7).standard_normal(out.data.shape)
        (out * Tensor(projection)).sum().backward()
        analytic = [np.array(_dense(t.grad), dtype=np.float64)
                    for t in tensors]

        def forward(*arrs):
            value = build(*[Tensor(a) for a in arrs])
            return float(np.sum(value.data * projection))

        for position, array in enumerate(arrays):
            numeric = np.zeros_like(array)
            it = np.nditer(array, flags=["multi_index"])
            for _ in it:
                idx = it.multi_index
                bumped = [a.copy() for a in arrays]
                bumped[position][idx] += eps
                plus = forward(*bumped)
                bumped[position][idx] -= 2 * eps
                minus = forward(*bumped)
                numeric[idx] = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(
                analytic[position], numeric, rtol=rtol, atol=atol,
                err_msg=f"input {position} under backend {backend.name}")


def _rand(shape, seed=0, low=None):
    data = np.random.default_rng(seed).standard_normal(shape)
    if low is not None:
        data = np.abs(data) + low   # keep away from non-smooth points
    return data


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestArithmetic:
    def test_binary_ops_with_broadcasting(self, backend):
        gradcheck(lambda a, b: a * b + a - b / (a.abs() + 2.0),
                  [_rand((3, 4), 1), _rand((4,), 2)], backend)

    def test_scalar_operand_ops(self, backend):
        gradcheck(lambda a: 2.5 * a + (a - 1.5) / 2.0 - (-a) + 3.0 / (a.abs() + 2.0),
                  [_rand((3, 3), 3)], backend)

    def test_pow_square_neg(self, backend):
        gradcheck(lambda a: a ** 3 + ops.square(a) - a,
                  [_rand((2, 5), 4)], backend)

    def test_matmul_both_sides(self, backend):
        gradcheck(lambda a, b: a @ b, [_rand((3, 4), 5), _rand((4, 2), 6)],
                  backend)

    def test_matmul_vector_cases(self, backend):
        gradcheck(lambda a, b: (a @ b).sum() + (b.T @ a.T).sum(),
                  [_rand((3, 4), 7), _rand((4, 2), 8)], backend)


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestShapes:
    def test_reshape_transpose_slice(self, backend):
        gradcheck(lambda a: a.reshape(4, 3).transpose(1, 0)[:2],
                  [_rand((2, 6), 9)], backend)

    def test_swapaxes_expand_squeeze(self, backend):
        gradcheck(lambda a: a.expand_dims(0).swapaxes(0, 1).squeeze(1),
                  [_rand((3, 4), 10)], backend)

    def test_getitem_fancy_index(self, backend):
        rows = np.array([2, 0, 2, 1])
        gradcheck(lambda a: a[rows], [_rand((3, 4), 11)], backend)

    def test_concatenate(self, backend):
        gradcheck(lambda a, b: ops.concatenate([a, b], axis=-1),
                  [_rand((3, 2), 12), _rand((3, 2), 13)], backend)

    def test_stack(self, backend):
        gradcheck(lambda a, b: ops.stack([a, b], axis=0),
                  [_rand((3, 2), 12), _rand((3, 2), 13)], backend)


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestReductions:
    def test_sum_axes(self, backend):
        gradcheck(lambda a: a.sum(axis=0) + a.sum(axis=1, keepdims=True).squeeze(1),
                  [_rand((4, 4), 14)], backend)

    def test_mean(self, backend):
        gradcheck(lambda a: a.mean(axis=-1), [_rand((3, 5), 15)], backend)

    def test_max_without_ties(self, backend):
        data = np.arange(12, dtype=np.float64).reshape(3, 4) * 0.37
        gradcheck(lambda a: a.max(axis=1), [data], backend)

    def test_max_splits_gradient_across_ties(self, backend):
        # Non-smooth point: finite differences are meaningless, so the
        # tie-splitting convention is asserted analytically — each of
        # the k tied maxima receives 1/k of the incoming gradient.
        data = np.array([[1.0, 3.0, 3.0, 3.0], [2.0, 2.0, 0.0, 1.0]])
        with use_backend(backend):
            x = Tensor(data, requires_grad=True)
            x.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1 / 3, 1 / 3, 1 / 3],
                             [0.5, 0.5, 0.0, 0.0]])
        np.testing.assert_allclose(x.grad, expected)


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestElementwise:
    def test_exp_log_sqrt(self, backend):
        gradcheck(lambda a: a.exp() + a.log() + a.sqrt(),
                  [_rand((3, 3), 16, low=0.5)], backend)

    def test_abs_tanh_sigmoid_relu(self, backend):
        gradcheck(lambda a: a.abs() + a.tanh() + a.sigmoid() + a.relu(),
                  [_rand((3, 4), 17, low=0.25)], backend)

    def test_clip_interior(self, backend):
        # All entries strictly inside (low, high) or strictly outside:
        # the clip boundaries themselves are non-smooth points.
        data = np.array([[-2.0, -0.4, 0.3, 2.5], [0.9, -0.9, 3.0, -3.0]])
        gradcheck(lambda a: a.clip(-1.0, 1.0), [data], backend)

    def test_fused_chain_of_unaries(self, backend):
        gradcheck(lambda a: a.sigmoid().tanh().exp(),
                  [_rand((4, 3), 18)], backend)

    def test_chain_mixed_with_constants(self, backend):
        constant = Tensor(_rand((4, 3), 19))
        gradcheck(lambda a: (a * constant + 0.5).sigmoid() * 2.0,
                  [_rand((4, 3), 20)], backend)

    def test_softmax_and_log_softmax(self, backend):
        gradcheck(lambda a: ops.softmax(a, axis=-1)
                  + ops.log_softmax(a, axis=-1),
                  [_rand((3, 4), 21)], backend, rtol=1e-4, atol=1e-6)

    def test_maximum_and_where(self, backend):
        condition = np.array([[True, False, True], [False, True, False]])
        gradcheck(lambda a, b: ops.maximum(a, b) + ops.where(condition, a, b),
                  [_rand((2, 3), 22), _rand((2, 3), 23) + 0.05], backend)


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestStructuredOps:
    def test_embedding_with_duplicate_indices(self, backend):
        indices = np.array([1, 1, 3, 0, 1])
        gradcheck(lambda t: ops.embedding(t, indices),
                  [_rand((5, 3), 24)], backend)

    def test_dropout_reuses_the_forward_mask(self, backend):
        # The backward pass must scale by the same mask the forward
        # drew — checked analytically against the realized zero
        # pattern (a fresh-mask bug would decouple the two).
        data = _rand((50, 4), 25, low=0.5)
        with use_backend(backend):
            x = Tensor(data, requires_grad=True)
            out = ops.dropout(x, rate=0.4, training=True,
                              rng=np.random.default_rng(0))
            out.sum().backward()
            mask = (out.data != 0).astype(np.float64)
        assert 0 < mask.sum() < mask.size   # both branches realized
        np.testing.assert_allclose(x.grad, mask / 0.6, rtol=1e-6)

    def test_dropout_eval_mode_is_identity(self, backend):
        gradcheck(lambda a: ops.dropout(a, rate=0.5, training=False),
                  [_rand((3, 3), 26)], backend)

    def test_sparse_matmul(self, backend):
        matrix = sp.random(6, 4, density=0.5, random_state=0,
                           format="csr", dtype=np.float64)
        gradcheck(lambda x: sparse_matmul(matrix, x),
                  [_rand((4, 3), 27)], backend)

    def test_sum_tensors(self, backend):
        gradcheck(lambda a, b, c: ops.sum_tensors([a, b, c]),
                  [_rand((3, 2), s) for s in (28, 29, 30)], backend)


class TestFloat32Smoke:
    """The real float32 fused backend, end to end, loose tolerances."""

    def test_composite_expression(self):
        gradcheck(
            lambda a, b: ((a @ b).sigmoid() * 3.0 + a.sum(axis=1,
                                                          keepdims=True)).relu(),
            [_rand((4, 3), 31), _rand((3, 5), 32)],
            FUSED, eps=1e-2, rtol=2e-2, atol=2e-3)

    def test_embedding_training_step_shape(self):
        indices = np.array([0, 2, 2, 1])
        gradcheck(lambda t: ops.embedding(t, indices).tanh(),
                  [_rand((4, 3), 33)], FUSED, eps=1e-2, rtol=2e-2, atol=2e-3)
