"""Unit tests for the Tensor class: forward values and gradients."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, no_grad, ones, tensor, unbroadcast, zeros
from tests.helpers import assert_grad_matches


class TestConstruction:
    def test_tensor_from_list(self):
        t = tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_zeros_and_ones(self):
        assert np.all(zeros((2, 3)).data == 0.0)
        assert np.all(ones((2, 3)).data == 1.0)

    def test_requires_grad_default_false(self):
        assert not tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert tensor(3.5).item() == 3.5

    def test_len_and_size(self):
        t = tensor(np.arange(6.0).reshape(2, 3))
        assert len(t) == 2
        assert t.size == 6
        assert t.ndim == 2

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert np.all(b.data == [2.0, 4.0])

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestArithmeticForward:
    def test_add(self):
        assert np.all((tensor([1.0]) + tensor([2.0])).data == 3.0)

    def test_add_scalar(self):
        assert np.all((tensor([1.0]) + 2.0).data == 3.0)

    def test_radd(self):
        assert np.all((2.0 + tensor([1.0])).data == 3.0)

    def test_sub(self):
        assert np.all((tensor([5.0]) - tensor([2.0])).data == 3.0)

    def test_rsub(self):
        assert np.all((5.0 - tensor([2.0])).data == 3.0)

    def test_mul(self):
        assert np.all((tensor([3.0]) * tensor([4.0])).data == 12.0)

    def test_div(self):
        assert np.all((tensor([8.0]) / tensor([2.0])).data == 4.0)

    def test_rdiv(self):
        assert np.all((8.0 / tensor([2.0])).data == 4.0)

    def test_neg(self):
        assert np.all((-tensor([3.0])).data == -3.0)

    def test_pow(self):
        assert np.all((tensor([3.0]) ** 2).data == 9.0)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            tensor([2.0]) ** tensor([2.0])

    def test_matmul_2d(self):
        a = tensor(np.eye(2))
        b = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a @ b).data, b.data)

    def test_comparisons_return_numpy(self):
        a = tensor([1.0, 3.0])
        assert np.all((a > 2.0) == [False, True])
        assert np.all((a < 2.0) == [True, False])
        assert np.all((a >= 1.0) == [True, True])
        assert np.all((a <= 1.0) == [True, False])


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 1.0]))
        assert np.allclose(a.grad, [3.0, 3.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).sum().backward()
        (a * a).sum().backward()
        assert np.allclose(a.grad, [8.0])

    def test_zero_grad(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulation(self):
        # f = (a*2) + (a*3): gradient must be 5, not 2 or 3.
        a = Tensor([1.0], requires_grad=True)
        ((a * 2) + (a * 3)).sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_reused_node_accumulation(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        (b * b).sum().backward()
        assert np.allclose(a.grad, [2 * 3 * 2.0 * 3])

    def test_no_grad_context(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_restores_state(self):
        a = Tensor([1.0], requires_grad=True)
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert (a * 2).requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_prepended_axis(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 4.0)

    def test_size_one_axis(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3.0)

    def test_combined(self):
        g = np.ones((5, 2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.all(out == 10.0)


class TestGradientsNumerical:
    """Every op's gradient versus central finite differences."""

    def _param(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(0.5, 1.0, size=shape), requires_grad=True)

    def test_add_broadcast(self):
        a = self._param((3, 4))
        b = self._param((4,), seed=1)
        assert_grad_matches(lambda: ((a + b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a + b) ** 2).sum(), b)

    def test_sub(self):
        a = self._param((3, 4))
        b = self._param((3, 4), seed=1)
        assert_grad_matches(lambda: ((a - b) ** 3).sum(), b)

    def test_mul_broadcast(self):
        a = self._param((2, 3, 4))
        b = self._param((3, 1), seed=1)
        assert_grad_matches(lambda: (a * b).sum(), b)

    def test_div(self):
        a = self._param((3,))
        b = Tensor(np.array([1.5, 2.5, 3.5]), requires_grad=True)
        assert_grad_matches(lambda: (a / b).sum(), a)
        assert_grad_matches(lambda: (a / b).sum(), b)

    def test_pow(self):
        a = Tensor(np.array([1.2, 2.3, 0.7]), requires_grad=True)
        assert_grad_matches(lambda: (a ** 3).sum(), a)

    def test_matmul_2d(self):
        a = self._param((3, 4))
        b = self._param((4, 2), seed=1)
        assert_grad_matches(lambda: (a @ b).sum(), a)
        assert_grad_matches(lambda: (a @ b).sum(), b)

    def test_matmul_batched(self):
        a = self._param((2, 3, 4))
        b = self._param((2, 4, 5), seed=1)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_broadcast_batch(self):
        a = self._param((2, 3, 4))
        b = self._param((4, 5), seed=1)
        assert_grad_matches(lambda: (a @ b).sum(), a)
        assert_grad_matches(lambda: (a @ b).sum(), b)

    def test_matmul_vector_right(self):
        a = self._param((3, 4))
        b = self._param((4,), seed=1)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_vector_left(self):
        a = self._param((4,))
        b = self._param((4, 3), seed=1)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), a)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_matmul_vector_both(self):
        a = self._param((4,))
        b = self._param((4,), seed=1)
        assert_grad_matches(lambda: (a @ b) * (a @ b), a)

    def test_matmul_vector_batched_right(self):
        a = self._param((2, 3, 4))
        b = self._param((4,), seed=1)
        assert_grad_matches(lambda: ((a @ b) ** 2).sum(), b)

    def test_sum_all(self):
        a = self._param((3, 4))
        assert_grad_matches(lambda: (a.sum() ** 2), a)

    def test_sum_axis(self):
        a = self._param((3, 4))
        assert_grad_matches(lambda: (a.sum(axis=1) ** 2).sum(), a)

    def test_sum_axis_keepdims(self):
        a = self._param((3, 4))
        assert_grad_matches(lambda: (a.sum(axis=0, keepdims=True) ** 2).sum(), a)

    def test_sum_tuple_axes(self):
        a = self._param((2, 3, 4))
        assert_grad_matches(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), a)

    def test_mean(self):
        a = self._param((3, 4))
        assert_grad_matches(lambda: (a.mean(axis=1) ** 2).sum(), a)

    def test_max_all(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        assert_grad_matches(lambda: a.max() * 2, a)

    def test_max_axis(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        assert_grad_matches(lambda: (a.max(axis=1) ** 2).sum(), a)

    def test_exp(self):
        a = self._param((3,))
        assert_grad_matches(lambda: a.exp().sum(), a)

    def test_log(self):
        a = Tensor(np.array([0.5, 1.5, 2.5]), requires_grad=True)
        assert_grad_matches(lambda: a.log().sum(), a)

    def test_sqrt(self):
        a = Tensor(np.array([0.5, 1.5, 2.5]), requires_grad=True)
        assert_grad_matches(lambda: a.sqrt().sum(), a)

    def test_abs(self):
        a = Tensor(np.array([-1.5, 2.5, -0.5]), requires_grad=True)
        assert_grad_matches(lambda: a.abs().sum(), a)

    def test_tanh(self):
        a = self._param((3, 4))
        assert_grad_matches(lambda: a.tanh().sum(), a)

    def test_sigmoid(self):
        a = self._param((3, 4))
        assert_grad_matches(lambda: a.sigmoid().sum(), a)

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-800.0, 800.0]), requires_grad=True)
        out = a.sigmoid()
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(0.0, abs=1e-12)
        assert out.data[1] == pytest.approx(1.0, abs=1e-12)

    def test_relu(self):
        a = Tensor(np.array([-1.5, 2.5, -0.5, 3.0]), requires_grad=True)
        assert_grad_matches(lambda: (a.relu() ** 2).sum(), a)

    def test_clip(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        assert_grad_matches(lambda: a.clip(-1.0, 1.0).sum(), a)


class TestShapeOps:
    def _param(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(size=shape), requires_grad=True)

    def test_reshape_forward(self):
        a = self._param((2, 6))
        assert a.reshape(3, 4).shape == (3, 4)
        assert a.reshape((3, 4)).shape == (3, 4)

    def test_reshape_grad(self):
        a = self._param((2, 6))
        assert_grad_matches(lambda: (a.reshape(3, 4) ** 2).sum(), a)

    def test_transpose_default(self):
        a = self._param((2, 3))
        assert a.T.shape == (3, 2)
        assert_grad_matches(lambda: (a.T @ a).sum(), a)

    def test_transpose_axes(self):
        a = self._param((2, 3, 4))
        assert a.transpose(1, 0, 2).shape == (3, 2, 4)
        assert_grad_matches(lambda: (a.transpose(2, 0, 1) ** 2).sum(), a)

    def test_swapaxes(self):
        a = self._param((2, 3, 4))
        assert a.swapaxes(1, 2).shape == (2, 4, 3)
        assert_grad_matches(lambda: (a.swapaxes(0, 2) ** 2).sum(), a)

    def test_expand_dims_and_squeeze(self):
        a = self._param((3, 4))
        assert a.expand_dims(1).shape == (3, 1, 4)
        assert a.expand_dims(1).squeeze(1).shape == (3, 4)
        assert_grad_matches(lambda: (a.expand_dims(0) ** 2).sum(), a)

    def test_getitem_rows(self):
        a = self._param((5, 3))
        assert_grad_matches(lambda: (a[np.array([0, 2, 2])] ** 2).sum(), a)

    def test_getitem_slice(self):
        a = self._param((5, 3))
        assert_grad_matches(lambda: (a[1:4] ** 2).sum(), a)
