"""Tests for functional ops: softmax, concat, stack, embedding, dropout."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from tests.helpers import assert_grad_matches


def _param(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        s = ops.softmax(_param((4, 5)))
        np.testing.assert_allclose(s.data.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]), requires_grad=True)
        s = ops.softmax(x)
        assert np.all(np.isfinite(s.data))
        np.testing.assert_allclose(s.data[0, :2], 0.5, atol=1e-9)

    def test_axis_argument(self):
        s = ops.softmax(_param((3, 4)), axis=0)
        np.testing.assert_allclose(s.data.sum(axis=0), 1.0)

    def test_gradient(self):
        a = _param((3, 4))
        assert_grad_matches(lambda: (ops.softmax(a) ** 2).sum(), a)

    def test_log_softmax_matches_log_of_softmax(self):
        a = _param((3, 4))
        np.testing.assert_allclose(
            ops.log_softmax(a).data, np.log(ops.softmax(a).data), atol=1e-12
        )

    def test_log_softmax_gradient(self):
        a = _param((2, 3))
        assert_grad_matches(lambda: (ops.log_softmax(a) * ops.log_softmax(a)).sum(), a)


class TestConcatenateStack:
    def test_concatenate_forward(self):
        a, b = _param((2, 3)), _param((2, 2), seed=1)
        out = ops.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data[:, :3], a.data)

    def test_concatenate_gradient(self):
        a, b = _param((2, 3)), _param((2, 2), seed=1)
        assert_grad_matches(lambda: (ops.concatenate([a, b], axis=1) ** 2).sum(), a)
        assert_grad_matches(lambda: (ops.concatenate([a, b], axis=1) ** 2).sum(), b)

    def test_concatenate_axis0(self):
        a, b = _param((2, 3)), _param((4, 3), seed=1)
        assert ops.concatenate([a, b], axis=0).shape == (6, 3)

    def test_stack_forward(self):
        a, b = _param((2, 3)), _param((2, 3), seed=1)
        assert ops.stack([a, b], axis=0).shape == (2, 2, 3)
        assert ops.stack([a, b], axis=1).shape == (2, 2, 3)

    def test_stack_gradient(self):
        a, b = _param((2, 3)), _param((2, 3), seed=1)
        assert_grad_matches(lambda: (ops.stack([a, b], axis=1) ** 2).sum(), b)


class TestEmbedding:
    def test_forward_shape(self):
        table = _param((10, 4))
        idx = np.array([[1, 2], [3, 3]])
        assert ops.embedding(table, idx).shape == (2, 2, 4)

    def test_rejects_float_indices(self):
        with pytest.raises(TypeError):
            ops.embedding(_param((10, 4)), np.array([1.0, 2.0]))

    def test_duplicate_index_grad_accumulates(self):
        table = _param((5, 3))
        idx = np.array([2, 2, 2])
        out = ops.embedding(table, idx).sum()
        out.backward()
        np.testing.assert_allclose(table.grad[2], 3.0)
        np.testing.assert_allclose(table.grad[0], 0.0)

    def test_gradient_numerical(self):
        table = _param((6, 3))
        idx = np.array([[0, 5, 2], [2, 2, 1]])
        assert_grad_matches(lambda: (ops.embedding(table, idx) ** 2).sum(), table)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = _param((100,))
        out = ops.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_rate_is_identity(self):
        x = _param((100,))
        assert ops.dropout(x, 0.0, training=True) is x

    def test_rejects_rate_one(self):
        with pytest.raises(ValueError):
            ops.dropout(_param((10,)), 1.0, training=True)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(20000))
        out = ops.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_gradient_matches_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(50), requires_grad=True)
        out = ops.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        dropped = out.data == 0
        np.testing.assert_allclose(x.grad[dropped], 0.0)
        np.testing.assert_allclose(x.grad[~dropped], 2.0)


class TestMiscOps:
    def test_maximum_forward(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        np.testing.assert_allclose(ops.maximum(a, b).data, [3.0, 5.0])

    def test_maximum_gradient(self):
        a = Tensor(np.array([1.0, 5.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0, 7.0]), requires_grad=True)
        assert_grad_matches(lambda: (ops.maximum(a, b) ** 2).sum(), a)
        assert_grad_matches(lambda: (ops.maximum(a, b) ** 2).sum(), b)

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = ops.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        assert_grad_matches(lambda: (ops.where(cond, a, b) ** 2).sum(), a)
        assert_grad_matches(lambda: (ops.where(cond, a, b) ** 2).sum(), b)

    def test_sum_tensors(self):
        parts = [_param((2, 2), seed=s) for s in range(3)]
        total = ops.sum_tensors(parts)
        np.testing.assert_allclose(total.data, sum(p.data for p in parts))

    def test_square_and_identity(self):
        a = _param((3,))
        np.testing.assert_allclose(ops.square(a).data, a.data ** 2)
        assert ops.identity(a) is a
