"""Edge-case and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset
from repro.data.splits import leave_one_out_split, random_split
from repro.models import MF
from repro.training import TrainConfig, Trainer
from tests.helpers import make_tiny_dataset


class TestEmptyDataset:
    @pytest.fixture
    def empty(self):
        return RecDataset("empty", 4, 5,
                          users=np.empty(0, dtype=np.int64),
                          items=np.empty(0, dtype=np.int64))

    def test_construction(self, empty):
        assert empty.n_interactions == 0
        assert empty.sparsity() == 1.0

    def test_encode_empty_batch(self, empty):
        idx, val = empty.encode(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.int64))
        assert idx.shape == (0, 2)

    def test_splits_handle_empty(self, empty):
        train, valid, test = random_split(empty, seed=0)
        assert train.size == valid.size == test.size == 0
        train, test = leave_one_out_split(empty)
        assert train.size == test.size == 0

    def test_positives_all_empty(self, empty):
        assert all(len(s) == 0 for s in empty.positives_by_user())


class TestTrainerEdges:
    def test_zero_epochs(self):
        ds = make_tiny_dataset()
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=0, lr=0.01))
        result = trainer.fit_pointwise(ds.users, ds.items,
                                       np.ones(ds.n_interactions))
        assert result.train_losses == []
        assert result.best_epoch == -1

    def test_single_sample_batch(self):
        ds = make_tiny_dataset()
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=2, lr=0.01, batch_size=1024))
        result = trainer.fit_pointwise(
            ds.users[:1], ds.items[:1], np.ones(1)
        )
        assert len(result.train_losses) == 2

    def test_training_with_nan_labels_propagates_visibly(self):
        """NaN labels must surface as NaN losses, not silently succeed."""
        ds = make_tiny_dataset()
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=1, lr=0.01))
        labels = np.full(ds.n_interactions, np.nan)
        result = trainer.fit_pointwise(ds.users, ds.items, labels)
        assert np.isnan(result.train_losses[0])


class TestAutogradEdges:
    def test_embedding_out_of_range_raises(self):
        table = Tensor(np.zeros((5, 3)), requires_grad=True)
        with pytest.raises(IndexError):
            ops.embedding(table, np.array([7]))

    def test_empty_batch_forward(self):
        ds = make_tiny_dataset()
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        out = model.predict(np.empty(0, dtype=np.int64),
                            np.empty(0, dtype=np.int64))
        assert out.shape == (0,)

    def test_deep_graph_backward_no_recursion_limit(self):
        # 3000 chained ops would blow Python's recursion limit if the
        # topological sort were recursive.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.sum().backward()
        assert x.grad is not None and np.isfinite(x.grad[0])

    def test_backward_twice_from_same_node(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * x).sum()
        y.backward()
        y.backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_mixed_grad_and_nograd_operands(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=False)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)
        assert b.grad is None


class TestEncodingConsistency:
    def test_subset_and_parent_encode_identically(self):
        ds = make_tiny_dataset()
        sub = ds.subset(np.arange(5))
        a = ds.encode(ds.users[:5], ds.items[:5])
        b = sub.encode(ds.users[:5], ds.items[:5])
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_select_fields_reindexes_globals(self):
        ds = make_tiny_dataset()
        view = ds.select_fields(["category"])
        idx, _val = view.encode(ds.users[:5], ds.items[:5])
        assert idx.max() < view.n_features
