"""Shared pytest fixtures."""

import numpy as np
import pytest

from tests.helpers import make_tiny_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_dataset():
    return make_tiny_dataset(seed=0)
