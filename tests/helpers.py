"""Shared test utilities: numerical gradient checking and tiny datasets."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataset import RecDataset


def numerical_gradient(f: Callable[[], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of array ``x``.

    ``f`` must recompute the value from the *current contents* of ``x``
    (the array is perturbed in place and restored).
    """
    grad = np.zeros_like(x)
    iterator = np.nditer(x, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = x[index]
        x[index] = original + eps
        f_plus = f()
        x[index] = original - eps
        f_minus = f()
        x[index] = original
        grad[index] = (f_plus - f_minus) / (2.0 * eps)
        iterator.iternext()
    return grad


def assert_grad_matches(build: Callable[[], Tensor], param: Tensor,
                        atol: float = 1e-6, rtol: float = 1e-5) -> None:
    """Check the autograd gradient of ``param`` against finite differences.

    ``build`` constructs (and returns) the scalar loss tensor from
    scratch each call, reading ``param.data``.
    """
    param.zero_grad()
    loss = build()
    loss.backward()
    analytic = param.grad.copy()
    numeric = numerical_gradient(lambda: build().item(), param.data)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def make_tiny_dataset(seed: int = 0, n_users: int = 12, n_items: int = 15) -> RecDataset:
    """Small deterministic dataset with one single-slot and one multi-hot attribute."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(2, 6, size=n_users)
    users, items, times = [], [], []
    for u in range(n_users):
        chosen = rng.choice(n_items, size=counts[u], replace=False)
        users.extend([u] * counts[u])
        items.extend(chosen.tolist())
        times.extend((100 * u + np.arange(counts[u])).tolist())
    category = rng.integers(0, 4, size=n_items).reshape(-1, 1)
    tags_idx = rng.integers(0, 5, size=(n_items, 2))
    tags_val = (rng.random((n_items, 2)) < 0.7).astype(np.float64)
    gender = rng.integers(0, 2, size=n_users).reshape(-1, 1)
    return RecDataset(
        name="tiny",
        n_users=n_users,
        n_items=n_items,
        users=np.array(users),
        items=np.array(items),
        timestamps=np.array(times),
        user_attrs={"gender": (gender, np.ones_like(gender, dtype=np.float64))},
        item_attrs={
            "category": (category, np.ones_like(category, dtype=np.float64)),
            "tags": (tags_idx, tags_val),
        },
    )
