"""Test package."""
