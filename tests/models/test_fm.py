"""Tests for the vanilla FM: the O(kn) identity versus brute force."""

import numpy as np
import pytest

from repro.models.fm import FactorizationMachine
from tests.helpers import make_tiny_dataset


@pytest.fixture
def ds():
    return make_tiny_dataset()


class TestFactorizationMachine:
    def test_output_shape(self, ds):
        model = FactorizationMachine(ds, k=8, rng=np.random.default_rng(0))
        assert model.score(ds.users[:7], ds.items[:7]).shape == (7,)

    def test_matches_bruteforce_pairwise(self, ds):
        """½[(Σxv)² − Σ(xv)²] must equal Σ_{i<j} ⟨v_i,v_j⟩ x_i x_j."""
        model = FactorizationMachine(ds, k=6, rng=np.random.default_rng(1))
        users, items = ds.users[:20], ds.items[:20]
        scores = model.predict(users, items)

        idx, val = ds.encode(users, items)
        V = model.embeddings.weight.data
        w = model.linear.weight.data[:, 0]
        left, right = np.triu_indices(val.shape[1], k=1)
        expected = np.full(users.size, model.bias.data.item())
        for b in range(users.size):
            expected[b] += (w[idx[b]] * val[b]).sum()
            for i, j in zip(left, right):
                expected[b] += (
                    V[idx[b, i]] @ V[idx[b, j]] * val[b, i] * val[b, j]
                )
        np.testing.assert_allclose(scores, expected, atol=1e-10)

    def test_padding_slots_inert(self, ds):
        """Changing the embedding of a zero-valued slot's index must not
        change the score (beyond that index's other appearances)."""
        model = FactorizationMachine(ds, k=4, rng=np.random.default_rng(2))
        # Find a sample with a padded tag slot.
        idx, val = ds.encode(ds.users, ds.items)
        tags_start = ds.feature_space.slot_start("tags")
        padded_rows = np.where(val[:, tags_start + 1] == 0.0)[0]
        assert padded_rows.size > 0
        row = padded_rows[0]
        before = model.predict(ds.users[row:row + 1], ds.items[row:row + 1])

        padded_index = idx[row, tags_start + 1]
        # Only safe if that index is not active elsewhere in this sample.
        active = idx[row][val[row] > 0]
        if padded_index not in active:
            model.embeddings.weight.data[padded_index] += 100.0
            after = model.predict(ds.users[row:row + 1], ds.items[row:row + 1])
            np.testing.assert_allclose(before, after, atol=1e-9)

    def test_trainable(self, ds):
        from repro.training import Trainer, TrainConfig
        from repro.data.sampling import NegativeSampler
        model = FactorizationMachine(ds, k=8, rng=np.random.default_rng(3))
        sampler = NegativeSampler(ds, seed=0)
        users, items, labels = sampler.build_pointwise_training_set(
            np.arange(ds.n_interactions), n_neg=1
        )
        trainer = Trainer(model, TrainConfig(epochs=20, lr=0.05, seed=0))
        result = trainer.fit_pointwise(users, items, labels)
        assert result.train_losses[-1] < result.train_losses[0] * 0.8

    def test_item_embeddings_accessor(self, ds):
        model = FactorizationMachine(ds, k=4, rng=np.random.default_rng(0))
        offset = ds.feature_space.offset("item")
        out = model.item_embeddings(np.array([1, 2]), offset)
        assert out.shape == (2, 4)
