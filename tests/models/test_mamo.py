"""Tests for the MAMO meta-learning cold-start baseline."""

import numpy as np
import pytest

from repro.models.mamo import MAMO
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


@pytest.fixture
def model(ds):
    return MAMO(ds, k=6, n_memory=4, local_lr=0.1, local_steps=2,
                rng=np.random.default_rng(0))


class TestPersonalizedInit:
    def test_shape(self, model):
        assert model.personalized_init(0).shape == (6,)

    def test_differs_across_users_with_different_attrs(self, ds, model):
        gender_idx, _ = ds.user_attrs["gender"]
        a = np.where(gender_idx[:, 0] == 0)[0][0]
        b = np.where(gender_idx[:, 0] == 1)[0][0]
        ea = model.personalized_init(int(a)).data
        eb = model.personalized_init(int(b)).data
        assert not np.allclose(ea, eb)

    def test_no_user_attrs_fallback(self):
        ds = make_tiny_dataset()
        bare = ds.select_fields(["category"])  # drops gender
        model = MAMO(bare, k=4, rng=np.random.default_rng(0))
        assert model.personalized_init(0).shape == (4,)


class TestAdaptation:
    def test_adapt_reduces_support_loss(self, ds, model):
        user = 0
        items = ds.items[ds.users == user]
        labels = np.ones(items.size)
        init_node, delta = model.adapt(user, items, labels)

        def support_loss(embedding):
            from repro.autograd.tensor import Tensor, no_grad
            with no_grad():
                scores = model._score_items(Tensor(embedding), items)
            return float(((scores.data - labels) ** 2).mean())

        before = support_loss(init_node.data)
        after = support_loss(init_node.data + delta)
        assert after <= before

    def test_predict_for_user_without_support(self, ds, model):
        scores = model.predict_for_user(0, np.empty(0), np.empty(0),
                                        np.array([0, 1, 2]))
        assert scores.shape == (3,)
        assert np.all(np.isfinite(scores))

    def test_predict_for_user_with_support(self, ds, model):
        items = ds.items[ds.users == 1]
        scores = model.predict_for_user(
            1, items[:2], np.ones(2), np.array([0, 1, 2])
        )
        assert scores.shape == (3,)


class TestMetaTraining:
    def test_meta_fit_reduces_query_loss(self, ds):
        model = MAMO(ds, k=6, n_memory=4, local_lr=0.1, local_steps=2,
                     rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        # Balanced ±1 labels over the training interactions.
        users = ds.users
        items = ds.items
        labels = rng.choice([-1.0, 1.0], users.size)
        history = model.meta_fit(users, items, labels, epochs=4, meta_lr=0.05,
                                 seed=0)
        assert len(history) == 4
        assert history[-1] < history[0]

    def test_score_batch_interface(self, ds, model):
        scores = model.score(ds.users[:4], ds.items[:4])
        assert scores.shape == (4,)
