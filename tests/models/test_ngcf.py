"""Tests for NGCF and its graph construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.models.ngcf import NGCF, build_normalized_adjacency
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


class TestAdjacency:
    def test_shape(self, ds):
        A = build_normalized_adjacency(ds.n_users, ds.n_items, ds.users, ds.items)
        n = ds.n_users + ds.n_items
        assert A.shape == (n, n)

    def test_symmetric(self, ds):
        A = build_normalized_adjacency(ds.n_users, ds.n_items, ds.users, ds.items)
        diff = (A - A.T)
        assert abs(diff).max() < 1e-12

    def test_bipartite_blocks_empty(self, ds):
        A = build_normalized_adjacency(ds.n_users, ds.n_items, ds.users, ds.items).toarray()
        nu = ds.n_users
        assert np.all(A[:nu, :nu] == 0)      # no user-user edges
        assert np.all(A[nu:, nu:] == 0)      # no item-item edges

    def test_spectral_radius_bounded(self, ds):
        A = build_normalized_adjacency(ds.n_users, ds.n_items, ds.users, ds.items)
        eigenvalues = np.linalg.eigvalsh(A.toarray())
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_isolated_node_handled(self):
        A = build_normalized_adjacency(3, 3, np.array([0]), np.array([0]))
        assert np.all(np.isfinite(A.toarray()))


class TestNGCF:
    def test_forward_shape(self, ds):
        model = NGCF(ds.n_users, ds.n_items, k=4, n_layers=2,
                     train_users=ds.users, train_items=ds.items,
                     rng=np.random.default_rng(0))
        assert model.score(ds.users[:6], ds.items[:6]).shape == (6,)

    def test_representation_concatenates_layers(self, ds):
        model = NGCF(ds.n_users, ds.n_items, k=4, n_layers=2,
                     train_users=ds.users, train_items=ds.items,
                     rng=np.random.default_rng(0))
        reps = model.propagate()
        assert reps.shape == (ds.n_users + ds.n_items, 4 * 3)

    def test_empty_graph_allowed(self, ds):
        model = NGCF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        assert np.all(np.isfinite(model.predict(ds.users[:5], ds.items[:5])))

    def test_set_training_graph(self, ds):
        model = NGCF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        before = model.predict(ds.users[:5], ds.items[:5])
        model.set_training_graph(ds.users, ds.items)
        after = model.predict(ds.users[:5], ds.items[:5])
        assert not np.allclose(before, after)

    def test_gradients_flow_to_embeddings(self, ds):
        model = NGCF(ds.n_users, ds.n_items, k=4, n_layers=1,
                     train_users=ds.users, train_items=ds.items,
                     rng=np.random.default_rng(0))
        model.score(ds.users[:8], ds.items[:8]).sum().backward()
        assert model.embeddings.weight.grad is not None
        assert np.any(model.embeddings.weight.grad != 0)

    def test_pairwise_flag(self, ds):
        assert NGCF(ds.n_users, ds.n_items, k=2).pairwise is True
