"""Tests for the MF-family baselines: MF, PMF, NCF, BPR-MF."""

import numpy as np
import pytest

from repro.models import BPRMF, MF, NCF, PMF
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


@pytest.mark.parametrize("cls", [MF, PMF, NCF, BPRMF])
class TestCommonBehaviour:
    def test_shape(self, ds, cls):
        model = cls(ds.n_users, ds.n_items, k=6, rng=np.random.default_rng(0))
        assert model.score(ds.users[:7], ds.items[:7]).shape == (7,)

    def test_finite(self, ds, cls):
        model = cls(ds.n_users, ds.n_items, k=6, rng=np.random.default_rng(0))
        assert np.all(np.isfinite(model.predict(ds.users, ds.items)))

    def test_gradients_flow(self, ds, cls):
        model = cls(ds.n_users, ds.n_items, k=6, rng=np.random.default_rng(1))
        (model.score(ds.users[:10], ds.items[:10]) ** 2).mean().backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None for g in grads)


class TestMF:
    def test_score_formula(self, ds):
        model = MF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        u, i = np.array([2]), np.array([3])
        p = model.user_factors.weight.data[2]
        q = model.item_factors.weight.data[3]
        expected = (
            model.bias.data.item()
            + model.user_bias.weight.data[2, 0]
            + model.item_bias.weight.data[3, 0]
            + p @ q
        )
        np.testing.assert_allclose(model.predict(u, i), [expected], atol=1e-12)

    def test_fits_ratings(self, ds):
        from repro.training import TrainConfig, Trainer
        model = MF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        users = rng.integers(0, ds.n_users, 200)
        items = rng.integers(0, ds.n_items, 200)
        labels = rng.choice([-1.0, 1.0], 200)
        trainer = Trainer(model, TrainConfig(epochs=30, lr=0.05, seed=0))
        result = trainer.fit_pointwise(users, items, labels)
        assert result.train_losses[-1] < result.train_losses[0] * 0.5


class TestPMF:
    def test_no_bias_parameters(self, ds):
        model = PMF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        names = [n for n, _ in model.named_parameters()]
        assert all("bias" not in n for n in names)

    def test_score_is_pure_inner_product(self, ds):
        model = PMF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        p = model.user_factors.weight.data[1]
        q = model.item_factors.weight.data[2]
        np.testing.assert_allclose(
            model.predict(np.array([1]), np.array([2])), [p @ q], atol=1e-12
        )


class TestNCF:
    def test_separate_embedding_tables(self, ds):
        model = NCF(ds.n_users, ds.n_items, k=4, rng=np.random.default_rng(0))
        assert not np.shares_memory(
            model.gmf_user.weight.data, model.mlp_user.weight.data
        )

    def test_custom_hidden(self, ds):
        model = NCF(ds.n_users, ds.n_items, k=4, hidden=[8],
                    rng=np.random.default_rng(0))
        assert np.all(np.isfinite(model.predict(ds.users[:5], ds.items[:5])))


class TestBPRMF:
    def test_pairwise_flag(self, ds):
        model = BPRMF(ds.n_users, ds.n_items, k=4)
        assert model.pairwise is True

    def test_bpr_training_ranks_positives_higher(self, ds):
        from repro.data.sampling import NegativeSampler
        from repro.training import TrainConfig, Trainer

        model = BPRMF(ds.n_users, ds.n_items, k=8, rng=np.random.default_rng(0))
        sampler = NegativeSampler(ds, seed=0)
        users, positives, negatives = sampler.build_pairwise_training_set(
            np.arange(ds.n_interactions), n_neg=3
        )
        trainer = Trainer(model, TrainConfig(epochs=30, lr=0.05, seed=0))
        trainer.fit_pairwise(users, positives, negatives)
        pos_scores = model.predict(users, positives)
        neg_scores = model.predict(users, negatives)
        assert (pos_scores > neg_scores).mean() > 0.8
