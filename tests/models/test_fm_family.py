"""Shared behaviour tests for all FM-family baselines plus
model-specific checks (NFM, DeepFM, xDeepFM, AFM, TransFM)."""

import numpy as np
import pytest

from repro.models import AFM, NFM, DeepFM, FactorizationMachine, TransFM, XDeepFM
from tests.helpers import make_tiny_dataset

MODEL_CLASSES = [FactorizationMachine, NFM, DeepFM, XDeepFM, AFM, TransFM]


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


@pytest.mark.parametrize("cls", MODEL_CLASSES)
class TestCommonBehaviour:
    def test_forward_shape(self, ds, cls):
        model = cls(ds, k=6, rng=np.random.default_rng(0))
        assert model.score(ds.users[:9], ds.items[:9]).shape == (9,)

    def test_finite_outputs(self, ds, cls):
        model = cls(ds, k=6, rng=np.random.default_rng(0))
        scores = model.predict(ds.users, ds.items)
        assert np.all(np.isfinite(scores))

    def test_all_parameters_receive_gradients(self, ds, cls):
        model = cls(ds, k=6, rng=np.random.default_rng(1))
        model.train()
        loss = (model.score(ds.users[:20], ds.items[:20]) ** 2).mean()
        loss.backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert not missing, f"{cls.__name__} params without grad: {missing}"

    def test_seeded_reproducibility(self, ds, cls):
        a = cls(ds, k=6, rng=np.random.default_rng(7))
        b = cls(ds, k=6, rng=np.random.default_rng(7))
        sa = a.predict(ds.users[:10], ds.items[:10])
        sb = b.predict(ds.users[:10], ds.items[:10])
        np.testing.assert_allclose(sa, sb)

    def test_loss_decreases_when_training(self, ds, cls):
        from repro.data.sampling import NegativeSampler
        from repro.training import TrainConfig, Trainer

        model = cls(ds, k=6, rng=np.random.default_rng(2))
        sampler = NegativeSampler(ds, seed=0)
        users, items, labels = sampler.build_pointwise_training_set(
            np.arange(ds.n_interactions), n_neg=1
        )
        trainer = Trainer(model, TrainConfig(epochs=12, lr=0.02, seed=0))
        result = trainer.fit_pointwise(users, items, labels)
        assert result.train_losses[-1] < result.train_losses[0]


class TestNFM:
    def test_bi_interaction_matches_bruteforce(self, ds):
        model = NFM(ds, k=5, rng=np.random.default_rng(0))
        users, items = ds.users[:10], ds.items[:10]
        idx, val = ds.encode(users, items)
        pooled = model.bi_interaction(idx, val).data

        V = model.embeddings.weight.data
        left, right = np.triu_indices(val.shape[1], k=1)
        expected = np.zeros((10, 5))
        for b in range(10):
            for i, j in zip(left, right):
                expected[b] += (
                    val[b, i] * V[idx[b, i]] * val[b, j] * V[idx[b, j]]
                )
        np.testing.assert_allclose(pooled, expected, atol=1e-10)

    def test_zero_layers_allowed(self, ds):
        model = NFM(ds, k=5, n_layers=0, rng=np.random.default_rng(0))
        assert np.all(np.isfinite(model.predict(ds.users[:5], ds.items[:5])))


class TestDeepFM:
    def test_contains_fm_term(self, ds):
        """With the deep tower zeroed, DeepFM must reduce to vanilla FM."""
        rng = np.random.default_rng(3)
        deep = DeepFM(ds, k=5, rng=np.random.default_rng(4))
        fm = FactorizationMachine(ds, k=5, rng=np.random.default_rng(4))
        fm.embeddings.weight.data[...] = deep.embeddings.weight.data
        fm.linear.weight.data[...] = deep.linear.weight.data
        fm.bias.data[...] = deep.bias.data
        # Zero the deep head.
        deep.head.weight.data[...] = 0.0
        deep.head.bias.data[...] = 0.0
        np.testing.assert_allclose(
            deep.predict(ds.users[:10], ds.items[:10]),
            fm.predict(ds.users[:10], ds.items[:10]),
            atol=1e-10,
        )


class TestXDeepFM:
    def test_cin_layer_sizes(self, ds):
        model = XDeepFM(ds, k=4, cin_sizes=[3, 2], rng=np.random.default_rng(0))
        idx, val = ds.encode(ds.users[:6], ds.items[:6])
        from repro.autograd.tensor import Tensor
        xv = Tensor(val).expand_dims(-1) * model.embeddings(idx)
        pooled = model._cin(xv)
        assert pooled.shape == (6, 5)  # 3 + 2 pooled features

    def test_custom_cin_sizes(self, ds):
        model = XDeepFM(ds, k=4, cin_sizes=[2], rng=np.random.default_rng(0))
        assert np.all(np.isfinite(model.predict(ds.users[:5], ds.items[:5])))


class TestAFM:
    def test_attention_weights_sum_to_one(self, ds):
        from repro.autograd import ops
        from repro.autograd.tensor import Tensor

        model = AFM(ds, k=5, rng=np.random.default_rng(0))
        idx, val = ds.encode(ds.users[:6], ds.items[:6])
        x = Tensor(val)
        xv = x.expand_dims(-1) * model.embeddings(idx)
        e = xv[:, model._left, :] * xv[:, model._right, :]
        logits = model.attention(e).relu() @ model.attention_vector
        weights = ops.softmax(logits, axis=-1)
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0)


class TestTransFM:
    def test_translation_vectors_change_scores(self, ds):
        model = TransFM(ds, k=5, rng=np.random.default_rng(0))
        before = model.predict(ds.users[:10], ds.items[:10])
        model.translations.weight.data += 1.0
        after = model.predict(ds.users[:10], ds.items[:10])
        assert not np.allclose(before, after)

    def test_interaction_is_translated_distance(self, ds):
        """Score must equal the explicit Σ d(v_i + v'_i, v_j) x_i x_j."""
        model = TransFM(ds, k=4, rng=np.random.default_rng(1))
        users, items = ds.users[:8], ds.items[:8]
        idx, val = ds.encode(users, items)
        V = model.embeddings.weight.data
        T = model.translations.weight.data
        w = model.linear.weight.data[:, 0]
        left, right = np.triu_indices(val.shape[1], k=1)
        expected = np.full(8, model.bias.data.item())
        for b in range(8):
            expected[b] += (w[idx[b]] * val[b]).sum()
            for i, j in zip(left, right):
                diff = V[idx[b, i]] + T[idx[b, i]] - V[idx[b, j]]
                expected[b] += diff @ diff * val[b, i] * val[b, j]
        np.testing.assert_allclose(model.predict(users, items), expected, atol=1e-10)


class TestPredictModeRestoration:
    """``predict`` must restore the prior train/eval flag on exit.

    The seed unconditionally called ``self.train()`` after predicting,
    re-enabling dropout for models that were deliberately in eval mode
    (e.g. serving's chunked-predict fallback before a direct ``score``).
    """

    def test_predict_preserves_eval_mode(self, ds):
        model = NFM(ds, k=6, rng=np.random.default_rng(0))  # dropout=0.1
        model.eval()
        first = model.predict(ds.users[:20], ds.items[:20])
        assert not model.training
        assert not model.dropout.training
        # With dropout still disabled, a direct score call agrees with
        # predict; a train-mode dropout pass would not.
        from repro.autograd.tensor import no_grad
        with no_grad():
            again = model.score(ds.users[:20], ds.items[:20]).data
        np.testing.assert_array_equal(first, again)

    def test_predict_preserves_train_mode(self, ds):
        model = NFM(ds, k=6, rng=np.random.default_rng(0))
        assert model.training
        model.predict(ds.users[:5], ds.items[:5])
        assert model.training
        assert model.dropout.training

    def test_predict_scores_with_dropout_disabled_either_way(self, ds):
        model = NFM(ds, k=6, rng=np.random.default_rng(0))
        model.train()
        from_train = model.predict(ds.users[:20], ds.items[:20])
        model.eval()
        from_eval = model.predict(ds.users[:20], ds.items[:20])
        np.testing.assert_array_equal(from_train, from_eval)
